"""Shared diagnostics vocabulary for static design analysis.

Every static check in the reproduction — structural validation, deadlock
diagnosis, performance lints, hygiene checks — reports its findings as
:class:`Diagnostic` values: a stable rule code (``ERM101``, ``ERM201``,
...), a severity, the design elements involved (process/channel names),
a human-readable message, and an optional machine-applicable
:class:`OrderingFix`.  The linter (:mod:`repro.lint`) collects them; the
pre-flight checks of the explorer and the simulator raise them as a
:class:`LintError`; the CLI renders them as text, JSON, or SARIF.

This module deliberately depends only on the standard library and on
:mod:`repro.errors`, so every layer (``core``, ``tmg``, ``dse``, ``sim``)
can produce diagnostics without import cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a core cycle
    from repro.core.system import ChannelOrdering, SystemGraph


class Severity(enum.Enum):
    """Severity of a diagnostic, ordered ``ERROR > WARNING > INFO``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Numeric rank for comparisons: higher is more severe."""
        return {"error": 2, "warning": 1, "info": 0}[self.value]

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank

    def __gt__(self, other: "Severity") -> bool:
        return self.rank > other.rank

    def __ge__(self, other: "Severity") -> bool:
        return self.rank >= other.rank


@dataclass(frozen=True)
class OrderingFix:
    """A machine-applicable fix: replace some processes' statement orders.

    ``gets``/``puts`` map process names to their corrected channel
    sequences; processes not mentioned keep their current order.  A fix is
    *safe* by construction: :meth:`apply` validates the patched ordering
    against the system before returning it.
    """

    description: str
    gets: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    puts: Mapping[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def touched_processes(self) -> tuple[str, ...]:
        """Names of the processes whose statement order this fix rewrites."""
        return tuple(sorted(set(self.gets) | set(self.puts)))

    def apply(
        self, system: "SystemGraph", ordering: "ChannelOrdering"
    ) -> "ChannelOrdering":
        """Return ``ordering`` with this fix's per-process orders applied.

        Raises :class:`~repro.errors.ValidationError` if the patched
        ordering is not a permutation of each process's ports.
        """
        from repro.core.system import ChannelOrdering

        new_gets = dict(ordering.gets)
        new_puts = dict(ordering.puts)
        new_gets.update({name: tuple(seq) for name, seq in self.gets.items()})
        new_puts.update({name: tuple(seq) for name, seq in self.puts.items()})
        patched = ChannelOrdering(gets=new_gets, puts=new_puts)
        patched.validate(system)
        return patched


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static design-analysis rule.

    Attributes:
        rule: Stable rule code, e.g. ``"ERM201"``.
        severity: ``ERROR`` findings make the design unusable, ``WARNING``
            findings cost performance, ``INFO`` findings are hygiene.
        message: Human-readable explanation in design vocabulary
            (processes, channels, statement positions — never TMG places).
        location: Design elements involved, primary element first
            (process and/or channel names).
        fix: Optional machine-applicable reordering that resolves the
            finding (``ermes lint --fix`` applies it).
    """

    rule: str
    severity: Severity
    message: str
    location: tuple[str, ...] = ()
    fix: OrderingFix | None = None

    @property
    def fixable(self) -> bool:
        return self.fix is not None

    def format(self) -> str:
        """One-line rendering: ``ERM201 error [P2, d]: message``."""
        where = f" [{', '.join(self.location)}]" if self.location else ""
        return f"{self.rule} {self.severity.value}{where}: {self.message}"

    def sort_key(self) -> tuple[int, str, tuple[str, ...], str]:
        """Most severe first, then by rule code, location, and message.

        The message is the final tiebreak so two findings of the same
        rule at the same location never compare equal: the sort is a
        *total* order and every rendering of the same findings is
        byte-identical, run to run and machine to machine.
        """
        return (-self.severity.rank, self.rule, self.location, self.message)


class LintError(ValidationError):
    """A pre-flight check found error-severity diagnostics.

    Subclasses :class:`~repro.errors.ValidationError` so existing callers
    that catch validation failures keep working, while new callers can
    inspect the structured ``diagnostics`` (each with its rule code).
    """

    def __init__(self, diagnostics: Sequence[Diagnostic]):
        self.diagnostics = tuple(diagnostics)
        lines = [d.format() for d in self.diagnostics]
        count = len(lines)
        noun = "finding" if count == 1 else "findings"
        super().__init__(
            f"{count} lint {noun} at error severity:\n  " + "\n  ".join(lines)
        )

    @property
    def rule_codes(self) -> tuple[str, ...]:
        """The distinct rule codes involved, sorted."""
        return tuple(sorted({d.rule for d in self.diagnostics}))


def worst_severity(diagnostics: Iterable[Diagnostic]) -> Severity | None:
    """The highest severity present, or ``None`` for no findings."""
    worst: Severity | None = None
    for diagnostic in diagnostics:
        if worst is None or diagnostic.severity > worst:
            worst = diagnostic.severity
    return worst


def sorted_diagnostics(
    diagnostics: Iterable[Diagnostic],
) -> tuple[Diagnostic, ...]:
    """Diagnostics in a total, deterministic order: most-severe first,
    then by rule, location, and message."""
    return tuple(sorted(diagnostics, key=Diagnostic.sort_key))


def iter_at_least(
    diagnostics: Iterable[Diagnostic], severity: Severity
) -> Iterator[Diagnostic]:
    """The findings at or above ``severity``."""
    return (d for d in diagnostics if d.severity >= severity)
