"""Structural symmetry analysis over the lowered IR.

The compositional methodology produces SoCs full of replicated
structure — identical worker stages behind the same latency-insensitive
interface.  This package computes the automorphism group of a
:class:`~repro.ir.LoweredIR` by partition-refinement canonical labeling
(:mod:`repro.sym.canonical`), and everything downstream spends the
result:

* **orbits** — which processes/channels are interchangeable (the ERM7xx
  lint rules, the ``ermes ir`` orbit section);
* **canonical_hash** — a structural hash invariant under automorphisms
  *and* declaration renaming, the second-chance artifact-cache key that
  lets symmetric designs share persisted results;
* **state canonicalization** (:mod:`repro.sym.states`) — the
  quotient-space verifier maps every BFS state to an orbit
  representative, composing with stubborn-set reduction;
* **envelopes** (:mod:`repro.sym.remap`) — name-frame translation so a
  performance artifact computed for one design replays for a symmetric
  sibling with the sibling's own process/channel names.
"""

from repro.sym.canonical import (
    ATTR_RELAXED,
    EXACT,
    ORDER_RELAXED,
    TOPOLOGY_RELAXED,
    SigPolicy,
    SymmetryAnalysis,
    analyze_symmetry,
    canonical_hash_of,
    clear_memo,
    default_node_budget,
    is_automorphism,
    respects_policy,
)
from repro.sym.declared import (
    VerifiedFamily,
    declared_seeds,
    family_perms,
    verify_families,
)
from repro.sym.perm import (
    PairPerm,
    Perm,
    closure,
    compose,
    compose_pair,
    identity,
    identity_pair,
    invert,
    invert_pair,
    is_identity,
    is_identity_pair,
)
from repro.sym.states import (
    ENUMERATION_LIMIT,
    StateSymmetry,
    state_symmetry,
)

__all__ = [
    "ATTR_RELAXED",
    "EXACT",
    "ORDER_RELAXED",
    "ENUMERATION_LIMIT",
    "PairPerm",
    "Perm",
    "SigPolicy",
    "StateSymmetry",
    "SymmetryAnalysis",
    "TOPOLOGY_RELAXED",
    "VerifiedFamily",
    "analyze_symmetry",
    "canonical_hash_of",
    "clear_memo",
    "closure",
    "compose",
    "compose_pair",
    "declared_seeds",
    "default_node_budget",
    "family_perms",
    "identity",
    "identity_pair",
    "invert",
    "invert_pair",
    "is_automorphism",
    "is_identity",
    "is_identity_pair",
    "respects_policy",
    "state_symmetry",
    "verify_families",
]
