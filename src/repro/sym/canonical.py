"""Canonical labeling and automorphism discovery over the ``LoweredIR``.

The compositional flow of the paper replicates structure: identical
worker stages behind identical latency-insensitive interfaces.  Two
processes of a :class:`~repro.ir.LoweredIR` are *interchangeable* when
their integer opcode programs are identical up to a relabeling of
channel ids that is itself consistent with the channel endpoint tables —
i.e. when the IR has a nontrivial automorphism.  This module computes:

* the **automorphism group** as a set of verified generator
  permutations (one process permutation + one channel permutation each),
* the process and channel **orbits** under that group, and
* an orbit-invariant **canonical hash** (:attr:`SymmetryAnalysis.canonical_hash`)
  — equal for any two IRs that are isomorphic, sitting alongside the
  declaration-faithful :attr:`~repro.ir.LoweredIR.structural_hash`.

The algorithm is classic individualization–refinement (the McKay
family, scaled down to this IR's shape): a fixpoint color refinement
over joint process/channel signatures, a search tree that
individualizes one vertex of the first non-singleton cell per level,
leaf-level canonical renderings compared lexicographically, automorphisms
derived from equal-rendering leaves, orbit pruning with the discovered
generators, and backjumping to the deepest path position an automorphism
moves.  Every derived permutation is **defensively re-verified** against
the IR tables before it is trusted (:func:`respects_policy`), so orbits
are a sound under-approximation even if the search logic were wrong, and
the canonical hash is a plain SHA-256 of a full relabeled rendering, so
equal hashes imply isomorphic IRs regardless of how much of the tree was
pruned.

A node budget bounds pathological inputs: an exhausted search keeps the
(verified) generators found so far but *gives up* on canonicity —
``canonical_hash`` falls back to ``structural_hash`` and ``complete`` is
``False``.  Falling back is sound for every consumer: caches lose
sharing, never correctness.

Relaxed signature policies serve the ERM7xx lint rules:
:data:`ORDER_RELAXED` ignores statement positions (automorphisms of the
topology + channel attributes — the equivalence behind the
symmetric-ordering rule ERM702), :data:`ATTR_RELAXED` ignores channel
latency/capacity/tokens, and :data:`TOPOLOGY_RELAXED` ignores both —
the "would be symmetric if the capacities matched" family lens behind
ERM703.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import NamedTuple, Sequence

from repro.ir import OP_COMPUTE, OP_GET, OP_PUT, LoweredIR
from repro.sym.perm import (
    PairPerm,
    Perm,
    UnionFind,
    invert,
)

#: Signature ingredients a labeling run respects.  The exact policy is
#: the full IR equivalence; the relaxed ones drop one dimension each.
class SigPolicy(NamedTuple):
    respect_programs: bool
    respect_channel_attrs: bool


#: Full IR equivalence: programs, positions, and channel attributes.
EXACT = SigPolicy(respect_programs=True, respect_channel_attrs=True)
#: Topology + channel attributes; statement orders ignored (ERM702).
ORDER_RELAXED = SigPolicy(respect_programs=False, respect_channel_attrs=True)
#: Programs + positions; channel attributes ignored (ERM703).
ATTR_RELAXED = SigPolicy(respect_programs=True, respect_channel_attrs=False)
#: Pure endpoint topology: statement orders *and* channel attributes
#: ignored — the coarsest lens, grouping channels by communication-graph
#: shape alone (the "family" notion of ERM703).
TOPOLOGY_RELAXED = SigPolicy(respect_programs=False, respect_channel_attrs=False)

#: Render-format version tag, bumped whenever the canonical rendering
#: changes shape (it namespaces every canonical hash).
_RENDER_VERSION = "sym:v1"


# ----------------------------------------------------------------------
# Static per-IR tables
# ----------------------------------------------------------------------


def _comm_positions(ir: LoweredIR) -> tuple[Perm, Perm]:
    """Per cid: position among its producer's puts / consumer's gets.

    Each channel occurs exactly once as a ``put`` and once as a ``get``
    across all programs, so ``(producer pid, put position)`` identifies a
    channel — the anchor that lets process labelings induce channel
    labelings.
    """
    put_pos = [0] * ir.n_channels
    get_pos = [0] * ir.n_channels
    for pid in range(ir.n_processes):
        n_puts = n_gets = 0
        for kind, arg in zip(ir.op_kinds[pid], ir.op_args[pid]):
            if kind == OP_GET:
                get_pos[arg] = n_gets
                n_gets += 1
            elif kind == OP_PUT:
                put_pos[arg] = n_puts
                n_puts += 1
    return tuple(put_pos), tuple(get_pos)


def _incidence(
    ir: LoweredIR,
) -> tuple[tuple[tuple[int, ...], ...], tuple[tuple[int, ...], ...]]:
    """Per pid: cids consumed (gets) and produced (puts)."""
    ins: list[list[int]] = [[] for _ in range(ir.n_processes)]
    outs: list[list[int]] = [[] for _ in range(ir.n_processes)]
    for cid in range(ir.n_channels):
        outs[ir.producers[cid]].append(cid)
        ins[ir.consumers[cid]].append(cid)
    return tuple(tuple(x) for x in ins), tuple(tuple(x) for x in outs)


def respects_policy(
    ir: LoweredIR, gp: Perm, gc: Perm, policy: SigPolicy = EXACT
) -> bool:
    """True when ``(gp, gc)`` is an automorphism w.r.t. ``policy``.

    This is the ground-truth check every candidate permutation must pass
    before anything downstream trusts it: endpoint tables and process
    kinds always; opcode programs with relabeled channel arguments when
    the policy respects programs; the channel attribute columns when it
    respects attributes.
    """
    if len(gp) != ir.n_processes or len(gc) != ir.n_channels:
        return False
    for pid in range(ir.n_processes):
        qid = gp[pid]
        if ir.process_kinds[pid] != ir.process_kinds[qid]:
            return False
        if policy.respect_programs:
            if ir.op_kinds[pid] != ir.op_kinds[qid]:
                return False
            for kind, arg, arg_q in zip(
                ir.op_kinds[pid], ir.op_args[pid], ir.op_args[qid]
            ):
                if kind != OP_COMPUTE and gc[arg] != arg_q:
                    return False
    for cid in range(ir.n_channels):
        did = gc[cid]
        if ir.producers[did] != gp[ir.producers[cid]]:
            return False
        if ir.consumers[did] != gp[ir.consumers[cid]]:
            return False
        if policy.respect_channel_attrs:
            if (
                ir.channel_latencies[cid] != ir.channel_latencies[did]
                or ir.capacities[cid] != ir.capacities[did]
                or ir.initial_tokens[cid] != ir.initial_tokens[did]
                or ir.buffered[cid] != ir.buffered[did]
                or ir.effective_capacities[cid]
                != ir.effective_capacities[did]
            ):
                return False
    return True


def is_automorphism(ir: LoweredIR, gp: Perm, gc: Perm) -> bool:
    """True when ``(gp, gc)`` is a full automorphism of the IR."""
    return respects_policy(ir, gp, gc, EXACT)


# ----------------------------------------------------------------------
# Result
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SymmetryAnalysis:
    """Everything one canonical-labeling run established about an IR.

    Attributes:
        ir_hash: The input's :attr:`~repro.ir.LoweredIR.structural_hash`.
        policy: The signature policy the run respected.
        canonical_hash: SHA-256 of the lexicographically minimal
            canonical rendering — invariant under automorphisms (equal
            hashes imply policy-isomorphic IRs).  Falls back to
            ``ir_hash`` when the search budget was exhausted.
        process_orbits: Interchangeability classes of pids, each sorted,
            ordered by smallest member (singletons included).
        channel_orbits: Same for cids.
        generators: Verified automorphism generators, each a
            ``(process perm, channel perm)`` pair.
        process_labeling: ``pid -> canonical position`` of the winning
            leaf (name-rank order under the fallback).
        channel_labeling: ``cid -> canonical position``.
        canonical_process_names: Input-frame process names in canonical
            order — the translation table cross-frame cache envelopes
            carry (:mod:`repro.sym.remap`).
        canonical_channel_names: Same for channels.
        complete: Whether the search ran to completion.  ``False`` keeps
            the verified generators but disables canonical sharing.
        nodes: Search-tree nodes expanded (budget accounting).
    """

    ir_hash: str
    policy: SigPolicy
    canonical_hash: str
    process_orbits: tuple[tuple[int, ...], ...]
    channel_orbits: tuple[tuple[int, ...], ...]
    generators: tuple[PairPerm, ...]
    process_labeling: Perm
    channel_labeling: Perm
    canonical_process_names: tuple[str, ...]
    canonical_channel_names: tuple[str, ...]
    complete: bool
    nodes: int

    @property
    def trivial(self) -> bool:
        """True when no nontrivial automorphism was found."""
        return not self.generators

    def orbit_of_process(self, pid: int) -> tuple[int, ...]:
        for orbit in self.process_orbits:
            if pid in orbit:
                return orbit
        return (pid,)

    def orbit_of_channel(self, cid: int) -> tuple[int, ...]:
        for orbit in self.channel_orbits:
            if cid in orbit:
                return orbit
        return (cid,)

    @property
    def replicated_process_orbits(self) -> tuple[tuple[int, ...], ...]:
        """Only the orbits with at least two members."""
        return tuple(o for o in self.process_orbits if len(o) > 1)

    @property
    def replicated_channel_orbits(self) -> tuple[tuple[int, ...], ...]:
        return tuple(o for o in self.channel_orbits if len(o) > 1)


# ----------------------------------------------------------------------
# Refinement
# ----------------------------------------------------------------------

_Sig = tuple[object, ...]


def _dense(sigs: Sequence[_Sig]) -> tuple[int, ...]:
    """Rank signatures by value order (canonical across isomorphic inputs)."""
    order = {sig: rank for rank, sig in enumerate(sorted(set(sigs)))}  # type: ignore[type-var]
    return tuple(order[sig] for sig in sigs)


class _Tables:
    """Immutable per-IR tables shared by every node of one search."""

    def __init__(self, ir: LoweredIR, policy: SigPolicy):
        self.ir = ir
        self.policy = policy
        self.put_pos, self.get_pos = _comm_positions(ir)
        self.ins, self.outs = _incidence(ir)


def _refine(
    tables: _Tables,
    pcolors: tuple[int, ...],
    ccolors: tuple[int, ...],
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Refine the joint coloring to fixpoint.

    Signatures include the previous color, so cells only ever split;
    the loop terminates in at most ``n_processes + n_channels`` rounds.
    """
    ir = tables.ir
    policy = tables.policy
    while True:
        csigs: list[_Sig] = []
        for cid in range(ir.n_channels):
            sig: list[object] = [
                ccolors[cid],
                pcolors[ir.producers[cid]],
                pcolors[ir.consumers[cid]],
            ]
            if policy.respect_channel_attrs:
                sig.extend(
                    (
                        ir.channel_latencies[cid],
                        ir.capacities[cid],
                        ir.initial_tokens[cid],
                        ir.buffered[cid],
                        ir.effective_capacities[cid],
                    )
                )
            if policy.respect_programs:
                sig.extend((tables.put_pos[cid], tables.get_pos[cid]))
            csigs.append(tuple(sig))
        new_c = _dense(csigs)

        psigs: list[_Sig] = []
        for pid in range(ir.n_processes):
            psig: list[object] = [pcolors[pid], ir.process_kinds[pid]]
            if policy.respect_programs:
                psig.append(
                    tuple(
                        (kind, new_c[arg]) if kind != OP_COMPUTE else (kind,)
                        for kind, arg in zip(
                            ir.op_kinds[pid], ir.op_args[pid]
                        )
                    )
                )
            else:
                psig.append(tuple(sorted(new_c[c] for c in tables.ins[pid])))
                psig.append(tuple(sorted(new_c[c] for c in tables.outs[pid])))
            psigs.append(tuple(psig))
        new_p = _dense(psigs)

        if new_p == pcolors and new_c == ccolors:
            return pcolors, ccolors
        pcolors, ccolors = new_p, new_c


def _leaf_render(
    tables: _Tables, lam_p: Perm, lam_c: Perm
) -> tuple[object, ...]:
    """The name-free canonical rendering of a discrete labeling.

    Two IRs are policy-isomorphic iff they admit labelings with equal
    renderings — the rendering lists every respected table in canonical
    id order with canonical ids substituted, so it *determines* the IR
    up to renaming.
    """
    ir = tables.ir
    policy = tables.policy
    inv_p = invert(lam_p)
    inv_c = invert(lam_c)
    procs: list[object] = []
    for pos in range(ir.n_processes):
        pid = inv_p[pos]
        if policy.respect_programs:
            procs.append(
                (
                    ir.process_kinds[pid],
                    tuple(
                        (kind, lam_c[arg]) if kind != OP_COMPUTE else (kind,)
                        for kind, arg in zip(
                            ir.op_kinds[pid], ir.op_args[pid]
                        )
                    ),
                )
            )
        else:
            procs.append(
                (
                    ir.process_kinds[pid],
                    tuple(sorted(lam_c[c] for c in tables.ins[pid])),
                    tuple(sorted(lam_c[c] for c in tables.outs[pid])),
                )
            )
    chans: list[object] = []
    for pos in range(ir.n_channels):
        cid = inv_c[pos]
        row: list[object] = [
            lam_p[ir.producers[cid]],
            lam_p[ir.consumers[cid]],
        ]
        if policy.respect_channel_attrs:
            row.extend(
                (
                    ir.channel_latencies[cid],
                    ir.capacities[cid],
                    ir.initial_tokens[cid],
                    ir.buffered[cid],
                    ir.effective_capacities[cid],
                )
            )
        if policy.respect_programs:
            row.extend((tables.put_pos[cid], tables.get_pos[cid]))
        chans.append(tuple(row))
    return (tuple(procs), tuple(chans))


def _hash_render(
    ir: LoweredIR, policy: SigPolicy, render: tuple[object, ...]
) -> str:
    # Deliberately name-free (no system name, no process/channel names):
    # the hash must agree across any renaming of an isomorphic design so
    # symmetric siblings share one cache identity.
    text = repr((_RENDER_VERSION, tuple(policy), render))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Individualization–refinement search
# ----------------------------------------------------------------------

#: Search-tree path entry: which vertex was individualized at a level.
_PathEntry = tuple[str, int]  # ("p" | "c", id)


class _Search:
    def __init__(self, tables: _Tables, node_budget: int):
        self.tables = tables
        self.budget = node_budget
        ir = tables.ir
        self.n_p = ir.n_processes
        self.n_c = ir.n_channels
        self.seen: dict[tuple[object, ...], tuple[Perm, Perm]] = {}
        self.best: tuple[tuple[object, ...], Perm, Perm] | None = None
        self.gens: list[PairPerm] = []
        self.pfind = UnionFind(self.n_p)
        self.cfind = UnionFind(self.n_c)
        self.nodes = 0
        self.exhausted = False

    # -- generator bookkeeping -----------------------------------------

    def _record_generator(self, gp: Perm, gc: Perm) -> bool:
        if not respects_policy(self.tables.ir, gp, gc, self.tables.policy):
            return False  # defensive: never trust an unverified derivation
        self.gens.append((gp, gc))
        for i, v in enumerate(gp):
            self.pfind.union(i, v)
        for i, v in enumerate(gc):
            self.cfind.union(i, v)
        return True

    def _stabilizer_orbits(
        self, path: list[_PathEntry], tag: str, size: int
    ) -> UnionFind:
        """Orbits under the generators fixing every path vertex pointwise."""
        uf = UnionFind(size)
        for gp, gc in self.gens:
            fixes = True
            for kind, v in path:
                image = gp[v] if kind == "p" else gc[v]
                if image != v:
                    fixes = False
                    break
            if not fixes:
                continue
            perm = gp if tag == "p" else gc
            for i, v in enumerate(perm):
                uf.union(i, v)
        return uf

    # -- the tree ------------------------------------------------------

    def descend(
        self,
        pcolors: tuple[int, ...],
        ccolors: tuple[int, ...],
        path: list[_PathEntry],
    ) -> int | None:
        """Explore one node; return a backjump depth or ``None``."""
        pcolors, ccolors = _refine(self.tables, pcolors, ccolors)
        self.nodes += 1
        if self.nodes > self.budget:
            self.exhausted = True
            return None

        if len(set(pcolors)) == self.n_p and len(set(ccolors)) == self.n_c:
            return self._leaf(pcolors, ccolors, path)

        tag, members = self._target_cell(pcolors, ccolors)
        size = self.n_p if tag == "p" else self.n_c
        done: list[int] = []
        for vertex in members:
            if self.exhausted:
                return None
            if done:
                orbits = self._stabilizer_orbits(path, tag, size)
                root = orbits.find(vertex)
                if any(orbits.find(u) == root for u in done):
                    continue  # symmetric to an explored sibling
            if tag == "p":
                child_p = tuple(
                    self.n_p if i == vertex else color
                    for i, color in enumerate(pcolors)
                )
                child_c = ccolors
            else:
                child_p = pcolors
                child_c = tuple(
                    self.n_c if i == vertex else color
                    for i, color in enumerate(ccolors)
                )
            path.append((tag, vertex))
            jump = self.descend(child_p, child_c, path)
            path.pop()
            done.append(vertex)
            if jump is not None:
                if jump < len(path):
                    return jump  # an ancestor is the backjump target
                # jump == len(path): this node is the target — keep going
        return None

    def _target_cell(
        self, pcolors: tuple[int, ...], ccolors: tuple[int, ...]
    ) -> tuple[str, list[int]]:
        """The first non-singleton cell (processes first, then channels).

        Channel cells can stay ambiguous only under relaxed policies
        (the exact policy's position signatures discretize channels as
        soon as processes are discrete).
        """
        for colors, tag, n in ((pcolors, "p", self.n_p), (ccolors, "c", self.n_c)):
            counts: dict[int, int] = {}
            for color in colors:
                counts[color] = counts.get(color, 0) + 1
            ambiguous = sorted(c for c, k in counts.items() if k > 1)
            if ambiguous:
                target = ambiguous[0]
                return tag, [i for i in range(n) if colors[i] == target]
        raise AssertionError("no non-singleton cell in a non-discrete node")

    def _leaf(
        self,
        pcolors: tuple[int, ...],
        ccolors: tuple[int, ...],
        path: list[_PathEntry],
    ) -> int | None:
        render = _leaf_render(self.tables, pcolors, ccolors)
        prev = self.seen.get(render)
        if prev is None:
            self.seen[render] = (pcolors, ccolors)
            if self.best is None or render < self.best[0]:  # type: ignore[operator]
                self.best = (render, pcolors, ccolors)
            return None
        # Equal renderings at two leaves: the labelings differ by an
        # automorphism g = prev_lam^{-1} . lam, mapping each vertex to
        # the one playing its canonical role in the earlier leaf.
        prev_p, prev_c = prev
        inv_prev_p = invert(prev_p)
        inv_prev_c = invert(prev_c)
        gp = tuple(inv_prev_p[pcolors[i]] for i in range(self.n_p))
        gc = tuple(inv_prev_c[ccolors[i]] for i in range(self.n_c))
        if not self._record_generator(gp, gc):
            return None
        # Backjump: levels whose individualized vertex g fixes cannot
        # yield new leaves from this sibling — resume where g first acts.
        depth = 0
        for kind, v in path:
            image = gp[v] if kind == "p" else gc[v]
            if image != v:
                break
            depth += 1
        return depth if depth < len(path) else None


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

#: Absolute bounds on the adaptive search budget.
_MIN_NODE_BUDGET = 64
_MAX_NODE_BUDGET = 4096
#: Work target the adaptive budget divides by the IR size: refinement
#: costs O(n log n) per node, so nodes * n stays roughly constant.
_NODE_WORK_TARGET = 120_000

_memo: OrderedDict[tuple[object, ...], SymmetryAnalysis] = OrderedDict()
_MEMO_SIZE = 256


def default_node_budget(ir: LoweredIR) -> int:
    """The adaptive search budget: generous on small IRs, bounded on SoCs."""
    n = max(1, ir.n_processes + ir.n_channels)
    return max(_MIN_NODE_BUDGET, min(_MAX_NODE_BUDGET, _NODE_WORK_TARGET // n))


def analyze_symmetry(
    ir: LoweredIR,
    policy: SigPolicy = EXACT,
    node_budget: int | None = None,
    seeds: Sequence[PairPerm] = (),
) -> SymmetryAnalysis:
    """Compute orbits, generators, and the canonical hash of ``ir``.

    ``seeds`` are *candidate* automorphism generators known ahead of the
    search — typically derived from the system's declared replication
    families (:func:`repro.sym.declared.declared_seeds`).  Each seed is
    re-verified against the IR tables before it is trusted (a drifted or
    false declaration is silently dropped), then fed to the search's
    orbit pruning, so correct seeds turn the leaf-pair *rediscovery* of
    known symmetry into an upfront declaration.  Seeding never changes
    ``canonical_hash`` — orbit pruning only skips subtrees whose leaves
    are automorphic images of explored ones — it only changes how much
    of the tree must be walked and which generators survive a budget
    exhaustion.

    Memoized process-wide on the IR's content *and declaration order*
    (labelings are declaration-order-sensitive even though the
    structural hash is not), the policy, the budget, and the seeds.
    """
    if node_budget is None:
        node_budget = default_node_budget(ir)
    key: tuple[object, ...] = (
        ir.structural_hash,
        ir.processes,
        ir.channels,
        tuple(policy),
        node_budget,
        tuple(seeds),
    )
    hit = _memo.get(key)
    if hit is not None:
        _memo.move_to_end(key)
        return hit
    analysis = _analyze_uncached(ir, policy, node_budget, seeds)
    _memo[key] = analysis
    if len(_memo) > _MEMO_SIZE:
        _memo.popitem(last=False)
    return analysis


def clear_memo() -> None:
    """Drop the process-wide memo (tests, cold-cost benchmarks)."""
    _memo.clear()


def canonical_hash_of(ir: LoweredIR) -> str:
    """The orbit-invariant content address of ``ir`` (exact policy)."""
    return analyze_symmetry(ir).canonical_hash


def _fallback_labelings(ir: LoweredIR) -> tuple[Perm, Perm]:
    """Name-rank labelings for budget-exhausted runs.

    Sorted-name order is a function of the *name-sorted* structural
    rendering, so any two IRs sharing a ``structural_hash`` agree on it
    — which keeps the canonical name tables consistent even though no
    canonical labeling was established.
    """
    p_rank = {name: i for i, name in enumerate(sorted(ir.processes))}
    c_rank = {name: i for i, name in enumerate(sorted(ir.channels))}
    return (
        tuple(p_rank[name] for name in ir.processes),
        tuple(c_rank[name] for name in ir.channels),
    )


def _analyze_uncached(
    ir: LoweredIR,
    policy: SigPolicy,
    node_budget: int,
    seeds: Sequence[PairPerm] = (),
) -> SymmetryAnalysis:
    tables = _Tables(ir, policy)
    search = _Search(tables, node_budget)
    for gp, gc in seeds:
        # _record_generator re-verifies via respects_policy, so a stale
        # or false seed is dropped instead of poisoning the orbits.
        search._record_generator(gp, gc)
    if ir.n_processes > 0:
        search.descend(
            (0,) * ir.n_processes, (0,) * ir.n_channels, []
        )
    complete = not search.exhausted
    if complete and search.best is not None:
        render, lam_p, lam_c = search.best
        canonical_hash = _hash_render(ir, policy, render)
    else:
        lam_p, lam_c = _fallback_labelings(ir)
        canonical_hash = ir.structural_hash
    inv_p = invert(lam_p) if lam_p else ()
    inv_c = invert(lam_c) if lam_c else ()
    return SymmetryAnalysis(
        ir_hash=ir.structural_hash,
        policy=policy,
        canonical_hash=canonical_hash,
        process_orbits=search.pfind.orbits() if ir.n_processes else (),
        channel_orbits=search.cfind.orbits() if ir.n_channels else (),
        generators=tuple(search.gens),
        process_labeling=lam_p,
        channel_labeling=lam_c,
        canonical_process_names=tuple(
            ir.processes[pid] for pid in inv_p
        ),
        canonical_channel_names=tuple(ir.channels[cid] for cid in inv_c),
        complete=complete,
        nodes=search.nodes,
    )
