"""Verification and spending of declared replication families.

The construction layer (:mod:`repro.dsl`) *claims* replication structure
via :class:`~repro.core.families.DeclaredFamily` entries on the system.
This module is the trust boundary where claims become facts:

* :func:`family_perms` — translate one family's name-level generator
  maps into id-frame permutation pairs over a concrete
  :class:`~repro.ir.LoweredIR` (empty when any referenced name is gone
  or a map fails to be a bijection — the drifted-family case);
* :func:`verify_families` — check each family's generators against the
  IR tables, first under the :data:`~repro.sym.canonical.EXACT` policy,
  falling back to :data:`~repro.sym.canonical.ORDER_RELAXED` (the ERM702
  equivalence: a shared fork/join endpoint serializes its statement
  order, so lane swaps hold only up to statement reordering).  Families
  that fail both are dropped;
* :func:`declared_seeds` — every candidate generator, ready to seed
  :func:`~repro.sym.canonical.analyze_symmetry`'s orbit pruning (the
  search re-verifies each seed itself, so this function does not).

Verification is cheap — ``O(generators × IR size)`` table checks, no
search — which is the whole point: a declared family costs a handful of
:func:`~repro.sym.canonical.respects_policy` calls where a rediscovered
one costs a canonical-labeling descent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.families import DeclaredFamily
from repro.ir import LoweredIR
from repro.sym.canonical import EXACT, ORDER_RELAXED, SigPolicy, respects_policy
from repro.sym.perm import PairPerm


def family_perms(
    ir: LoweredIR, family: DeclaredFamily
) -> tuple[PairPerm, ...]:
    """The family's claimed generators as id-frame permutation pairs.

    Names absent from the maps are fixed points.  Returns ``()`` when
    any referenced process/channel name does not exist in ``ir`` or a
    map is not injective on ids — the family has drifted from the
    system it was declared on and claims nothing here.
    """
    p_index = {name: i for i, name in enumerate(ir.processes)}
    c_index = {name: i for i, name in enumerate(ir.channels)}
    perms: list[PairPerm] = []
    for pmap, cmap in family.generator_maps():
        gp = list(range(ir.n_processes))
        gc = list(range(ir.n_channels))
        for mapping, index, perm in (
            (pmap, p_index, gp),
            (cmap, c_index, gc),
        ):
            for src, dst in mapping.items():
                if src not in index or dst not in index:
                    return ()
                perm[index[src]] = index[dst]
            if len(set(perm)) != len(perm):
                return ()
        perms.append((tuple(gp), tuple(gc)))
    return tuple(perms)


@dataclass(frozen=True)
class VerifiedFamily:
    """One declared family whose generators all passed table verification.

    Attributes:
        family: The declaration that was checked.
        policy: The strongest policy every generator satisfied —
            :data:`EXACT`, or :data:`ORDER_RELAXED` when the symmetry
            holds only up to statement reordering.
        generators: The verified id-frame generator pairs.
    """

    family: DeclaredFamily
    policy: SigPolicy
    generators: tuple[PairPerm, ...]

    @property
    def exact(self) -> bool:
        """True when the family holds under the full IR equivalence."""
        return self.policy == EXACT


def verify_families(
    ir: LoweredIR, families: Sequence[DeclaredFamily]
) -> tuple[VerifiedFamily, ...]:
    """Check every declared family against the lowered program.

    Per family, all claimed generators must pass under one policy for
    the family to verify at that policy; EXACT is tried first, then
    ORDER_RELAXED.  Families failing both (or drifted — see
    :func:`family_perms`) are silently dropped: a declaration is a
    claim, never a proof.
    """
    verified: list[VerifiedFamily] = []
    for family in families:
        perms = family_perms(ir, family)
        if not perms:
            continue
        for policy in (EXACT, ORDER_RELAXED):
            if all(
                respects_policy(ir, gp, gc, policy) for gp, gc in perms
            ):
                verified.append(VerifiedFamily(family, policy, perms))
                break
    return tuple(verified)


def declared_seeds(
    ir: LoweredIR, families: Sequence[DeclaredFamily]
) -> tuple[PairPerm, ...]:
    """All candidate generators from ``families``, deduplicated.

    Intended as the ``seeds`` argument of
    :func:`~repro.sym.canonical.analyze_symmetry`, which re-verifies
    each one under its own policy — so this deliberately does *not*
    filter by policy, only by resolvability.
    """
    seen: set[PairPerm] = set()
    seeds: list[PairPerm] = []
    for family in families:
        for pair in family_perms(ir, family):
            if pair not in seen:
                seen.add(pair)
                seeds.append(pair)
    return tuple(seeds)
