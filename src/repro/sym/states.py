"""Orbit canonicalization of verification states.

The quotient-space checker (:func:`repro.verify.check_deadlock` with
``sym=True``) replaces every BFS state with a canonical representative
of its orbit under the IR's automorphism group before the visited-set
lookup.  Correctness needs two things from the canonicalizer:

* **soundness** — the representative must be the image of the state
  under a *verified automorphism* (never a merely plausible one), and
  the permutation used is returned so witnesses can be pulled back to
  the concrete frame;
* **determinism** — ``canonicalize`` is a pure function of the state,
  so two states in the same orbit that reach the same representative do
  so stably across runs.

Minimality (two states in the same orbit always mapping to the *same*
representative) is what buys reduction; it is exact here for the two
structured strategies and best-effort for the fallback:

1. **Block ``S_m``** — when a symmetry sector decomposes into ``m >= 2``
   interchangeable blocks (replicated lanes) and the ``m - 1`` adjacent
   block transpositions each re-verify as IR automorphisms, the whole
   symmetric group on blocks is available: the representative sorts the
   per-block state vectors.  Exact, and O(n log n) per state even for
   ``|S_8| = 40320``.
2. **Closure enumeration** — otherwise, if the sector's generated group
   has at most :data:`ENUMERATION_LIMIT` elements (rings and other
   small cyclic/dihedral sectors), the representative is the exact
   lexicographic minimum over the full group.  Plain per-block sorting
   would be *unsound* here — a cyclic group cannot realize arbitrary
   block permutations, and pretending it can over-merges states and can
   hide reachable deadlocks.
3. **Greedy descent** — for large unstructured groups, repeatedly apply
   any generator (or inverse) that lexicographically decreases the
   state, to a fixpoint.  A sound partial canonicalization: states only
   ever merge with true orbit-mates, merely not always maximally.

Sectors (connected components of generators sharing support) act on
disjoint state slots, so they canonicalize independently and their
permutations compose.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sym.canonical import (
    EXACT,
    SymmetryAnalysis,
    analyze_symmetry,
    is_automorphism,
)
from repro.sym.perm import (
    PairPerm,
    UnionFind,
    compose_pair,
    identity_pair,
    invert_pair,
    is_identity_pair,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.verify.semantics import Action, State, TransitionSystem

#: Largest sector group the enumeration strategy materializes.
ENUMERATION_LIMIT = 2048

#: A support element: a moved process ("p", pid) or channel ("c", cid).
_Elem = tuple[str, int]


def _support(g: PairPerm) -> frozenset[_Elem]:
    gp, gc = g
    moved: set[_Elem] = {("p", i) for i, v in enumerate(gp) if v != i}
    moved.update(("c", i) for i, v in enumerate(gc) if v != i)
    return frozenset(moved)


def _apply_elem(g: PairPerm, elem: _Elem) -> _Elem:
    tag, i = elem
    return (tag, g[0][i] if tag == "p" else g[1][i])


class _BlockStrategy:
    """Verified ``S_m`` over interchangeable blocks: sort block vectors."""

    def __init__(
        self,
        blocks: list[tuple[_Elem, ...]],
        maps: list[PairPerm],
        n_p: int,
        n_c: int,
    ):
        self.base = blocks[0]
        self.blocks = blocks
        self.maps = maps  # maps[j] carries blocks[0] onto blocks[j]
        self.n_p = n_p
        self.n_c = n_c
        #: Per block, its elements in base-aligned order.
        self.aligned: list[tuple[_Elem, ...]] = [
            tuple(_apply_elem(maps[j], e) for e in self.base)
            for j in range(len(blocks))
        ]

    def sigma_for(self, order: tuple[int, ...]) -> PairPerm:
        """The automorphism sending block ``order[k]`` onto block ``k``."""
        gp = list(range(self.n_p))
        gc = list(range(self.n_c))
        for k, j in enumerate(order):
            for src, dst in zip(self.aligned[j], self.aligned[k]):
                tag, i = src
                _, target = dst
                if tag == "p":
                    gp[i] = target
                else:
                    gc[i] = target
        return (tuple(gp), tuple(gc))


class _EnumStrategy:
    """Exact lexicographic minimum over a fully enumerated sector group."""

    def __init__(self, elements: tuple[PairPerm, ...]):
        self.elements = elements


class _GreedyStrategy:
    """Sound partial canonicalization by generator descent."""

    def __init__(self, gens: list[PairPerm]):
        moves: list[PairPerm] = []
        for g in gens:
            moves.append(g)
            gi = invert_pair(g)
            if gi != g:
                moves.append(gi)
        self.moves = moves


class StateSymmetry:
    """Canonicalize :class:`~repro.verify.semantics.TransitionSystem`
    states to orbit representatives.

    Args:
        ts: The transition system whose states are canonicalized.
        analysis: A precomputed exact-policy :class:`SymmetryAnalysis`
            of ``ts.ir`` (computed on demand otherwise).
    """

    def __init__(
        self,
        ts: "TransitionSystem",
        analysis: SymmetryAnalysis | None = None,
    ):
        self.ts = ts
        ir = ts.ir
        if analysis is None:
            analysis = analyze_symmetry(ir)
        if analysis.policy != EXACT:
            raise ValueError(
                "state canonicalization requires the exact signature policy"
            )
        self.analysis = analysis
        self.n_p = ir.n_processes
        self.n_c = ir.n_channels
        self._identity = identity_pair(self.n_p, self.n_c)
        #: State-slot <-> id translation (states index only communicating
        #: processes and buffered channels).
        self.pid_of_pslot: tuple[int, ...] = tuple(
            ir.pid(name) for name in ts.process_names
        )
        self.pslot_of_pid: dict[int, int] = {
            pid: slot for slot, pid in enumerate(self.pid_of_pslot)
        }
        self.cid_of_bslot: tuple[int, ...] = tuple(
            ir.cid(name) for name in ts.buffered_names
        )
        self.bslot_of_cid: dict[int, int] = {
            cid: slot for slot, cid in enumerate(self.cid_of_bslot)
        }
        self._sigma_cache: dict[tuple[int, tuple[int, ...]], PairPerm | None] = {}
        self.strategies: list[object] = []
        if not analysis.trivial:
            self._build_strategies(list(analysis.generators))

    @property
    def trivial(self) -> bool:
        """True when canonicalization is the identity."""
        return not self.strategies

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_strategies(self, gens: list[PairPerm]) -> None:
        supports = [_support(g) for g in gens]
        uf = UnionFind(len(gens))
        elem_owner: dict[_Elem, int] = {}
        for i, support in enumerate(supports):
            for elem in support:
                if elem in elem_owner:
                    uf.union(i, elem_owner[elem])
                else:
                    elem_owner[elem] = i
        sectors: dict[int, list[int]] = {}
        for i in range(len(gens)):
            sectors.setdefault(uf.find(i), []).append(i)
        for members in sectors.values():
            sector_gens = [gens[i] for i in members]
            support: set[_Elem] = set()
            for i in members:
                support.update(supports[i])
            self.strategies.append(
                self._sector_strategy(sector_gens, frozenset(support))
            )

    def _sector_strategy(
        self, gens: list[PairPerm], support: frozenset[_Elem]
    ) -> object:
        blocks = self._blocks(support)
        if len(blocks) >= 2:
            strategy = self._try_block_s_m(gens, blocks)
            if strategy is not None:
                return strategy
        from repro.sym.perm import closure

        elements = closure(gens, self.n_p, self.n_c, ENUMERATION_LIMIT)
        if elements is not None:
            return _EnumStrategy(elements)
        return _GreedyStrategy(gens)

    def _blocks(self, support: frozenset[_Elem]) -> list[tuple[_Elem, ...]]:
        """Connected components of the in-support incidence graph."""
        ir = self.ts.ir
        uf_ids = {elem: i for i, elem in enumerate(sorted(support))}
        uf = UnionFind(len(uf_ids))
        for elem, i in uf_ids.items():
            tag, cid = elem
            if tag != "c":
                continue
            for endpoint in (ir.producers[cid], ir.consumers[cid]):
                other = ("p", endpoint)
                if other in uf_ids:
                    uf.union(i, uf_ids[other])
        groups: dict[int, list[_Elem]] = {}
        for elem, i in uf_ids.items():
            groups.setdefault(uf.find(i), []).append(elem)
        blocks = [tuple(sorted(members)) for members in groups.values()]
        blocks.sort()
        return blocks

    def _try_block_s_m(
        self, gens: list[PairPerm], blocks: list[tuple[_Elem, ...]]
    ) -> _BlockStrategy | None:
        """Verify the full symmetric group over ``blocks`` is available.

        BFS from block 0 composes generator images into one carrier map
        per block; the candidate adjacent transpositions they induce are
        then each re-verified against the IR — ``m - 1`` checks certify
        all ``m!`` block permutations.
        """
        ir = self.ts.ir
        index_of = {block: j for j, block in enumerate(blocks)}
        maps: list[PairPerm | None] = [None] * len(blocks)
        maps[0] = self._identity
        frontier = [0]
        while frontier:
            j = frontier.pop()
            carrier = maps[j]
            assert carrier is not None
            for g in gens:
                image = tuple(
                    sorted(_apply_elem(g, e) for e in blocks[j])
                )
                k = index_of.get(image)
                if k is None:
                    return None  # a generator tears a block apart
                if maps[k] is None:
                    maps[k] = compose_pair(g, carrier)
                    frontier.append(k)
        if any(m is None for m in maps):
            return None  # blocks not all interchangeable
        carriers = [m for m in maps if m is not None]
        strategy = _BlockStrategy(blocks, carriers, self.n_p, self.n_c)
        for j in range(len(blocks) - 1):
            order = list(range(len(blocks)))
            order[j], order[j + 1] = order[j + 1], order[j]
            tau = strategy.sigma_for(tuple(order))
            if not is_automorphism(ir, tau[0], tau[1]):
                return None
        return strategy

    # ------------------------------------------------------------------
    # State action
    # ------------------------------------------------------------------

    def apply(self, g: PairPerm, state: "State") -> "State":
        """The image of ``state`` under the automorphism ``g``."""
        gp, gc = g
        indices, occupancies = state
        new_indices = [0] * len(indices)
        for slot, value in enumerate(indices):
            new_indices[self.pslot_of_pid[gp[self.pid_of_pslot[slot]]]] = value
        new_occ = [0] * len(occupancies)
        for slot, value in enumerate(occupancies):
            new_occ[self.bslot_of_cid[gc[self.cid_of_bslot[slot]]]] = value
        return (tuple(new_indices), tuple(new_occ))

    def map_action(self, g: PairPerm, action: "Action") -> "Action":
        """The action corresponding to ``action`` in the ``g``-image frame."""
        ir = self.ts.ir
        return action._replace(
            channel=ir.channels[g[1][ir.cid(action.channel)]]
        )

    def canonicalize(self, state: "State") -> "tuple[State, PairPerm]":
        """``(representative, sigma)`` with ``representative == sigma(state)``.

        ``sigma`` is always a verified automorphism (possibly the
        identity), so the representative is genuinely reachable iff the
        state is, and schedules found at representatives pull back
        through ``sigma`` inverses to concrete schedules.
        """
        if not self.strategies:
            return state, self._identity
        sigma = self._identity
        for strategy in self.strategies:
            state, sector_sigma = self._canonicalize_sector(strategy, state)
            if not is_identity_pair(sector_sigma):
                sigma = compose_pair(sector_sigma, sigma)
        return state, sigma

    def _canonicalize_sector(
        self, strategy: object, state: "State"
    ) -> "tuple[State, PairPerm]":
        if isinstance(strategy, _BlockStrategy):
            return self._canonicalize_blocks(strategy, state)
        if isinstance(strategy, _EnumStrategy):
            best = state
            best_sigma = self._identity
            for g in strategy.elements:
                image = self.apply(g, state)
                if image < best:
                    best, best_sigma = image, g
            return best, best_sigma
        assert isinstance(strategy, _GreedyStrategy)
        sigma = self._identity
        improved = True
        while improved:
            improved = False
            for g in strategy.moves:
                image = self.apply(g, state)
                if image < state:
                    state = image
                    sigma = compose_pair(g, sigma)
                    improved = True
        return state, sigma

    def _block_vector(
        self, strategy: _BlockStrategy, j: int, state: "State"
    ) -> tuple[int, ...]:
        indices, occupancies = state
        vector: list[int] = []
        for tag, i in strategy.aligned[j]:
            if tag == "p":
                slot = self.pslot_of_pid.get(i)
                if slot is not None:
                    vector.append(indices[slot])
            else:
                slot = self.bslot_of_cid.get(i)
                if slot is not None:
                    vector.append(occupancies[slot])
        return tuple(vector)

    def _canonicalize_blocks(
        self, strategy: _BlockStrategy, state: "State"
    ) -> "tuple[State, PairPerm]":
        m = len(strategy.blocks)
        keys = sorted(
            range(m), key=lambda j: (self._block_vector(strategy, j, state), j)
        )
        order = tuple(keys)
        if order == tuple(range(m)):
            return state, self._identity
        cache_key = (id(strategy), order)
        if cache_key not in self._sigma_cache:
            candidate = strategy.sigma_for(order)
            self._sigma_cache[cache_key] = (
                candidate
                if is_automorphism(self.ts.ir, candidate[0], candidate[1])
                else None  # defensive: refuse unverified moves
            )
        sigma = self._sigma_cache[cache_key]
        if sigma is None:
            return state, self._identity
        return self.apply(sigma, state), sigma


def state_symmetry(
    ts: "TransitionSystem", analysis: SymmetryAnalysis | None = None
) -> StateSymmetry:
    """Convenience constructor mirroring :class:`StateSymmetry`."""
    return StateSymmetry(ts, analysis)


def inverse_schedule_action(
    sym: StateSymmetry, sigma: PairPerm, action: "Action"
) -> "Action":
    """Map a representative-frame action back through ``sigma``."""
    return sym.map_action(invert_pair(sigma), action)


__all__ = [
    "ENUMERATION_LIMIT",
    "StateSymmetry",
    "state_symmetry",
    "inverse_schedule_action",
]
