"""Cross-design translation of performance artifacts via canonical frames.

Two lowered IRs with equal ``canonical_hash`` are isomorphic: some
automorphism-compatible renaming carries one onto the other.  Their timed
marked graphs are therefore isomorphic too, and — when the per-process
latencies also agree *in canonical positions* — an analysis computed for
one is valid for the other, except that every process/channel name in the
result is spelled in the writer's vocabulary.

A :class:`CanonicalEnvelope` persists a
:class:`~repro.model.performance.SystemPerformance` together with the
writer's name tables in canonical order.  A reader with its own
:class:`~repro.sym.canonical.SymmetryAnalysis` aligns the two tables
position by position (canonical position ``i`` names the same abstract
node in both designs), obtaining a writer→reader renaming that is exact
by construction.  The TMG naming schemes of :mod:`repro.model.build`
(``proc:``/``ch:`` transitions, ``/comp``, ``/get:``, ``/put:``,
``/data``, ``/credit`` places) are then rewritten token by token; any
token that fails to parse turns the whole translation into a cache miss
— reuse is never allowed to produce a half-renamed report.

Only successful analyses travel this way.  Deadlock diagnoses embed
concrete witness text and stay keyed to their own design.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping

from repro.model.build import (
    CHANNEL_PREFIX,
    GET_SUFFIX,
    PROCESS_PREFIX,
    PUT_SUFFIX,
)
from repro.model.performance import SystemPerformance
from repro.perf.fingerprint import analysis_fingerprint
from repro.sym.canonical import SymmetryAnalysis


@dataclass(frozen=True)
class CanonicalEnvelope:
    """A performance result plus the writer's canonical name frame."""

    performance: SystemPerformance
    process_names: tuple[str, ...]  # writer names, canonical order
    channel_names: tuple[str, ...]


def canonical_result_key(
    analysis: SymmetryAnalysis,
    latencies: Mapping[str, int],
    engine: str,
    exact: bool,
    float_screen: bool,
) -> str:
    """The orbit-invariant analogue of the analysis fingerprint.

    Latencies enter by canonical *position*, not by name, so two
    isomorphic designs whose corresponding processes share latencies
    produce the same key whatever they called those processes.
    """
    positional = {
        f"#{i}": latencies[name]
        for i, name in enumerate(analysis.canonical_process_names)
    }
    return analysis_fingerprint(
        analysis.canonical_hash, positional, engine, exact, float_screen
    )


def make_envelope(
    performance: SystemPerformance, analysis: SymmetryAnalysis
) -> CanonicalEnvelope:
    """Wrap a freshly computed result in the writer's canonical frame."""
    return CanonicalEnvelope(
        performance=performance,
        process_names=analysis.canonical_process_names,
        channel_names=analysis.canonical_channel_names,
    )


def remap_performance(
    envelope: CanonicalEnvelope, analysis: SymmetryAnalysis
) -> SystemPerformance | None:
    """Translate an envelope into the reader's name frame.

    Returns ``None`` — caller treats it as a cache miss — when the
    frames cannot be aligned or any report token fails to parse.
    """
    if not isinstance(envelope, CanonicalEnvelope):  # defensive: stale store
        return None
    if len(envelope.process_names) != len(analysis.canonical_process_names):
        return None
    if len(envelope.channel_names) != len(analysis.canonical_channel_names):
        return None
    pmap = dict(zip(envelope.process_names, analysis.canonical_process_names))
    cmap = dict(zip(envelope.channel_names, analysis.canonical_channel_names))
    performance = envelope.performance

    def proc(name: str) -> str | None:
        return pmap.get(name)

    def chan(name: str) -> str | None:
        return cmap.get(name)

    def transition(token: str) -> str | None:
        if token.startswith(PROCESS_PREFIX):
            target = proc(token[len(PROCESS_PREFIX):])
            return None if target is None else PROCESS_PREFIX + target
        if token.startswith(CHANNEL_PREFIX):
            body = token[len(CHANNEL_PREFIX):]
            for suffix in (PUT_SUFFIX, GET_SUFFIX):
                if body.endswith(suffix):
                    target = chan(body[: -len(suffix)])
                    return (
                        None
                        if target is None
                        else CHANNEL_PREFIX + target + suffix
                    )
            target = chan(body)
            return None if target is None else CHANNEL_PREFIX + target
        return None

    def place(token: str) -> str | None:
        for suffix in ("/data", "/credit"):
            if token.endswith(suffix):
                target = chan(token[: -len(suffix)])
                return None if target is None else target + suffix
        if token.endswith("/comp"):
            target = proc(token[: -len("/comp")])
            return None if target is None else target + "/comp"
        head, sep, tail = token.rpartition("/")
        if not sep:
            return None
        kind, sep2, channel = tail.partition(":")
        if not sep2 or kind not in ("get", "put"):
            return None
        new_process = proc(head)
        new_channel = chan(channel)
        if new_process is None or new_channel is None:
            return None
        return f"{new_process}/{kind}:{new_channel}"

    def remap_all(
        tokens: tuple[str, ...], fn: Callable[[str], str | None]
    ) -> tuple[str, ...] | None:
        out: list[str] = []
        for token in tokens:
            mapped = fn(token)
            if mapped is None:
                return None
            out.append(mapped)
        return tuple(out)

    critical_processes = remap_all(
        performance.critical_processes, lambda t: proc(t)
    )
    critical_channels = remap_all(
        performance.critical_channels, lambda t: chan(t)
    )
    critical_cycle = remap_all(performance.report.critical_cycle, transition)
    critical_places = remap_all(performance.report.critical_places, place)
    if None in (
        critical_processes,
        critical_channels,
        critical_cycle,
        critical_places,
    ):
        return None
    assert critical_processes is not None
    assert critical_channels is not None
    assert critical_cycle is not None
    assert critical_places is not None
    report = replace(
        performance.report,
        critical_cycle=critical_cycle,
        critical_places=critical_places,
    )
    return replace(
        performance,
        critical_processes=critical_processes,
        critical_channels=critical_channels,
        report=report,
    )


__all__ = [
    "CanonicalEnvelope",
    "canonical_result_key",
    "make_envelope",
    "remap_performance",
]
