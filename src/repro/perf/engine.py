"""The memoized, incremental performance-analysis engine.

:class:`PerformanceEngine` is a drop-in substitute for
:func:`repro.model.performance.analyze_system` that makes *repeated*
analysis cheap — the single hottest lever of the DSE loop (ISSUE 1; see
also the exploration-cost arguments in Alias 2018 and Chavet et al.).
Three mechanisms stack, each preserving the uncached semantics:

1. **Result memoization** — a content-addressed LRU keyed on the full
   analysis fingerprint (structure + effective latencies + engine mode).
   A hit returns the previously computed
   :class:`~repro.model.performance.SystemPerformance` (or re-raises the
   previously diagnosed :class:`~repro.errors.DeadlockError`) without any
   graph work.  Values are frozen dataclasses, safe to share.
2. **Incremental event graphs** — on a result miss whose *structure*
   (topology + channel parameters + ordering) was seen before, the cached
   event-graph skeleton is re-instantiated with patched process delays in
   O(E), skipping TMG construction, place contraction, ordering
   validation, and the token-free-cycle scan (liveness is structural).
   Node and edge order are preserved exactly, so the exact engines produce
   bit-identical results to a from-scratch build.
3. **Float-first Howard** — with ``float_screen=True`` (the default) and
   ``exact=True``, candidates are screened by float policy iteration and
   only the winning critical cycle is re-verified exactly
   (:func:`repro.tmg.howard.maximum_cycle_ratio_screened`).  The returned
   cycle time is still an exact :class:`~fractions.Fraction`; only the
   representative cycle among equally critical ones may differ.  Pass
   ``float_screen=False`` for fully bit-identical reports including the
   critical-cycle choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.system import ChannelOrdering, SystemGraph
from repro.errors import DeadlockError, NotLiveError
from repro.ir import LoweredIR, lower
from repro.model.performance import SystemPerformance, _system_deadlock
from repro.perf.cache import MISS, CacheStats, LruCache
from repro.perf.fingerprint import (
    analysis_fingerprint,
    effective_latencies,
)
from repro.perf.incremental import StructureEntry, build_structure
from repro.store import ArtifactStore
from repro.tmg.analysis import Engine, analyze_event_graph


@dataclass(frozen=True)
class _CachedDeadlock:
    """A memoized deadlock diagnosis; re-raised as a fresh error per hit."""

    message: str
    cycle: tuple[str, ...]

    def error(self) -> DeadlockError:
        return DeadlockError(self.message, cycle=list(self.cycle))


class PerformanceEngine:
    """Cached :func:`~repro.model.performance.analyze_system`.

    Args:
        max_results: LRU bound of the full-result cache (entries are one
            small frozen dataclass each).
        max_structures: LRU bound of the event-graph structure cache
            (entries hold one TMG + skeleton; keep this modest).
        incremental: Reuse event-graph structures across latency-only
            changes.  Disable to ablate (every miss rebuilds the TMG).
        float_screen: Screen exact Howard analyses in float arithmetic and
            re-verify the winner exactly.  Exact cycle times either way.
        store: Optional persistent :class:`~repro.store.ArtifactStore`
            layered *under* the results LRU: an LRU miss consults the
            store (kind ``"analysis"``, params digest = the analysis
            fingerprint) before recomputing, and every computed result —
            including memoized deadlock diagnoses — is written back.
            This is how a warm cache survives the process and is shared
            by a worker fleet; :meth:`clear` stays process-local (use
            ``store.clear()`` to invalidate the fleet).
        canonical_reuse: Opt-in second-chance store key by the
            orbit-canonical hash (:mod:`repro.sym`): when both the exact
            structural lookup and the plain store lookup miss, a
            persisted result computed for *any* isomorphic design with
            matching canonical-position latencies is translated into
            this design's name frame (:mod:`repro.sym.remap`) and
            served.  The cycle time is exact-identical; the reported
            critical cycle may be the symmetric image of the one a
            fresh analysis would pick (same caveat class as
            ``float_screen``).  Off by default so store warmth cannot
            perturb default DSE trajectories; no effect without a
            ``store``.  Deadlock diagnoses are never shared this way.
    """

    def __init__(
        self,
        max_results: int = 4096,
        max_structures: int = 128,
        incremental: bool = True,
        float_screen: bool = True,
        store: ArtifactStore | None = None,
        canonical_reuse: bool = False,
    ):
        self.results = LruCache(max_results)
        self.structures = LruCache(max_structures)
        self.incremental = incremental
        self.float_screen = float_screen
        self.store = store
        self.canonical_reuse = canonical_reuse

    # ------------------------------------------------------------------

    def analyze(
        self,
        system: SystemGraph,
        ordering: ChannelOrdering | None = None,
        process_latencies: Mapping[str, int] | None = None,
        engine: Engine | str = Engine.HOWARD,
        exact: bool = True,
    ) -> SystemPerformance:
        """Cycle time and critical cycle, served from cache when possible.

        Same signature, results, and raised errors as
        :func:`repro.model.performance.analyze_system`.
        """
        engine = Engine(engine)
        if ordering is None:
            ordering = ChannelOrdering.declaration_order(system)
        latencies = effective_latencies(system, process_latencies)
        screen = self.float_screen and exact and engine is Engine.HOWARD
        ir = lower(system, ordering)
        structure_key = ir.structural_hash
        result_key = analysis_fingerprint(
            structure_key, latencies, engine.value, exact, screen
        )

        cached = self.results.get(result_key)
        if cached is not MISS:
            if isinstance(cached, _CachedDeadlock):
                raise cached.error()
            return cached

        if self.store is not None:
            stored = self.store.get(structure_key, "analysis", result_key)
            if stored is not MISS and isinstance(
                stored, (SystemPerformance, _CachedDeadlock)
            ):
                self.results.put(result_key, stored)
                if isinstance(stored, _CachedDeadlock):
                    raise stored.error()
                return stored
            if self.canonical_reuse:
                translated = self._canonical_lookup(ir, latencies, engine, exact, screen)
                if translated is not None:
                    self.results.put(result_key, translated)
                    return translated

        entry = self._structure(structure_key, system, ordering, latencies, ir)
        if entry.deadlock_cycle is not None:
            error = _system_deadlock(
                entry.model,
                NotLiveError(
                    "token-free cycle", cycle=list(entry.deadlock_cycle)
                ),
            )
            diagnosis = _CachedDeadlock(str(error), tuple(error.cycle or ()))
            self.results.put(result_key, diagnosis)
            if self.store is not None:
                self.store.put(structure_key, "analysis", result_key, diagnosis)
            raise error

        graph = entry.instantiate(latencies)
        report = analyze_event_graph(
            graph,
            engine=engine,
            exact=exact,
            float_screen=screen,
            name=entry.model.tmg.name,
            check_live=False,
        )
        performance = SystemPerformance(
            cycle_time=report.cycle_time,
            critical_processes=entry.model.critical_processes(
                report.critical_cycle
            ),
            critical_channels=entry.model.critical_channels(
                report.critical_cycle
            ),
            report=report,
        )
        self.results.put(result_key, performance)
        if self.store is not None:
            self.store.put(structure_key, "analysis", result_key, performance)
            if self.canonical_reuse:
                self._canonical_store(ir, latencies, engine, exact, screen, performance)
        return performance

    # ------------------------------------------------------------------

    def _canonical_lookup(
        self,
        ir: LoweredIR,
        latencies: Mapping[str, int],
        engine: Engine,
        exact: bool,
        screen: bool,
    ) -> SystemPerformance | None:
        """Second-chance store read via the orbit-canonical key."""
        from repro.sym import analyze_symmetry
        from repro.sym.remap import canonical_result_key, remap_performance

        assert self.store is not None
        analysis = analyze_symmetry(ir)
        if not analysis.complete:
            return None  # incomplete labeling: hashes are not canonical
        key = canonical_result_key(
            analysis, latencies, engine.value, exact, screen
        )
        envelope = self.store.get(analysis.canonical_hash, "analysis", key)
        if envelope is MISS:
            return None
        return remap_performance(envelope, analysis)

    def _canonical_store(
        self,
        ir: LoweredIR,
        latencies: Mapping[str, int],
        engine: Engine,
        exact: bool,
        screen: bool,
        performance: SystemPerformance,
    ) -> None:
        """Write the canonical-frame envelope next to the exact entry."""
        from repro.sym import analyze_symmetry
        from repro.sym.remap import canonical_result_key, make_envelope

        assert self.store is not None
        analysis = analyze_symmetry(ir)
        if not analysis.complete:
            return
        key = canonical_result_key(
            analysis, latencies, engine.value, exact, screen
        )
        self.store.put(
            analysis.canonical_hash,
            "analysis",
            key,
            make_envelope(performance, analysis),
        )

    # ------------------------------------------------------------------

    def _structure(
        self,
        structure_key: str,
        system: SystemGraph,
        ordering: ChannelOrdering,
        latencies: Mapping[str, int],
        ir: LoweredIR,
    ) -> StructureEntry:
        if not self.incremental:
            return build_structure(system, ordering, latencies, ir=ir)
        entry = self.structures.get(structure_key)
        if entry is MISS:
            entry = build_structure(system, ordering, latencies, ir=ir)
            self.structures.put(structure_key, entry)
        return entry

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, CacheStats]:
        """Live counters of both caches (``results`` and ``structures``)."""
        return {"results": self.results.stats, "structures": self.structures.stats}

    def stats_dict(self) -> dict[str, dict[str, int | float]]:
        """JSON-friendly snapshot of :meth:`stats`."""
        return {name: s.as_dict() for name, s in self.stats().items()}

    def format_stats(self) -> str:
        """Human-readable cache report (one line per cache)."""
        lines = []
        for name, s in self.stats().items():
            lines.append(f"{name:>10}: {s}")
        return "\n".join(lines)

    def clear(self) -> None:
        """Drop all cached entries (counters are retained)."""
        self.results.clear()
        self.structures.clear()


#: Process-wide engine used by callers that opt in without carrying one.
_default_engine: PerformanceEngine | None = None


def default_engine() -> PerformanceEngine:
    """The lazily created process-wide :class:`PerformanceEngine`."""
    global _default_engine
    if _default_engine is None:
        _default_engine = PerformanceEngine()
    return _default_engine


def reset_default_engine() -> None:
    """Discard the process-wide engine (tests, long-lived services)."""
    global _default_engine
    _default_engine = None
