"""Memoized, incremental performance analysis (the DSE hot-loop cache).

The exploration loop and the ordering baselines call
:func:`repro.model.analyze_system` thousands of times on configurations
that differ only in per-process latencies or statement order.  This
package makes those repeats cheap without changing any observable result:

* :class:`PerformanceEngine` — content-addressed LRU result cache +
  incremental event-graph reuse + float-screen/exact-verify Howard.
* :class:`LruCache` / :class:`CacheStats` — the bounded cache primitive
  with hit/miss/eviction counters (also used for memoized orderings).
* :mod:`repro.perf.fingerprint` — the canonical invalidation keys.

See ``docs/API.md`` ("Analysis caching") for the caching contract.
"""

from repro.perf.cache import MISS, CacheStats, LruCache
from repro.perf.engine import (
    PerformanceEngine,
    default_engine,
    reset_default_engine,
)
from repro.perf.fingerprint import (
    analysis_fingerprint,
    effective_latencies,
    structure_fingerprint,
    system_fingerprint,
)
from repro.perf.incremental import StructureEntry, build_structure

__all__ = [
    "MISS",
    "CacheStats",
    "LruCache",
    "PerformanceEngine",
    "StructureEntry",
    "analysis_fingerprint",
    "build_structure",
    "default_engine",
    "effective_latencies",
    "reset_default_engine",
    "structure_fingerprint",
    "system_fingerprint",
]
