"""Canonical, content-addressed fingerprints of analysis requests.

The DSE hot loop calls :func:`repro.model.analyze_system` over and over on
configurations that are *values*, not identities: two
:class:`~repro.core.system.SystemGraph` objects with the same processes,
channels, and ordering describe the same timed marked graph and therefore
the same cycle time.  A cache keyed on object identity would miss almost
every repeat (the explorer rebuilds systems freely via
``with_process_latencies``), so keys here are SHA-256 digests of a
canonical rendering of the request's content.

Two fingerprint layers mirror the two reuse granularities:

* the **structure fingerprint** covers everything that shapes the event
  graph — topology, channel parameters (latency, capacity, initial
  tokens), statement ordering, and the system name (which appears in error
  messages) — but *excludes process latencies*.  Calls that differ only in
  latencies (the explorer's common case) share one structure entry and
  reuse its event graph and liveness verdict.
* the **analysis fingerprint** extends the structure fingerprint with the
  effective per-process latencies and the engine/arithmetic mode; it keys
  the full-result cache.

Latencies enter the key as *effective* values — ``overrides.get(name,
process.latency)`` — exactly the resolution rule of
:func:`repro.model.build.build_tmg`, so partial override maps hash
identically to their fully spelled-out equivalents.
"""

from __future__ import annotations

import hashlib
from typing import Mapping

from repro.core.system import ChannelOrdering, SystemGraph
from repro.ir import lower

_SEPARATOR = "\x1f"  # unit separator: cannot appear in validated names


def _digest(parts: list[str]) -> str:
    return hashlib.sha256(_SEPARATOR.join(parts).encode("utf-8")).hexdigest()


def effective_latencies(
    system: SystemGraph,
    process_latencies: Mapping[str, int] | None = None,
) -> dict[str, int]:
    """Resolve the latency of every process under an override map.

    Matches the resolution of :func:`repro.model.build.build_tmg`:
    overridden processes take the override, the rest keep the latency
    stored on the system.
    """
    overrides = process_latencies or {}
    return {
        p.name: overrides.get(p.name, p.latency) for p in system.processes
    }


def structure_fingerprint(
    system: SystemGraph,
    ordering: ChannelOrdering,
) -> str:
    """Digest of the latency-independent shape of an analysis request.

    Invalidation keys: system name, process set (names and kinds), every
    channel's endpoints/latency/capacity/initial-tokens, and the full
    get/put statement order of every process.  Process latencies are
    deliberately absent — see the module docstring.

    The digest *is* :attr:`repro.ir.LoweredIR.structural_hash`: the
    structure cache, the lint cache, and the lowering memo all address the
    same compiled object by the same key, so an analysis served from any
    of them provably describes the IR the simulator and verifier execute.
    """
    return lower(system, ordering).structural_hash


def analysis_fingerprint(
    structure: str,
    latencies: Mapping[str, int],
    engine: str,
    exact: bool,
    float_screen: bool,
) -> str:
    """Digest identifying one fully specified analysis call.

    Combines the structure fingerprint with the effective latencies and
    the engine/arithmetic mode — the complete set of inputs that can change
    the returned :class:`~repro.model.performance.SystemPerformance`.
    """
    parts = ["analysis:v1", structure, engine, str(exact), str(float_screen)]
    for name in sorted(latencies):
        parts.append(f"l:{name}={latencies[name]}")
    return _digest(parts)


def system_fingerprint(
    system: SystemGraph,
    ordering: ChannelOrdering | None = None,
    process_latencies: Mapping[str, int] | None = None,
) -> str:
    """Digest of a system *including* its effective latencies.

    This is the key for derived artifacts that depend on latencies but not
    on an engine mode — e.g. memoized channel orderings
    (:func:`repro.ordering.algorithm.channel_ordering`), whose labels are
    functions of the latencies and the initial statement order.
    """
    if ordering is None:
        ordering = ChannelOrdering.declaration_order(system)
    latencies = effective_latencies(system, process_latencies)
    parts = ["system:v1", structure_fingerprint(system, ordering)]
    for name in sorted(latencies):
        parts.append(f"l:{name}={latencies[name]}")
    return _digest(parts)
