"""Incremental event-graph construction for latency-only re-analysis.

The ERMES explorer evaluates many implementation selections of the *same*
system under the *same* ordering: between consecutive ``analyze_system``
calls, only the per-process latencies change.  The expensive parts of an
analysis call — validating the ordering, building the TMG, contracting it
into the event graph, and scanning for token-free cycles — depend only on
structure, never on delays:

* the set of transitions and places is fixed by topology and ordering;
* every edge's ``tokens`` comes from the initial marking (structural);
* liveness (existence of a token-free cycle) ignores delays entirely;
* only each edge's ``delay`` — the delay of its *target* transition —
  moves, and then only for edges targeting a ``proc:`` transition
  (channel transitions carry the structural channel latency, and the get
  side of a buffered channel is always zero-delay).

:class:`StructureEntry` therefore captures one build of the model and an
edge-order-preserving skeleton of its event graph; :meth:`instantiate`
patches process-transition delays into fresh :class:`~repro.tmg.event_graph.Edge`
values in O(E) without touching the TMG.  Because node order, per-node edge
order, tokens, and place names are all preserved exactly, running the exact
Howard engine on an instantiated graph is *bit-identical* to running it on
a from-scratch build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.system import ChannelOrdering, SystemGraph
from repro.errors import ValidationError
from repro.ir import LoweredIR, lower
from repro.model.build import PROCESS_PREFIX, SystemTmg, build_tmg
from repro.perf.fingerprint import effective_latencies
from repro.tmg.deadlock import find_token_free_cycle
from repro.tmg.event_graph import Edge, EventGraph, event_graph_from_ir


@dataclass(frozen=True)
class _EdgeTemplate:
    """One event-graph edge with its delay binding.

    ``process`` names the worker whose latency the edge's delay tracks;
    ``None`` marks a structurally fixed delay (channel transitions), stored
    in ``fixed_delay``.
    """

    source: str
    target: str
    tokens: int
    place: str
    process: str | None
    fixed_delay: int


@dataclass
class StructureEntry:
    """The reusable, latency-independent part of one analysis request."""

    model: SystemTmg
    nodes: tuple[str, ...]
    #: Per-node edge templates in the exact order build_event_graph emits.
    templates: dict[str, tuple[_EdgeTemplate, ...]]
    #: Token-free cycle (deadlock witness) or None — structural, computed once.
    deadlock_cycle: list[str] | None
    #: The lowered IR this structure was compiled from; its
    #: ``structural_hash`` is the entry's cache key.
    ir: LoweredIR

    def instantiate(self, latencies: Mapping[str, int]) -> EventGraph:
        """The event graph under ``latencies`` (full effective map).

        Raises:
            ValidationError: A latency is negative, with the same message
                :func:`repro.model.build.build_tmg` would produce.
        """
        for name, latency in latencies.items():
            if latency < 0:
                raise ValidationError(
                    f"latency override for {name!r} must be >= 0, got {latency}"
                )
        succ: dict[str, list[Edge]] = {}
        for node in self.nodes:
            edges = []
            for t in self.templates[node]:
                delay = (
                    latencies[t.process] if t.process is not None
                    else t.fixed_delay
                )
                edges.append(
                    Edge(
                        source=t.source,
                        target=t.target,
                        tokens=t.tokens,
                        delay=delay,
                        place=t.place,
                    )
                )
            succ[node] = edges
        return EventGraph(nodes=self.nodes, succ=succ)


def build_structure(
    system: SystemGraph,
    ordering: ChannelOrdering | None,
    process_latencies: Mapping[str, int] | None = None,
    *,
    ir: LoweredIR | None = None,
) -> StructureEntry:
    """Build the shared structure of a (system, ordering) pair.

    Lowers to the shared IR (memoized; pass ``ir`` to skip the probe),
    builds the TMG once (with whatever latencies the first caller passed —
    they only seed the templates' *bindings*, not their values), records
    the event graph skeleton, and runs the structural liveness scan.  The
    skeleton is contracted straight from the IR
    (:func:`~repro.tmg.event_graph.event_graph_from_ir`), which replicates
    the TMG route's node/edge order exactly.
    """
    if ir is None:
        ir = lower(system, ordering)
    model = build_tmg(system, ordering, process_latencies=process_latencies, ir=ir)
    graph = event_graph_from_ir(ir, effective_latencies(system, process_latencies))
    templates: dict[str, tuple[_EdgeTemplate, ...]] = {}
    for node in graph.nodes:
        row = []
        for edge in graph.succ[node]:
            if edge.target.startswith(PROCESS_PREFIX):
                process: str | None = edge.target[len(PROCESS_PREFIX):]
                fixed = 0
            else:
                process = None
                fixed = edge.delay
            row.append(
                _EdgeTemplate(
                    source=edge.source,
                    target=edge.target,
                    tokens=edge.tokens,
                    place=edge.place,
                    process=process,
                    fixed_delay=fixed,
                )
            )
        templates[node] = tuple(row)
    return StructureEntry(
        model=model,
        nodes=graph.nodes,
        templates=templates,
        deadlock_cycle=find_token_free_cycle(graph),
        ir=ir,
    )
