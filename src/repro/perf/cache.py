"""Bounded LRU cache with hit/miss/eviction accounting.

A deliberately small, dependency-free LRU used by the performance engine
for both its caches (full results and event-graph structures) and by the
ordering layer for memoized :func:`~repro.ordering.algorithm.channel_ordering`
results.  Keys are content-addressed digests (see
:mod:`repro.perf.fingerprint`), values are immutable analysis artifacts,
so sharing a cached value across callers is safe.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterator

#: Sentinel distinguishing "not cached" from a cached ``None``.
MISS = object()


@dataclass
class CacheStats:
    """Counters of one cache's lifetime activity."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions} hit_rate={self.hit_rate:.1%}"
        )


class LruCache:
    """An ordered-dict LRU: lookups refresh recency, inserts evict the
    least recently used entry once ``maxsize`` is exceeded.

    ``maxsize <= 0`` disables storage entirely (every lookup is a miss and
    nothing is retained) — useful to ablate caching without touching call
    sites.
    """

    def __init__(self, maxsize: int = 1024):
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self.stats = CacheStats()

    def get(self, key: str) -> Any:
        """The cached value, or the :data:`MISS` sentinel."""
        try:
            value = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            return MISS
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        if self.maxsize <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are retained)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)
