"""Lowering: compile a ``(system, ordering)`` pair to a :class:`LoweredIR`.

:func:`lower` is the single entry point.  It validates the ordering
against the system, flattens every process's statement chain to dense
integer arrays, snapshots the channel tables, and stamps the result with
its content hash.  Results are memoized, so the four downstream
consumers (simulator, TMG builder, verifier, lint/perf caches) can each
call :func:`lower` independently and still share one compiled object.

Two renderings of the same structure are used deliberately:

* the **memo key** preserves declaration order, so a cache hit is
  guaranteed to return tables whose process/channel ids match the
  caller's system exactly (the TMG builder's transition order depends on
  declaration order, and analysis results must stay bit-identical);
* the **structural hash** sorts each section by name, so two systems
  that express the same design with different dict-insertion order hash
  identically — the property external caches and fingerprints rely on.

The memo is a small LRU implemented locally: this package sits *below*
``repro.perf`` in the layer diagram (perf fingerprints delegate to the
IR hash), so importing ``repro.perf.cache`` here would create a cycle.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from repro.core.system import ChannelOrdering, SystemGraph
from repro.ir.program import (
    OP_COMPUTE,
    OP_GET,
    OP_PUT,
    LoweredIR,
    kind_code,
)

#: Unit separator, unlikely in user-facing names (same convention as the
#: perf fingerprints this hash now underpins).
_SEPARATOR = "\x1f"

#: Version tag: bump when the rendering schema changes so stale external
#: caches can never alias a new-format hash.
_RENDER_VERSION = "ir:v1"

_MEMO_CAPACITY = 256

_memo: OrderedDict[str, LoweredIR] = OrderedDict()


def clear_lowering_cache() -> None:
    """Drop every memoized :class:`LoweredIR` (test isolation hook)."""
    _memo.clear()


def lowering_cache_info() -> tuple[int, int]:
    """``(entries, capacity)`` of the lowering memo."""
    return len(_memo), _MEMO_CAPACITY


def _render_parts(
    system: SystemGraph, ordering: ChannelOrdering
) -> tuple[list[str], list[str], list[str]]:
    """The three rendered sections (processes, channels, orderings).

    Each line is self-delimiting; within a section, lines are emitted in
    declaration order (callers sort for the canonical hash).
    """
    process_lines = [
        f"p{_SEPARATOR}{p.name}{_SEPARATOR}{p.kind.value}" for p in system.processes
    ]
    channel_lines = [
        f"c{_SEPARATOR}{c.name}{_SEPARATOR}{c.producer}{_SEPARATOR}{c.consumer}"
        f"{_SEPARATOR}{c.latency}{_SEPARATOR}{c.capacity}{_SEPARATOR}{c.initial_tokens}"
        for c in system.channels
    ]
    ordering_lines = [
        f"o{_SEPARATOR}{name}"
        f"{_SEPARATOR}g={','.join(ordering.gets_of(name))}"
        f"{_SEPARATOR}p={','.join(ordering.puts_of(name))}"
        for name in system.process_names
    ]
    return process_lines, channel_lines, ordering_lines


def structural_hash_of(system: SystemGraph, ordering: ChannelOrdering) -> str:
    """The canonical content hash of a ``(system, ordering)`` pair.

    Insertion-order independent: each section is sorted by name before
    hashing, so the digest identifies the *design*, not the accident of
    construction order.  ``lower(...).structural_hash`` equals this.
    """
    processes, channels, orderings = _render_parts(system, ordering)
    canonical = "\n".join(
        [_RENDER_VERSION, system.name]
        + sorted(processes)
        + sorted(channels)
        + sorted(orderings)
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def lower(
    system: SystemGraph, ordering: ChannelOrdering | None = None
) -> LoweredIR:
    """Compile ``(system, ordering)`` to its :class:`LoweredIR`.

    Args:
        system: The system topology.
        ordering: Statement orders; defaults to declaration order.  The
            ordering is validated against the system (a non-permutation
            raises :class:`~repro.errors.ValidationError`).

    Returns:
        The memoized IR.  Table order follows the system's declaration
        order; the :attr:`~repro.ir.program.LoweredIR.structural_hash`
        does not (see module docstring).
    """
    validate = ordering is not None
    if ordering is None:
        ordering = ChannelOrdering.declaration_order(system)

    processes, channels, orderings = _render_parts(system, ordering)
    declared = "\n".join(
        [_RENDER_VERSION, system.name] + processes + channels + orderings
    )
    cached = _memo.get(declared)
    if cached is not None:
        # A hit proves validity: the rendering covers the channel tables
        # and the full get/put lists, so a byte-identical key can only be
        # produced by an ordering already validated against an identical
        # system.
        _memo.move_to_end(declared)
        return cached
    if validate:
        ordering.validate(system)

    canonical = "\n".join(
        [_RENDER_VERSION, system.name]
        + sorted(processes)
        + sorted(channels)
        + sorted(orderings)
    )
    digest = hashlib.sha256(canonical.encode()).hexdigest()

    process_names = system.process_names
    channel_names = system.channel_names
    process_index = {name: i for i, name in enumerate(process_names)}
    channel_index = {name: i for i, name in enumerate(channel_names)}

    producers: list[int] = []
    consumers: list[int] = []
    channel_latencies: list[int] = []
    capacities: list[int] = []
    initial_tokens: list[int] = []
    buffered: list[bool] = []
    effective_capacities: list[int] = []
    for c in system.channels:
        producers.append(process_index[c.producer])
        consumers.append(process_index[c.consumer])
        channel_latencies.append(c.latency)
        capacity = c.capacity
        initial = c.initial_tokens
        capacities.append(capacity)
        initial_tokens.append(initial)
        buffered.append(capacity > 0 or initial > 0)
        effective_capacities.append(capacity if capacity > initial else initial)

    op_kinds: list[tuple[int, ...]] = []
    op_args: list[tuple[int, ...]] = []
    comm_indices: list[tuple[int, ...]] = []
    first_marked: list[int] = []
    gets_map = ordering.gets
    puts_map = ordering.puts
    for pid, name in enumerate(process_names):
        gets = gets_map.get(name, ())
        puts = puts_map.get(name, ())
        kinds = (
            (OP_GET,) * len(gets) + (OP_COMPUTE,) + (OP_PUT,) * len(puts)
        )
        args = tuple(
            [channel_index[c] for c in gets]
            + [pid]
            + [channel_index[c] for c in puts]
        )
        op_kinds.append(kinds)
        op_args.append(args)
        n_gets = len(gets)
        comm_indices.append(
            tuple(range(n_gets)) + tuple(range(n_gets + 1, len(kinds)))
        )
        # The paper's marking rule on a canonical get*-compute-put* chain:
        # first get (index 0); a process with no gets (a testbench source)
        # starts at its first put (index 1, right after the compute); a
        # degenerate chain starts at the compute.  Mirrors
        # ``repro.model.build._first_marked_statement``.
        first_marked.append(0 if n_gets else (1 if puts else 0))

    ir = LoweredIR(
        system_name=system.name,
        processes=process_names,
        process_kinds=tuple(kind_code(p.kind) for p in system.processes),
        channels=channel_names,
        producers=tuple(producers),
        consumers=tuple(consumers),
        channel_latencies=tuple(channel_latencies),
        capacities=tuple(capacities),
        initial_tokens=tuple(initial_tokens),
        buffered=tuple(buffered),
        effective_capacities=tuple(effective_capacities),
        op_kinds=tuple(op_kinds),
        op_args=tuple(op_args),
        comm_indices=tuple(comm_indices),
        first_marked=tuple(first_marked),
        structural_hash=digest,
        process_index=process_index,
        channel_index=channel_index,
    )

    _memo[declared] = ir
    if len(_memo) > _MEMO_CAPACITY:
        _memo.popitem(last=False)
    return ir
