"""The lowered intermediate representation (IR) of a configured system.

A ``(SystemGraph, ChannelOrdering)`` pair fully determines the operational
semantics every analysis in this repository interprets: which process
executes which blocking ``get``/``put`` statements in which order, over
channels with which transfer latency, capacity, and pre-loaded tokens.
Before this module existed, each consumer re-derived that semantics from
the object model on its own — the simulator walked
``ordering.statements_of(...)`` with string comparisons and name-keyed
dict lookups, the TMG builder re-flattened the same chains into places,
the exhaustive verifier re-projected them once more, and the performance
cache hashed yet another ad-hoc rendering.

:class:`LoweredIR` is the single compiled artifact they now share: every
process's communication program flattened to **dense integer arrays**
(statement opcode + channel id), plus integer-indexed channel tables
(endpoints, latency, capacity, initial tokens).  It is

* **immutable** — a frozen dataclass of tuples; safe to share between the
  simulator, the TMG builder, the verifier, and any cache;
* **content-addressed** — :attr:`LoweredIR.structural_hash` is a SHA-256
  digest of a canonical (name-sorted) rendering, so two systems that
  differ only in dict-insertion order hash identically, and the hash is
  byte-stable across processes and runs;
* **latency-free** — process compute latencies are deliberately *not*
  part of the IR (channel latencies are: they are structural transfer
  costs).  The ERMES explorer re-analyzes the same structure under many
  latency selections; keeping latencies out lets one IR (and everything
  keyed on its hash) serve them all.  Consumers combine the IR with an
  effective-latency table at execution time.

Opcodes are deliberately tiny: :data:`OP_GET`, :data:`OP_COMPUTE`,
:data:`OP_PUT`.  For ``get``/``put`` the argument is the channel id; for
``compute`` it is the process id (so an op row is self-describing).

See ``docs/ARCHITECTURE.md`` for the layer diagram and the full schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.core.system import ProcessKind

#: Statement opcodes of the flattened per-process programs.
OP_GET = 0
OP_COMPUTE = 1
OP_PUT = 2

#: Human-readable mnemonic per opcode (``kind`` vocabulary shared with
#: :meth:`repro.core.system.ChannelOrdering.statements_of`).
OP_NAMES: tuple[str, str, str] = ("get", "compute", "put")

#: Process-kind codes (index into :data:`KIND_ORDER`).
KIND_WORKER = 0
KIND_SOURCE = 1
KIND_SINK = 2

KIND_ORDER: tuple[ProcessKind, ProcessKind, ProcessKind] = (
    ProcessKind.WORKER,
    ProcessKind.SOURCE,
    ProcessKind.SINK,
)

_KIND_CODE: dict[ProcessKind, int] = {kind: i for i, kind in enumerate(KIND_ORDER)}


def kind_code(kind: ProcessKind) -> int:
    """The integer code of a :class:`~repro.core.system.ProcessKind`."""
    return _KIND_CODE[kind]


@dataclass(frozen=True)
class LoweredIR:
    """One compiled ``(system, ordering)`` pair.

    All tables are parallel tuples indexed by dense integer ids:
    *process ids* (``pid``) follow the system's process declaration order
    and *channel ids* (``cid``) the channel declaration order, so a TMG
    built from the IR enumerates transitions exactly as a direct build
    from the object model does.

    Attributes:
        system_name: The source system's name (part of the hash — it
            appears in analysis error messages).
        processes: Process names by pid.
        process_kinds: Process-kind codes by pid (:data:`KIND_WORKER`,
            :data:`KIND_SOURCE`, :data:`KIND_SINK`).
        channels: Channel names by cid.
        producers: Producing pid by cid.
        consumers: Consuming pid by cid.
        channel_latencies: Minimum transfer latency by cid.
        capacities: Declared FIFO capacity by cid (0 = rendezvous).
        initial_tokens: Pre-loaded items by cid.
        buffered: By cid, whether the channel behaves as a FIFO
            (:attr:`repro.core.system.Channel.is_buffered`).
        effective_capacities: Realized FIFO depth by cid
            (:attr:`repro.core.system.Channel.effective_capacity`).
        op_kinds: Per pid, the statement opcodes of the process's cyclic
            program in execution order (gets, one compute, puts).
        op_args: Per pid, the opcode arguments — cid for
            :data:`OP_GET`/:data:`OP_PUT`, pid for :data:`OP_COMPUTE`.
        comm_indices: Per pid, the indices into ``op_kinds`` of the
            communication statements (the untimed projection the
            exhaustive verifier explores).
        first_marked: Per pid, the statement index holding the process's
            initial TMG token (the paper's marking rule: first get;
            sources, first put; degenerate processes, the compute).
        structural_hash: SHA-256 hex digest of the canonical rendering —
            the content address of this IR.
    """

    system_name: str
    processes: tuple[str, ...]
    process_kinds: tuple[int, ...]
    channels: tuple[str, ...]
    producers: tuple[int, ...]
    consumers: tuple[int, ...]
    channel_latencies: tuple[int, ...]
    capacities: tuple[int, ...]
    initial_tokens: tuple[int, ...]
    buffered: tuple[bool, ...]
    effective_capacities: tuple[int, ...]
    op_kinds: tuple[tuple[int, ...], ...]
    op_args: tuple[tuple[int, ...], ...]
    comm_indices: tuple[tuple[int, ...], ...]
    first_marked: tuple[int, ...]
    structural_hash: str
    #: Derived name → id maps (not part of the content; rebuilt on
    #: unpickle via __post_init__ if empty).
    process_index: Mapping[str, int] = field(default_factory=dict, compare=False)
    channel_index: Mapping[str, int] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.process_index:
            object.__setattr__(
                self,
                "process_index",
                {name: i for i, name in enumerate(self.processes)},
            )
        if not self.channel_index:
            object.__setattr__(
                self,
                "channel_index",
                {name: i for i, name in enumerate(self.channels)},
            )

    # ------------------------------------------------------------------
    # Id lookups
    # ------------------------------------------------------------------

    def pid(self, process: str) -> int:
        """The dense id of ``process``."""
        return self.process_index[process]

    def cid(self, channel: str) -> int:
        """The dense id of ``channel``."""
        return self.channel_index[channel]

    @property
    def n_processes(self) -> int:
        return len(self.processes)

    @property
    def n_channels(self) -> int:
        return len(self.channels)

    # ------------------------------------------------------------------
    # Program views
    # ------------------------------------------------------------------

    def statements_of(self, pid: int) -> Iterator[tuple[str, str]]:
        """The pid's program decoded to ``(kind, name)`` pairs.

        Matches :meth:`repro.core.system.ChannelOrdering.statements_of`
        item for item — the decoded view exists for reports, witnesses,
        and tests; hot paths index :attr:`op_kinds`/:attr:`op_args`
        directly.
        """
        for kind, arg in zip(self.op_kinds[pid], self.op_args[pid]):
            if kind == OP_COMPUTE:
                yield (OP_NAMES[kind], self.processes[arg])
            else:
                yield (OP_NAMES[kind], self.channels[arg])

    def program_length(self, pid: int) -> int:
        """Number of statements in the pid's cyclic program."""
        return len(self.op_kinds[pid])

    def total_statements(self) -> int:
        """Statements across every process (a size measure for budgets)."""
        return sum(len(ops) for ops in self.op_kinds)

    def __repr__(self) -> str:
        return (
            f"LoweredIR({self.system_name!r}, processes={self.n_processes}, "
            f"channels={self.n_channels}, "
            f"hash={self.structural_hash[:12]}...)"
        )
