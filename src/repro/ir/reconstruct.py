"""Rebuild a ``(SystemGraph, ChannelOrdering)`` pair from a ``LoweredIR``.

The service layer ships *pickled IRs* between processes — never live
object models (``docs/ARCHITECTURE.md``'s contract).  A worker that
receives an IR still needs object-model values to drive the public entry
points (``Simulator``, ``preflight``, the performance engine), so this
module inverts lowering:

* :func:`system_from_ir` rebuilds a :class:`~repro.core.system.SystemGraph`
  whose processes and channels appear in **pid/cid order** — the IR's
  dense ids follow declaration order, so replaying them as declarations
  reproduces an equivalent topology;
* :func:`ordering_from_ir` rebuilds the :class:`ChannelOrdering` by
  decoding each pid's opcode program back to its get/put sequences.

The IR is latency-*free* for processes (by design — one IR serves every
latency selection), so ``system_from_ir`` takes the effective latency
table separately and defaults every process to latency 1 when none is
given.

The round-trip invariant — pinned by ``tests/ir/test_reconstruct.py``
over the seed designs and random systems — is::

    lower(system_from_ir(ir, lats), ordering_from_ir(ir)).structural_hash
        == ir.structural_hash

i.e. reconstruction loses nothing the hash covers, which is exactly what
makes a pickled IR a complete work description for a remote worker.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.system import Channel, ChannelOrdering, Process, SystemGraph
from repro.ir.program import KIND_ORDER, OP_GET, OP_PUT, LoweredIR

__all__ = ["ordering_from_ir", "system_from_ir"]


def system_from_ir(
    ir: LoweredIR,
    process_latencies: Mapping[str, int] | None = None,
) -> SystemGraph:
    """A ``SystemGraph`` equivalent to the one ``ir`` was lowered from.

    Processes are declared in pid order and channels in cid order, so
    the rebuilt graph's declaration order matches the original's — the
    property the dense ids encode.  ``process_latencies`` supplies the
    non-structural compute latencies (missing processes default to 1,
    the :class:`~repro.core.system.Process` default).
    """
    latencies = dict(process_latencies or {})
    system = SystemGraph(ir.system_name)
    for pid, name in enumerate(ir.processes):
        system.add_process(
            Process(
                name=name,
                latency=latencies.get(name, 1),
                kind=KIND_ORDER[ir.process_kinds[pid]],
            )
        )
    for cid, name in enumerate(ir.channels):
        system.add_channel(
            Channel(
                name=name,
                producer=ir.processes[ir.producers[cid]],
                consumer=ir.processes[ir.consumers[cid]],
                latency=ir.channel_latencies[cid],
                capacity=ir.capacities[cid],
                initial_tokens=ir.initial_tokens[cid],
            )
        )
    return system


def ordering_from_ir(ir: LoweredIR) -> ChannelOrdering:
    """The ``ChannelOrdering`` encoded in ``ir``'s opcode programs.

    Each pid's program is ``gets…, compute, puts…`` in execution order;
    decoding the ``OP_GET``/``OP_PUT`` arguments back to channel names
    recovers exactly the per-process sequences the pair was lowered
    with.
    """
    gets: dict[str, tuple[str, ...]] = {}
    puts: dict[str, tuple[str, ...]] = {}
    for pid, name in enumerate(ir.processes):
        gets[name] = tuple(
            ir.channels[arg]
            for kind, arg in zip(ir.op_kinds[pid], ir.op_args[pid])
            if kind == OP_GET
        )
        puts[name] = tuple(
            ir.channels[arg]
            for kind, arg in zip(ir.op_kinds[pid], ir.op_args[pid])
            if kind == OP_PUT
        )
    return ChannelOrdering(gets=gets, puts=puts)
