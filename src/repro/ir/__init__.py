"""``repro.ir`` — the lowered core IR shared by sim, TMG, verify, and lint.

Compile a ``(SystemGraph, ChannelOrdering)`` pair once with
:func:`lower`; every downstream analysis executes or translates the
resulting :class:`LoweredIR` instead of re-interpreting the object model.
Depends only on ``repro.core`` and ``repro.errors`` — everything else in
the stack sits above this package (see ``docs/ARCHITECTURE.md``).
"""

from repro.ir.lowering import (
    clear_lowering_cache,
    lower,
    lowering_cache_info,
    structural_hash_of,
)
from repro.ir.program import (
    KIND_ORDER,
    KIND_SINK,
    KIND_SOURCE,
    KIND_WORKER,
    OP_COMPUTE,
    OP_GET,
    OP_NAMES,
    OP_PUT,
    LoweredIR,
    kind_code,
)
from repro.ir.reconstruct import ordering_from_ir, system_from_ir

__all__ = [
    "KIND_ORDER",
    "KIND_SINK",
    "KIND_SOURCE",
    "KIND_WORKER",
    "OP_COMPUTE",
    "OP_GET",
    "OP_NAMES",
    "OP_PUT",
    "LoweredIR",
    "clear_lowering_cache",
    "kind_code",
    "lower",
    "lowering_cache_info",
    "ordering_from_ir",
    "structural_hash_of",
    "system_from_ir",
]
