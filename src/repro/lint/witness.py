"""Explaining a deadlock witness in design vocabulary.

:func:`repro.model.performance.deadlock_cycle` returns the circular wait
as a cycle of TMG *transition* names mapped back to system elements —
channel names and process (computation) names.  Each edge of that cycle
is a token-free place, and every such place belongs to exactly one
process's serial statement chain: the edge ``u -> v`` means some process
refuses to serve ``v`` before it has served ``u``.  These helpers recover
that statement — which get or put, at which position of which process's
chain — so a designer can see exactly which specification lines to swap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.system import ChannelOrdering, SystemGraph


@dataclass(frozen=True)
class BlockedStatement:
    """One hop of a circular wait: a statement that refuses to run first.

    ``process`` insists on completing ``waits_for`` (a channel name, or
    ``None`` for its computation phase) before serving ``channel`` (again
    ``None`` when the blocked statement is the computation).  ``index`` is
    the 1-based position of the blocked statement in the process's serial
    chain of length ``total``; ``position``/``count`` rank it among the
    process's gets or puts alone.
    """

    process: str
    kind: str  # "get" | "put" | "compute"
    channel: str | None
    index: int
    total: int
    position: int
    count: int
    waits_for: str | None  # channel completing before this statement

    def _statement(self) -> str:
        if self.kind == "compute":
            return f"{self.process} computes"
        return (
            f"{self.process} {self.kind}s {self.channel!r} "
            f"({self.kind} {self.position}/{self.count})"
        )

    def format(self) -> str:
        after = (
            f"serving {self.waits_for!r}"
            if self.waits_for is not None
            else "computing"
        )
        return (
            f"{self._statement()} only after {after} "
            f"[statement {self.index}/{self.total}]"
        )


def witness_statements(
    system: SystemGraph,
    ordering: ChannelOrdering,
    cycle: Sequence[str],
) -> list[BlockedStatement]:
    """Decode every edge of ``cycle`` into the statement that blocks.

    For each consecutive pair ``(u, v)`` of the cycle, finds the process
    whose statement chain serves ``v`` directly after ``u`` (chains are
    cyclic: the first statement follows the last).  Edges that no chain
    explains (possible only for hand-made cycles) are skipped.
    """
    # Pre-compute each process's cyclic chain as stripped element names:
    # get/put statements map to their channel, compute to the process.
    chains: dict[str, tuple[tuple[str, str], ...]] = {
        p.name: ordering.statements_of(p.name) for p in system.processes
    }
    statements: list[BlockedStatement] = []
    n = len(cycle)
    for i in range(n):
        u, v = cycle[i], cycle[(i + 1) % n]
        hop = _explain_edge(system, ordering, chains, u, v)
        if hop is not None:
            statements.append(hop)
    return statements


def _explain_edge(
    system: SystemGraph,
    ordering: ChannelOrdering,
    chains: dict[str, tuple[tuple[str, str], ...]],
    u: str,
    v: str,
) -> BlockedStatement | None:
    """The statement behind the token-free place ``u -> v``, if any."""
    candidates: list[str]
    if system.has_process(u):
        candidates = [u]
    elif system.has_process(v):
        candidates = [v]
    else:
        # channel -> channel: the owning process touches both endpoints.
        u_ends = {system.channel(u).producer, system.channel(u).consumer}
        v_ends = {system.channel(v).producer, system.channel(v).consumer}
        candidates = sorted(u_ends & v_ends)
    for process in candidates:
        chain = chains.get(process)
        if not chain:
            continue
        elements = [
            process if kind == "compute" else target for kind, target in chain
        ]
        length = len(chain)
        for j in range(length):
            if elements[j] == v and elements[(j - 1) % length] == u:
                kind, target = chain[j]
                gets = ordering.gets_of(process)
                puts = ordering.puts_of(process)
                if kind == "get":
                    position, count = gets.index(target) + 1, len(gets)
                elif kind == "put":
                    position, count = puts.index(target) + 1, len(puts)
                else:
                    position, count = 1, 1
                return BlockedStatement(
                    process=process,
                    kind=kind,
                    channel=None if kind == "compute" else target,
                    index=j + 1,
                    total=length,
                    position=position,
                    count=count,
                    waits_for=None if u == process else u,
                )
    return None


def format_witness(
    system: SystemGraph,
    ordering: ChannelOrdering,
    cycle: Sequence[str],
) -> str:
    """The circular wait as one arrow-joined line of blocked statements.

    Example (the paper's Section 2 deadlock)::

        P2 puts 'f' (put 3/3) only after serving 'd' [statement 7/7] ->
        P5 computes only after serving 'f' [statement 2/3] -> ...

    Falls back to the raw name cycle when no edge maps to a statement.
    """
    statements = witness_statements(system, ordering, cycle)
    if not statements:
        return " -> ".join(cycle)
    return " -> ".join(s.format() for s in statements)
