"""``repro.lint`` — static design analysis over system specifications.

The linter checks a :class:`~repro.core.system.SystemGraph` + ordering
(+ optional HLS implementation library) *before* any simulation or DSE
runs and reports **all** findings as structured
:class:`~repro.diagnostics.Diagnostic` values: stable ``ERMxxx`` rule
codes, severities, design-element locations, messages in design
vocabulary, and machine-applicable fix-its.  See ``docs/LINT_RULES.md``
for the rule catalog.

Typical use::

    from repro.lint import lint_system

    result = lint_system(system, ordering, library=library)
    for diagnostic in result.diagnostics:
        print(diagnostic.format())
    if result.has_at_least(Severity.ERROR):
        ...

The CLI front end is ``ermes lint`` (text, JSON, or SARIF 2.1.0 output;
``--fix`` applies the safe reorderings).  :func:`preflight` is the cheap
error-only subset the explorer and the simulator run before starting.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.core.system import ChannelOrdering, SystemGraph
from repro.diagnostics import (
    Diagnostic,
    LintError,
    OrderingFix,
    Severity,
    sorted_diagnostics,
)
from repro.lint.context import LintContext
from repro.lint.fixes import FixOutcome, apply_fixes, fix_result
from repro.lint.registry import (
    Rule,
    RuleRegistry,
    category,
    default_registry,
)
from repro.lint.render import render_json, render_sarif, render_text, sarif_dict
from repro.lint.witness import (
    BlockedStatement,
    format_witness,
    witness_statements,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hls.pareto import ImplementationLibrary
    from repro.perf.engine import PerformanceEngine

#: Rules cheap enough (structural; no TMG build, no analysis) to run
#: before every exploration or simulation.
PREFLIGHT_RULES = ("ERM1", "ERM302")


@dataclass(frozen=True)
class LintResult:
    """All findings of one lint run, most severe first."""

    subject: str
    diagnostics: tuple[Diagnostic, ...]
    system: SystemGraph | None = None
    ordering: ChannelOrdering | None = None

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def counts(self) -> dict[Severity, int]:
        counts = {s: 0 for s in Severity}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity] += 1
        return counts

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.at(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.at(Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self.at(Severity.INFO)

    @property
    def fixable(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.fixable)

    def at(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity is severity
        )

    def has_at_least(self, severity: Severity) -> bool:
        return any(d.severity >= severity for d in self.diagnostics)

    def codes(self) -> tuple[str, ...]:
        """The distinct rule codes that fired, sorted."""
        return tuple(sorted({d.rule for d in self.diagnostics}))


def lint_system(
    system: SystemGraph,
    ordering: ChannelOrdering | None = None,
    library: "ImplementationLibrary | None" = None,
    *,
    registry: RuleRegistry | None = None,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    perf_engine: "PerformanceEngine | None" = None,
) -> LintResult:
    """Run the rule catalog over one design and collect every finding.

    Args:
        system: The topology under analysis.
        ordering: Statement orders; defaults to declaration order.
        library: Optional HLS implementation library (enables ``ERM303``).
        registry: Rule catalog; defaults to the built-in one.
        select/ignore: Rule codes or prefixes (``"ERM3"``) to run/skip;
            ``ignore`` wins.  Unknown selectors raise.
        perf_engine: Performance engine serving the ``ERM301`` analyses;
            pass the engine your explorer uses to share its cache.

    Returns:
        A :class:`LintResult` with findings sorted most severe first.
    """
    registry = registry or default_registry()
    context = LintContext(
        system, ordering, library=library, perf_engine=perf_engine
    )
    findings: list[Diagnostic] = []
    for rule in registry.selected(select, ignore):
        findings.extend(rule.run(context))
    return LintResult(
        subject=system.name,
        diagnostics=sorted_diagnostics(findings),
        system=system,
        ordering=context.ordering,
    )


#: Successful default-registry pre-flights, keyed by the IR structural
#: hash.  Success-only by design: a failing specification must re-report
#: its diagnostics every time (and failures are rare and already cheap).
_PREFLIGHT_MEMO_CAPACITY = 512
_preflight_passed: OrderedDict[str, None] = OrderedDict()


def clear_preflight_cache() -> None:
    """Drop the memoized pre-flight successes (test isolation hook)."""
    _preflight_passed.clear()


def preflight(
    system: SystemGraph,
    ordering: ChannelOrdering | None = None,
    *,
    registry: RuleRegistry | None = None,
) -> None:
    """Cheap pre-flight check: raise on structural error diagnostics.

    Runs the structural rules (``ERM1xx``, including the ordering ↔
    topology rule) plus the every-ordering-deadlocks rule (``ERM302``) —
    all linear-time, no TMG build — and raises a
    :class:`~repro.diagnostics.LintError` carrying the coded diagnostics
    when any error-severity finding exists.  The explorer, the simulator,
    and target sweeps call this so a broken specification fails with rule
    codes instead of an ad-hoc exception deep in an analysis.

    Successful default-registry runs are memoized on the IR structural
    hash (:func:`repro.ir.structural_hash_of`): every quantity the
    pre-flight rules read — process kinds, the channel tables including
    ``initial_tokens``, and the per-process get/put orders — is part of
    that hash, so a repeated pre-flight of an already-passed design (the
    explorer re-checks on every ``run``, sweeps once per target) is one
    hash and one set lookup.  Orderings that name processes the system
    does not have are never memoized (the hash renders only declared
    processes, so such entries would alias), and neither are runs with a
    custom ``registry``.
    """
    from repro.ir import structural_hash_of

    checked = ordering or ChannelOrdering.declaration_order(system)
    known = set(system.process_names)
    memoable = registry is None and (
        set(checked.gets) | set(checked.puts) <= known
    )
    key = ""
    if memoable:
        key = structural_hash_of(system, checked)
        if key in _preflight_passed:
            _preflight_passed.move_to_end(key)
            return
    result = lint_system(
        system, checked, registry=registry, select=list(PREFLIGHT_RULES)
    )
    errors = result.errors
    if errors:
        raise LintError(errors)
    if memoable:
        _preflight_passed[key] = None
        if len(_preflight_passed) > _PREFLIGHT_MEMO_CAPACITY:
            _preflight_passed.popitem(last=False)


__all__ = [
    "BlockedStatement",
    "Diagnostic",
    "FixOutcome",
    "LintContext",
    "LintError",
    "LintResult",
    "OrderingFix",
    "PREFLIGHT_RULES",
    "Rule",
    "RuleRegistry",
    "Severity",
    "apply_fixes",
    "category",
    "clear_preflight_cache",
    "default_registry",
    "fix_result",
    "format_witness",
    "lint_system",
    "preflight",
    "render_json",
    "render_sarif",
    "render_text",
    "sarif_dict",
    "witness_statements",
]
