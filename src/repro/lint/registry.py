"""The rule engine: rule descriptors, registration, and selection.

Each lint rule is a small function ``(LintContext) -> Iterable[Diagnostic]``
registered under a stable code (``ERM101``, ``ERM201``, ...).  The
:class:`RuleRegistry` holds the catalog, supports ``--select``/``--ignore``
filtering by exact code or prefix (``ERM3`` selects every performance
rule), and is what the renderers consult for SARIF rule metadata.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.diagnostics import Diagnostic, Severity
from repro.errors import ValidationError
from repro.lint.context import LintContext

RuleCheck = Callable[[LintContext], Iterable[Diagnostic]]

_CODE_RE = re.compile(r"^ERM\d{3}$")


@dataclass(frozen=True)
class Rule:
    """One entry of the rule catalog.

    Attributes:
        code: Stable identifier (``ERM`` + three digits; the hundreds digit
            is the category: 1 structural, 2 deadlock, 3 performance,
            4 hygiene, 5 verification, 6 dataflow, 7 symmetry).
        name: Short kebab-case name (used as the SARIF rule name).
        severity: Default severity of the findings this rule emits.
        summary: One-line description for catalogs and SARIF metadata.
        check: The rule body.
    """

    code: str
    name: str
    severity: Severity
    summary: str
    check: RuleCheck

    def __post_init__(self) -> None:
        if not _CODE_RE.match(self.code):
            raise ValidationError(
                f"rule code {self.code!r} must match ERM<3 digits>"
            )

    def run(self, context: LintContext) -> list[Diagnostic]:
        """Execute the rule, asserting it only emits its own code."""
        findings = list(self.check(context))
        for finding in findings:
            if finding.rule != self.code:
                raise ValidationError(
                    f"rule {self.code} emitted a diagnostic labelled "
                    f"{finding.rule!r}"
                )
        return findings


class RuleRegistry:
    """An ordered catalog of lint rules, filterable by code or prefix."""

    def __init__(self, rules: Iterable[Rule] = ()):
        self._rules: dict[str, Rule] = {}
        for rule in rules:
            self.add(rule)

    def add(self, rule: Rule) -> Rule:
        if rule.code in self._rules:
            raise ValidationError(f"duplicate lint rule {rule.code!r}")
        self._rules[rule.code] = rule
        return rule

    def register(
        self, code: str, name: str, severity: Severity, summary: str
    ) -> Callable[[RuleCheck], RuleCheck]:
        """Decorator form of :meth:`add` for rule modules."""

        def decorate(check: RuleCheck) -> RuleCheck:
            self.add(
                Rule(
                    code=code,
                    name=name,
                    severity=severity,
                    summary=summary,
                    check=check,
                )
            )
            return check

        return decorate

    # ------------------------------------------------------------------

    def rules(self) -> tuple[Rule, ...]:
        """All rules in code order."""
        return tuple(self._rules[code] for code in sorted(self._rules))

    def rule(self, code: str) -> Rule:
        try:
            return self._rules[code]
        except KeyError:
            raise ValidationError(f"unknown lint rule {code!r}") from None

    def codes(self) -> tuple[str, ...]:
        return tuple(sorted(self._rules))

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules())

    def __contains__(self, code: str) -> bool:
        return code in self._rules

    # ------------------------------------------------------------------

    def selected(
        self,
        select: Sequence[str] | None = None,
        ignore: Sequence[str] | None = None,
    ) -> tuple[Rule, ...]:
        """The rules surviving ``--select``/``--ignore`` filtering.

        Each entry of either list is an exact code (``ERM301``) or a
        prefix (``ERM3``, ``ERM``).  ``select=None`` means everything;
        ``ignore`` always wins over ``select``.  Unknown entries raise,
        so a typo in a CI invocation fails loudly instead of silently
        linting nothing.
        """
        for pattern in list(select or ()) + list(ignore or ()):
            if not any(code.startswith(pattern) for code in self._rules):
                raise ValidationError(
                    f"rule selector {pattern!r} matches no registered rule "
                    f"(known: {', '.join(self.codes())})"
                )

        def matches(code: str, patterns: Sequence[str]) -> bool:
            return any(code.startswith(p) for p in patterns)

        chosen = []
        for rule in self.rules():
            if select is not None and not matches(rule.code, select):
                continue
            if ignore and matches(rule.code, ignore):
                continue
            chosen.append(rule)
        return tuple(chosen)


#: Registry used by :func:`repro.lint.lint_system` unless one is passed in.
_default: RuleRegistry | None = None


def default_registry() -> RuleRegistry:
    """The process-wide registry with the full built-in catalog loaded."""
    global _default
    if _default is None:
        registry = RuleRegistry()
        from repro.lint.rules import register_builtin_rules

        register_builtin_rules(registry)
        _default = registry
    return _default


def category(code: str) -> str:
    """Human name of a rule code's category (its hundreds digit)."""
    return {
        "1": "structural",
        "2": "deadlock",
        "3": "performance",
        "4": "hygiene",
        "5": "verification",
        "6": "dataflow",
        "7": "symmetry",
    }.get(code[3:4], "other")
