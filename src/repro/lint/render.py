"""Rendering lint results: human text, machine JSON, and SARIF 2.1.0.

The SARIF document follows the OASIS 2.1.0 schema shape: one run, tool
metadata with the full rule catalog (so viewers can show rule help for
codes with zero findings too), and one result per diagnostic with the
design elements as SARIF *logical locations* (a specification has no
files or line numbers; processes and channels are the addressable
units).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.diagnostics import Severity
from repro.lint.registry import RuleRegistry, category, default_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint import LintResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Severity -> SARIF result level.
_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def render_text(result: "LintResult", verbose: bool = False) -> str:
    """One line per finding plus a summary tail, ruff/clang-tidy style."""
    lines = [d.format() for d in result.diagnostics]
    counts = result.counts()
    summary = ", ".join(
        f"{counts[s]} {s.value}{'s' if counts[s] != 1 else ''}"
        for s in (Severity.ERROR, Severity.WARNING, Severity.INFO)
        if counts[s]
    )
    fixable = sum(1 for d in result.diagnostics if d.fixable)
    if not lines:
        return f"{result.subject}: clean (no findings)\n"
    tail = f"{result.subject}: {summary}"
    if fixable:
        tail += f" ({fixable} fixable with --fix)"
    if verbose:
        for diagnostic in result.diagnostics:
            if diagnostic.fix is not None:
                lines.append(f"  fix[{diagnostic.rule}]: "
                             f"{diagnostic.fix.description}")
    return "\n".join(lines + [tail]) + "\n"


def render_json(result: "LintResult") -> str:
    """A stable JSON document for toolchains that post-process findings."""
    counts = result.counts()
    payload: dict[str, Any] = {
        "subject": result.subject,
        "summary": {
            "errors": counts[Severity.ERROR],
            "warnings": counts[Severity.WARNING],
            "infos": counts[Severity.INFO],
            "fixable": sum(1 for d in result.diagnostics if d.fixable),
        },
        "diagnostics": [
            {
                "rule": d.rule,
                "severity": d.severity.value,
                "message": d.message,
                "location": list(d.location),
                "fixable": d.fixable,
                **(
                    {"fix": {
                        "description": d.fix.description,
                        "gets": {k: list(v) for k, v in d.fix.gets.items()},
                        "puts": {k: list(v) for k, v in d.fix.puts.items()},
                    }}
                    if d.fix is not None
                    else {}
                ),
            }
            for d in result.diagnostics
        ],
    }
    return json.dumps(payload, indent=2) + "\n"


def sarif_dict(
    result: "LintResult", registry: RuleRegistry | None = None
) -> dict[str, Any]:
    """The SARIF 2.1.0 log of a lint result, as a plain dictionary."""
    from repro import __version__

    registry = registry or default_registry()
    rules = registry.rules()
    rule_index = {rule.code: i for i, rule in enumerate(rules)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "ermes-lint",
                        "version": __version__,
                        "informationUri": (
                            "https://github.com/ermes-repro/repro"
                        ),
                        "rules": [
                            {
                                "id": rule.code,
                                "name": rule.name,
                                "shortDescription": {"text": rule.summary},
                                "defaultConfiguration": {
                                    "level": _SARIF_LEVEL[rule.severity],
                                },
                                "properties": {
                                    "category": category(rule.code),
                                },
                            }
                            for rule in rules
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": d.rule,
                        **(
                            {"ruleIndex": rule_index[d.rule]}
                            if d.rule in rule_index
                            else {}
                        ),
                        "level": _SARIF_LEVEL[d.severity],
                        "message": {"text": d.message},
                        "locations": [
                            {
                                "logicalLocations": [
                                    {
                                        "name": element,
                                        "fullyQualifiedName": (
                                            f"{result.subject}::{element}"
                                        ),
                                        "kind": (
                                            "process"
                                            if result.system is not None
                                            and result.system.has_process(
                                                element
                                            )
                                            else "channel"
                                        ),
                                    }
                                    for element in d.location
                                ]
                            }
                        ] if d.location else [],
                        "properties": {"fixable": d.fixable},
                    }
                    for d in result.diagnostics
                ],
            }
        ],
    }


def render_sarif(
    result: "LintResult", registry: RuleRegistry | None = None
) -> str:
    """:func:`sarif_dict` serialized with a trailing newline."""
    return json.dumps(sarif_dict(result, registry), indent=2) + "\n"
