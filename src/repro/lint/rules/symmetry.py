"""ERM7xx — structural symmetry findings.

The compositional flow replicates accelerator stages behind identical
latency-insensitive interfaces, so real designs carry large automorphism
groups.  These rules spend the canonical labeling of :mod:`repro.sym`:

* ``ERM701`` reports each replicated process family (a strict-symmetry
  orbit of two or more interchangeable processes) with its orbit size —
  a map of where quotient verification and orbit-deduplicated DSE will
  pay off;
* ``ERM702`` flags a statement ordering that is a non-canonical member
  of a family of symmetry-equivalent orderings: some automorphism of
  the topology (one that also preserves per-process latencies) carries
  it onto a lexicographically smaller ordering with bit-identical cycle
  time and deadlock behavior.  The fix-it rewrites the ordering to that
  canonical representative, so symmetric design variants converge on
  one spelling and share every downstream cache entry;
* ``ERM703`` flags an asymmetric channel attribute inside an otherwise
  replicated family: channels that pure endpoint topology makes
  interchangeable but whose declared capacity, initial tokens, or
  latency differ — usually a copy-paste slip when one lane of a
  replicated fabric was edited.

ERM701 runs at every scale (the labeling budget is adaptive); the
relaxed-policy rules enumerate group elements, so they gate on
:func:`~repro.verify.checker.is_small_system` like the ERM5xx rules and
stay silent — never guess — when the group is too large to enumerate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.diagnostics import Diagnostic, OrderingFix, Severity
from repro.lint.context import LintContext
from repro.lint.registry import RuleRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir import LoweredIR
    from repro.sym import PairPerm

#: Largest automorphism group ERM702/ERM703 will enumerate.  Beyond this
#: the rules stay silent rather than sample (no silent *partial* answers:
#: a capped enumeration could miss the canonical representative and
#: report a non-minimal "fix").
CLOSURE_LIMIT = 512


def _ordering_table(
    ir: "LoweredIR", context: LintContext
) -> tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]:
    """The current ordering as per-process channel-index sequences.

    Index space makes images under a :class:`PairPerm` a pure table
    lookup; the tuple-of-tuples shape compares lexicographically.
    """
    gets = []
    puts = []
    for name in ir.processes:
        gets.append(tuple(ir.cid(c) for c in context.ordering.gets[name]))
        puts.append(tuple(ir.cid(c) for c in context.ordering.puts[name]))
    return tuple(zip(gets, puts))


def _transport(
    table: tuple[tuple[tuple[int, ...], tuple[int, ...]], ...],
    element: "PairPerm",
) -> tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]:
    """The ordering carried along an automorphism.

    Process ``p``'s statement sequence moves to process ``gp[p]`` with
    every channel renamed through ``gc`` — the transported ordering of
    the *same* system, with an isomorphic (hence performance- and
    deadlock-identical) timed marked graph.
    """
    gp, gc = element
    moved: list[tuple[tuple[int, ...], tuple[int, ...]]] = [
        ((), ())
    ] * len(table)
    for p, (gets, puts) in enumerate(table):
        moved[gp[p]] = (
            tuple(gc[c] for c in gets),
            tuple(gc[c] for c in puts),
        )
    return tuple(moved)


def register_symmetry(registry: RuleRegistry) -> None:
    """Register ERM701–ERM703 on ``registry``."""

    @registry.register(
        "ERM701",
        "replicated-stage-family",
        Severity.INFO,
        "Processes interchangeable under a verified automorphism of the "
        "lowered program form a replicated family; symmetry-aware "
        "verification and exploration collapse each family to one "
        "representative.",
    )
    def _erm701(context: LintContext) -> Iterable[Diagnostic]:
        declared = context.declared_families()
        if declared:
            # Fast path: the construction layer declared its replication
            # and the claims verified against the lowered program — report
            # the declared families directly, no canonical-labeling search.
            for verified in declared:
                qualifier = (
                    "verified automorphisms of the lowered program"
                    if verified.exact
                    else "verified up to statement reordering — a shared "
                    "endpoint serializes the lanes"
                )
                for orbit_names in verified.family.process_orbits:
                    if len(set(orbit_names)) < 2:
                        continue
                    members = tuple(sorted(orbit_names))
                    yield Diagnostic(
                        rule="ERM701",
                        severity=Severity.INFO,
                        message=(
                            f"processes {', '.join(repr(m) for m in members)} "
                            f"form a replicated family of {len(members)} "
                            "interchangeable stages, declared by the "
                            f"composition layer as {verified.family.name!r} "
                            f"({verified.family.kind}; {qualifier}); "
                            "quotient verification and orbit-deduped "
                            "exploration treat them as one."
                        ),
                        location=members,
                    )
            return
        analysis = context.symmetry()
        if analysis is None or analysis.trivial or not analysis.complete:
            return
        ir = context.ir()
        assert ir is not None  # symmetry() implies ir()
        for orbit in analysis.replicated_process_orbits:
            members = tuple(sorted(ir.processes[pid] for pid in orbit))
            yield Diagnostic(
                rule="ERM701",
                severity=Severity.INFO,
                message=(
                    f"processes {', '.join(repr(m) for m in members)} form "
                    f"a replicated family of {len(members)} interchangeable "
                    "stages (verified automorphisms of the lowered "
                    "program); quotient verification and orbit-deduped "
                    "exploration treat them as one."
                ),
                location=members,
            )

    @registry.register(
        "ERM702",
        "symmetric-ordering-redundancy",
        Severity.INFO,
        "The statement ordering is a non-canonical member of a family of "
        "symmetry-equivalent orderings with identical cycle time and "
        "deadlock behavior; rewriting it to the canonical representative "
        "lets equivalent variants share every cached analysis.",
    )
    def _erm702(context: LintContext) -> Iterable[Diagnostic]:
        from repro.sym import closure

        analysis = context.symmetry_order_relaxed()
        if analysis is None or analysis.trivial or not analysis.complete:
            return
        ir = context.ir()
        assert ir is not None  # symmetry_order_relaxed() implies ir()
        elements = closure(
            analysis.generators,
            ir.n_processes,
            ir.n_channels,
            limit=CLOSURE_LIMIT,
        )
        if elements is None:
            return  # group too large to enumerate: stay silent
        system = context.system
        latency = [
            system.process(name).latency for name in ir.processes
        ]
        table = _ordering_table(ir, context)
        best = table
        best_element: "PairPerm | None" = None
        for element in elements:
            gp = element[0]
            if any(latency[p] != latency[gp[p]] for p in range(len(gp))):
                continue  # transport would change a stage's latency
            image = _transport(table, element)
            if image < best:
                best = image
                best_element = element
        if best_element is None:
            return  # already the canonical representative
        orbit_count = sum(
            1
            for element in elements
            if not any(
                latency[p] != latency[element[0][p]]
                for p in range(len(element[0]))
            )
        )
        fix_gets: dict[str, tuple[str, ...]] = {}
        fix_puts: dict[str, tuple[str, ...]] = {}
        for p, (gets, puts) in enumerate(best):
            name = ir.processes[p]
            new_gets = tuple(ir.channels[c] for c in gets)
            new_puts = tuple(ir.channels[c] for c in puts)
            if new_gets != context.ordering.gets[name]:
                fix_gets[name] = new_gets
            if new_puts != context.ordering.puts[name]:
                fix_puts[name] = new_puts
        touched = tuple(sorted(set(fix_gets) | set(fix_puts)))
        yield Diagnostic(
            rule="ERM702",
            severity=Severity.INFO,
            message=(
                "this statement ordering is one of a family of up to "
                f"{orbit_count} symmetry-equivalent orderings (identical "
                "cycle time and deadlock behavior) and is not the "
                "canonical representative; reordering "
                f"{', '.join(repr(t) for t in touched)} makes equivalent "
                "variants share one cache identity."
            ),
            location=touched,
            fix=OrderingFix(
                description=(
                    "rewrite to the lexicographically minimal "
                    "symmetry-equivalent ordering"
                ),
                gets=fix_gets,
                puts=fix_puts,
            ),
        )

    @registry.register(
        "ERM703",
        "asymmetric-capacity-in-symmetric-family",
        Severity.WARNING,
        "Channels that pure endpoint topology makes interchangeable "
        "disagree on capacity, initial tokens, or latency — usually one "
        "lane of a replicated fabric was edited while its siblings were "
        "not.",
    )
    def _erm703(context: LintContext) -> Iterable[Diagnostic]:
        analysis = context.symmetry_topology_relaxed()
        if analysis is None or not analysis.complete:
            return
        ir = context.ir()
        assert ir is not None
        for orbit in analysis.replicated_channel_orbits:
            groups: dict[tuple[int, int, int], list[str]] = {}
            for c in orbit:
                name = ir.channels[c]
                attrs = (
                    ir.capacities[c],
                    ir.initial_tokens[c],
                    ir.channel_latencies[c],
                )
                groups.setdefault(attrs, []).append(name)
            if len(groups) < 2:
                continue
            # The family's dominant attribute tuple is the majority; the
            # minority members are the likely copy-paste slips.
            ranked = sorted(
                groups.items(), key=lambda kv: (-len(kv[1]), kv[0])
            )
            majority_attrs, majority = ranked[0]
            outliers = tuple(
                sorted(
                    name
                    for attrs, names in ranked[1:]
                    for name in names
                )
            )
            yield Diagnostic(
                rule="ERM703",
                severity=Severity.WARNING,
                message=(
                    f"channel{'s' if len(outliers) > 1 else ''} "
                    f"{', '.join(repr(o) for o in outliers)} "
                    f"{'are' if len(outliers) > 1 else 'is'} "
                    "topologically interchangeable with "
                    f"{', '.join(repr(m) for m in sorted(majority))} "
                    "(capacity/initial_tokens/latency "
                    f"{majority_attrs}) but declare different channel "
                    "attributes; if the asymmetry is unintentional, one "
                    "lane of the replicated family has drifted."
                ),
                location=outliers + tuple(sorted(majority)),
            )
