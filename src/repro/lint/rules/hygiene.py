"""ERM4xx — hygiene infos.

Nothing here is wrong, exactly; each finding flags a specification smell
worth a second look before trusting analysis numbers.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.system import Process
from repro.diagnostics import Diagnostic, Severity
from repro.lint.context import LintContext
from repro.lint.registry import RuleRegistry

#: The dataclass default of :class:`~repro.core.system.Process.latency`.
DEFAULT_LATENCY = Process.__dataclass_fields__["latency"].default


def register_hygiene(registry: RuleRegistry) -> None:
    """Register ERM401–ERM402 on ``registry``."""

    @registry.register(
        "ERM401",
        "default-latency-process",
        Severity.INFO,
        "A worker process still carries the default latency; its cycle-time "
        "contribution has not been characterized through HLS.",
    )
    def _erm401(context: LintContext) -> Iterable[Diagnostic]:
        for process in context.system.workers():
            if process.latency == DEFAULT_LATENCY:
                yield Diagnostic(
                    rule="ERM401",
                    severity=Severity.INFO,
                    message=(
                        f"worker {process.name!r} uses the default latency "
                        f"{DEFAULT_LATENCY}; set the latency measured by HLS "
                        "(or attach an implementation library) before "
                        "trusting the analysis"
                    ),
                    location=(process.name,),
                )

    @registry.register(
        "ERM402",
        "channel-not-in-ordering",
        Severity.INFO,
        "A declared channel appears in no get or put sequence of the "
        "supplied ordering; it would never transfer data.",
    )
    def _erm402(context: LintContext) -> Iterable[Diagnostic]:
        referenced: set[str] = set()
        for sequence in context.ordering.gets.values():
            referenced.update(sequence)
        for sequence in context.ordering.puts.values():
            referenced.update(sequence)
        for channel in context.system.channels:
            if channel.name not in referenced:
                yield Diagnostic(
                    rule="ERM402",
                    severity=Severity.INFO,
                    message=(
                        f"channel {channel.name!r} "
                        f"({channel.producer} -> {channel.consumer}) is "
                        "referenced by no get or put statement of the "
                        "supplied ordering"
                    ),
                    location=(channel.name,),
                )
