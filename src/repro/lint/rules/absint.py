"""ERM6xx — abstract-interpretation dataflow facts.

These rules surface what the fixpoint engine of :mod:`repro.absint`
proves without any state-space search: sound per-channel occupancy
bounds, statically-dead structure, and certificate-backed
deadlock-freedom.

* ``ERM601`` flags a buffered channel whose proved maximum occupancy is
  below its declared capacity — the FIFO is over-provisioned and the
  excess depth is silicon the design can never use;
* ``ERM602`` flags channels on which no interleaving ever completes a
  transfer (the deadlock's blast radius, structurally);
* ``ERM603`` flags individual statements no interleaving ever executes;
* ``ERM604`` reports a validated deadlock-freedom certificate when it is
  the *only* conclusive verdict available — i.e. when the exhaustive
  checker skipped the system (above
  :data:`~repro.verify.checker.SMALL_SYSTEM_LIMIT`) or exhausted its
  lint-scale budget.  On small systems the exhaustive verdict already
  settles the question and the rule stays silent.

Soundness keeps the first three honest: the abstract state
over-approximates every reachable concrete state, so "dead" and
"unreachable" findings can never be false positives (an action the
abstraction never enables is never enabled concretely), and an ERM601
bound is a guarantee, not a heuristic.
"""

from __future__ import annotations

from typing import Iterable

from repro.diagnostics import Diagnostic, Severity
from repro.lint.context import LintContext
from repro.lint.registry import RuleRegistry


def register_absint(registry: RuleRegistry) -> None:
    """Register ERM601–ERM604 on ``registry``."""

    @registry.register(
        "ERM601",
        "over-provisioned-capacity",
        Severity.WARNING,
        "The abstract interpreter proved a buffered channel's occupancy "
        "can never reach its declared capacity under any interleaving; "
        "the excess FIFO depth is unusable and can be reclaimed.",
    )
    def _erm601(context: LintContext) -> Iterable[Diagnostic]:
        result = context.absint()
        if result is None or not result.deadlock_free:
            return
        for bound in result.bounds:
            if bound.declared_capacity <= 0:
                continue
            if bound.hi >= bound.declared_capacity:
                continue
            yield Diagnostic(
                rule="ERM601",
                severity=Severity.WARNING,
                message=(
                    f"channel '{bound.channel}' declares capacity "
                    f"{bound.declared_capacity} but its occupancy is "
                    f"statically bounded by {bound.hi} under every "
                    f"interleaving; {bound.declared_capacity - bound.hi} "
                    "slot(s) of FIFO depth can never be used."
                ),
                location=(bound.channel,),
            )

    @registry.register(
        "ERM602",
        "dead-channel",
        Severity.WARNING,
        "No interleaving ever completes a transfer on this channel: the "
        "abstract fixpoint never enables any of its actions.  Dead "
        "channels mark the blast radius of a structural deadlock (or "
        "dead code in the topology).",
    )
    def _erm602(context: LintContext) -> Iterable[Diagnostic]:
        result = context.absint()
        if result is None:
            return
        for channel in result.dead_channels:
            yield Diagnostic(
                rule="ERM602",
                severity=Severity.WARNING,
                message=(
                    f"channel '{channel}' is dead: the occupancy fixpoint "
                    "proves no interleaving ever enables a transfer on it."
                ),
                location=(channel,),
            )

    @registry.register(
        "ERM603",
        "unreachable-statement",
        Severity.WARNING,
        "A statement of a process program that no interleaving ever "
        "executes, as proved by the abstract reachability fixpoint.",
    )
    def _erm603(context: LintContext) -> Iterable[Diagnostic]:
        result = context.absint()
        if result is None:
            return
        for op in result.unreachable_ops:
            subject = f"{op.kind}({op.channel})" if op.channel else op.kind
            yield Diagnostic(
                rule="ERM603",
                severity=Severity.WARNING,
                message=(
                    f"statement {op.index} of process '{op.process}' "
                    f"({subject}) is statically unreachable: no "
                    "interleaving ever executes it."
                ),
                location=(op.process,) + ((op.channel,) if op.channel else ()),
            )

    @registry.register(
        "ERM604",
        "certified-deadlock-free",
        Severity.INFO,
        "A machine-checked siphon-ranking certificate proves the "
        "configuration deadlock-free where exhaustive verification is "
        "unavailable (system too large) or inconclusive (budget "
        "exhausted).",
    )
    def _erm604(context: LintContext) -> Iterable[Diagnostic]:
        from repro.verify.checker import Verdict

        result = context.absint()
        if result is None or result.certificate is None:
            return
        verification = context.verification()
        if (
            verification is not None
            and verification.verdict is not Verdict.INCONCLUSIVE
        ):
            return  # the exhaustive verdict already settles it
        certificate = result.certificate
        yield Diagnostic(
            rule="ERM604",
            severity=Severity.INFO,
            message=(
                "deadlock-freedom certified without state-space search: a "
                f"validated {certificate.method} certificate ranks "
                f"{len(certificate.ranks)} transitions so that no "
                "token-free cycle exists (ir "
                f"{certificate.ir_hash[:12]}...)."
            ),
            location=(),
        )
