"""The built-in rule catalog, one module per ``ERMx``-hundred category."""

from __future__ import annotations

from repro.lint.registry import RuleRegistry
from repro.lint.rules.absint import register_absint
from repro.lint.rules.deadlock import register_deadlock
from repro.lint.rules.hygiene import register_hygiene
from repro.lint.rules.performance import register_performance
from repro.lint.rules.structural import register_structural
from repro.lint.rules.symmetry import register_symmetry
from repro.lint.rules.verification import register_verification


def register_builtin_rules(registry: RuleRegistry) -> RuleRegistry:
    """Register the full built-in catalog on ``registry`` and return it."""
    register_structural(registry)
    register_deadlock(registry)
    register_performance(registry)
    register_hygiene(registry)
    register_verification(registry)
    register_absint(registry)
    register_symmetry(registry)
    return registry


__all__ = [
    "register_absint",
    "register_builtin_rules",
    "register_deadlock",
    "register_hygiene",
    "register_performance",
    "register_structural",
    "register_symmetry",
    "register_verification",
]
