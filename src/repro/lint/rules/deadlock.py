"""ERM2xx — deadlock diagnosis.

The paper's central static result (Section 3): whether the blocking
``put``/``get`` orders can deadlock is decidable from ``(F, M0)`` alone —
the system deadlocks iff the token-free subgraph of the TMG has a cycle.
``ERM201`` reuses that witness but explains it in *design* terms: which
process blocks on which statement, at which position of its chain, and —
when the deadlock is ordering-induced — ships a fix-it carrying the safe
Algorithm-1 reordering.
"""

from __future__ import annotations

from typing import Iterable

from repro.diagnostics import Diagnostic, OrderingFix, Severity
from repro.lint.context import LintContext
from repro.lint.registry import RuleRegistry
from repro.lint.witness import format_witness


def register_deadlock(registry: RuleRegistry) -> None:
    """Register ERM201 on ``registry``."""

    @registry.register(
        "ERM201",
        "ordering-deadlock",
        Severity.ERROR,
        "The current get/put statement orders form a circular wait; the "
        "system deadlocks before producing a single output.  A safe "
        "reordering (Algorithm 1) exists and is attached as a fix-it.",
    )
    def _erm201(context: LintContext) -> Iterable[Diagnostic]:
        if not context.sound():
            return
        witness = context.deadlock_witness()
        if witness is None:
            return
        if not context.reordering_can_fix_deadlock():
            # Structurally dead: every ordering deadlocks; ERM302 owns it.
            return

        chain = format_witness(context.system, context.ordering, witness)
        fix: OrderingFix | None = None
        remedy = ""
        optimized = context.optimized_ordering()
        if optimized is not None:
            changed = optimized.differs_from(context.ordering)
            gets = {
                p: optimized.gets_of(p)
                for p in changed
                if optimized.gets_of(p) != context.ordering.gets_of(p)
            }
            puts = {
                p: optimized.puts_of(p)
                for p in changed
                if optimized.puts_of(p) != context.ordering.puts_of(p)
            }
            swaps = "; ".join(
                _describe_change(p, gets.get(p), puts.get(p))
                for p in changed
            )
            fix = OrderingFix(
                description=(
                    "apply the Algorithm-1 safe reordering: " + swaps
                ),
                gets=gets,
                puts=puts,
            )
            remedy = " Fix: " + swaps + "."
        location = tuple(
            name for name in witness if context.system.has_process(name)
        ) + tuple(name for name in witness if context.system.has_channel(name))
        yield Diagnostic(
            rule="ERM201",
            severity=Severity.ERROR,
            message=(
                "deadlock: circular wait "
                + chain
                + " — each process insists on finishing the listed "
                "statement before serving the next process's."
                + remedy
            ),
            location=location,
            fix=fix,
        )


def _describe_change(
    process: str,
    gets: tuple[str, ...] | None,
    puts: tuple[str, ...] | None,
) -> str:
    parts = []
    if gets is not None:
        parts.append(f"gets ({', '.join(gets)})")
    if puts is not None:
        parts.append(f"puts ({', '.join(puts)})")
    return f"reorder {process}'s " + " and ".join(parts)
