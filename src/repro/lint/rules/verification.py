"""ERM5xx — exhaustive verification.

The ERM2xx family diagnoses deadlock *structurally* (token-free TMG
cycles, Section 3 of the paper).  The rules here back those verdicts
with the explicit-state model checker (:mod:`repro.verify`), which
explores the exact untimed semantics under a small lint-scale budget:

* ``ERM501`` upgrades a deadlock to **verified**: the checker found a
  reachable dead state and the diagnostic carries the replayable
  schedule plus the decoded circular wait;
* ``ERM502`` is the safety net: it fires only when the structural
  analysis and the exhaustive search *disagree* on a conclusive
  verdict, which always indicates a bug in one of the two engines —
  never a property of the design.

Both rules stay silent on unsound configurations, on systems above
:data:`repro.verify.SMALL_SYSTEM_LIMIT`, and on ``INCONCLUSIVE``
(budget-exhausted) runs — an exhausted budget defers the verdict, it
never grants one.
"""

from __future__ import annotations

from typing import Iterable

from repro.diagnostics import Diagnostic, Severity
from repro.lint.context import LintContext
from repro.lint.registry import RuleRegistry


def register_verification(registry: RuleRegistry) -> None:
    """Register ERM501 and ERM502 on ``registry``."""

    @registry.register(
        "ERM501",
        "verified-deadlock",
        Severity.ERROR,
        "The explicit-state model checker exhaustively confirmed that the "
        "current get/put orders reach a dead state; the diagnostic carries "
        "the shortest witness schedule found and the circular wait it "
        "produces.",
    )
    def _erm501(context: LintContext) -> Iterable[Diagnostic]:
        from repro.verify.checker import Verdict

        result = context.verification()
        if result is None or result.verdict is not Verdict.DEADLOCKED:
            return
        witness = result.witness
        assert witness is not None  # DEADLOCKED always carries one
        schedule = witness.format_schedule() or "<initial state>"
        wait = " -> ".join(witness.cycle + witness.cycle[:1])
        yield Diagnostic(
            rule="ERM501",
            severity=Severity.ERROR,
            message=(
                "verified deadlock: exhaustive search over "
                f"{result.states_explored} states reaches a dead state "
                f"via {schedule}; circular wait {wait}."
            ),
            location=tuple(
                name
                for name in witness.cycle
                if context.system.has_process(name)
            )
            + tuple(
                name
                for name in witness.cycle
                if context.system.has_channel(name)
            ),
        )

    @registry.register(
        "ERM502",
        "structural-exhaustive-disagreement",
        Severity.ERROR,
        "The structural (TMG) deadlock verdict and the exhaustive "
        "model-checking verdict disagree.  This is an internal "
        "consistency check: a firing always indicates a bug in one of "
        "the two analyses, never a property of the design.",
    )
    def _erm502(context: LintContext) -> Iterable[Diagnostic]:
        from repro.verify.checker import Verdict

        result = context.verification()
        if result is None or result.verdict is Verdict.INCONCLUSIVE:
            return
        structural_dead = context.deadlock_witness() is not None
        exhaustive_dead = result.verdict is Verdict.DEADLOCKED
        if structural_dead == exhaustive_dead:
            return
        structural_claim = (
            "a circular wait" if structural_dead else "deadlock freedom"
        )
        exhaustive_claim = (
            "a reachable dead state"
            if exhaustive_dead
            else "deadlock freedom"
        )
        yield Diagnostic(
            rule="ERM502",
            severity=Severity.ERROR,
            message=(
                f"analysis disagreement: the structural TMG test reports "
                f"{structural_claim} but the exhaustive search "
                f"({result.states_explored} states) proves "
                f"{exhaustive_claim}.  One of the two engines is wrong — "
                "please report this as a bug with the design attached."
            ),
            location=(),
        )
