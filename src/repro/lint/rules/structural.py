"""ERM1xx — structural rules.

These absorb :mod:`repro.core.validation`: the collect-all core there
already emits coded diagnostics, so each rule here just filters the
memoized result for its own code.  Keeping one registry entry per code
(rather than one "validation" super-rule) is what makes ``--select`` /
``--ignore`` and the SARIF rule catalog precise.
"""

from __future__ import annotations

from typing import Iterable

from repro.diagnostics import Diagnostic, Severity
from repro.lint.context import LintContext
from repro.lint.registry import RuleRegistry

_STRUCTURAL_RULES: tuple[tuple[str, str, str], ...] = (
    ("ERM101", "no-worker-processes",
     "The system has no worker processes; nothing is under design."),
    ("ERM102", "source-has-inputs",
     "A testbench source has input channels; sources only produce."),
    ("ERM103", "sink-has-outputs",
     "A testbench sink has output channels; sinks only consume."),
    ("ERM104", "worker-without-inputs",
     "A worker process has no input channels and never synchronizes."),
    ("ERM105", "worker-without-outputs",
     "A worker process has no output channels; its results are dead."),
    ("ERM106", "unreachable-from-source",
     "A process is not reachable from any testbench source."),
    ("ERM107", "cannot-reach-sink",
     "A process has no path to any testbench sink."),
)


def register_structural(registry: RuleRegistry) -> None:
    """Register ERM101–ERM108 on ``registry``."""
    for code, name, summary in _STRUCTURAL_RULES:
        _register_filtering(registry, code, name, summary)

    @registry.register(
        "ERM108",
        "ordering-topology-mismatch",
        Severity.ERROR,
        "A channel ordering is not a permutation of a process's declared "
        "ports, or names a process the system does not have.",
    )
    def _erm108(context: LintContext) -> Iterable[Diagnostic]:
        return context.ordering_issues()


def _register_filtering(
    registry: RuleRegistry, code: str, name: str, summary: str
) -> None:
    @registry.register(code, name, Severity.ERROR, summary)
    def _check(context: LintContext) -> Iterable[Diagnostic]:
        return [d for d in context.structural() if d.rule == code]
