"""ERM3xx — performance lints.

These rules catch throughput loss that is statically visible from the
specification, before any simulation or exploration runs:

* ``ERM301`` — the current statement orders are live but leave cycle time
  on the table versus the Algorithm-1 ordering.  The reported delta is
  Fraction-exact and served through the shared
  :class:`~repro.perf.PerformanceEngine`, so it matches
  :func:`~repro.model.performance.analyze_system` on both orderings bit
  for bit.
* ``ERM302`` — a feedback loop whose channels carry no initial tokens
  deadlocks under *every* ordering; only pre-loading data can make it
  live.  (Zero-capacity and buffered channels alike: capacity adds slack
  slots, not data.)
* ``ERM303`` — an HLS implementation library entry is not on its
  process's latency/area Pareto frontier, so no selection step will ever
  pick it and the methodology's frontier assumption is violated.
"""

from __future__ import annotations

from typing import Iterable

from repro.diagnostics import Diagnostic, OrderingFix, Severity
from repro.lint.context import LintContext
from repro.lint.registry import RuleRegistry


def register_performance(registry: RuleRegistry) -> None:
    """Register ERM301–ERM303 on ``registry``."""

    @registry.register(
        "ERM301",
        "suboptimal-ordering",
        Severity.WARNING,
        "The statement orders are deadlock-free but slower than the "
        "Algorithm-1 ordering; the exact cycle-time delta is reported.",
    )
    def _erm301(context: LintContext) -> Iterable[Diagnostic]:
        if not context.sound() or context.deadlock_witness() is not None:
            return
        optimized = context.optimized_ordering()
        if optimized is None:
            return
        changed = optimized.differs_from(context.ordering)
        if not changed:
            return
        current = context.performance_of(context.ordering)
        best = context.performance_of(optimized)
        if current is None or best is None:
            return
        delta = current.cycle_time - best.cycle_time
        if delta <= 0:
            return
        gets = {
            p: optimized.gets_of(p)
            for p in changed
            if optimized.gets_of(p) != context.ordering.gets_of(p)
        }
        puts = {
            p: optimized.puts_of(p)
            for p in changed
            if optimized.puts_of(p) != context.ordering.puts_of(p)
        }
        percent = float(delta) / float(current.cycle_time)
        yield Diagnostic(
            rule="ERM301",
            severity=Severity.WARNING,
            message=(
                f"suboptimal statement order: cycle time {current.cycle_time} "
                f"vs {best.cycle_time} under the Algorithm-1 ordering "
                f"(delta {delta}, {percent:.1%} of the cycle time); "
                f"reordering {', '.join(changed)} closes the gap at zero "
                "area cost"
            ),
            location=changed,
            fix=OrderingFix(
                description=(
                    f"apply the Algorithm-1 ordering to {', '.join(changed)} "
                    f"(cycle time {current.cycle_time} -> {best.cycle_time})"
                ),
                gets=gets,
                puts=puts,
            ),
        )

    @registry.register(
        "ERM302",
        "token-free-feedback-loop",
        Severity.ERROR,
        "A feedback loop carries no initial tokens on any of its channels; "
        "it deadlocks under every statement ordering.  Pre-load one channel "
        "(initial_tokens >= 1).",
    )
    def _erm302(context: LintContext) -> Iterable[Diagnostic]:
        if not context.structure_ok():
            return
        for loop in context.token_free_topology_loops():
            processes = [n for n in loop if context.system.has_process(n)]
            channels = [n for n in loop if context.system.has_channel(n)]
            yield Diagnostic(
                rule="ERM302",
                severity=Severity.ERROR,
                message=(
                    "feedback loop "
                    + " -> ".join(loop + (loop[0],))
                    + " carries no initial tokens: it deadlocks under every "
                    "get/put ordering; pre-load one of "
                    + ", ".join(repr(c) for c in channels)
                    + " with initial_tokens >= 1 (e.g. an initialized frame "
                    "store)"
                ),
                location=tuple(processes) + tuple(channels),
            )

    @registry.register(
        "ERM303",
        "dominated-implementation",
        Severity.WARNING,
        "An implementation-library entry is dominated (or latency-tied and "
        "larger) within its process's Pareto set; selection will never "
        "pick it.",
    )
    def _erm303(context: LintContext) -> Iterable[Diagnostic]:
        if context.library is None:
            return
        from repro.hls.pareto import pareto_filter

        for pareto in context.library:
            frontier = {p.name for p in pareto_filter(pareto.points)}
            for point in pareto.points:
                if point.name in frontier:
                    continue
                dominator = next(
                    (
                        p
                        for p in pareto.points
                        if p.name in frontier
                        and p.latency <= point.latency
                        and p.area <= point.area
                    ),
                    None,
                )
                versus = (
                    f" (dominated by {dominator.name!r}: latency "
                    f"{dominator.latency} <= {point.latency}, area "
                    f"{dominator.area:g} <= {point.area:g})"
                    if dominator is not None
                    else ""
                )
                yield Diagnostic(
                    rule="ERM303",
                    severity=Severity.WARNING,
                    message=(
                        f"implementation {point.name!r} of process "
                        f"{pareto.process!r} is not Pareto-optimal"
                        + versus
                        + "; drop it or re-characterize the knob setting"
                    ),
                    location=(pareto.process, point.name),
                )
