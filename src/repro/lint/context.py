"""The memoized analysis context shared by all lint rules.

Several rules need the same expensive facts — is the ordering a valid
permutation, does the configuration deadlock, what does Algorithm 1
produce, what cycle time does an ordering achieve.  :class:`LintContext`
computes each fact once and caches it, and routes every performance
analysis through a :class:`~repro.perf.PerformanceEngine` so repeated
linting (pre-flight before every exploration/simulation) stays cheap and
cycle-time deltas are Fraction-exact and cache-served.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.system import ChannelOrdering, SystemGraph
from repro.core.validation import ordering_diagnostics, structural_diagnostics
from repro.diagnostics import Diagnostic
from repro.errors import DeadlockError, ReproError
from repro.perf.engine import PerformanceEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.absint import AbsIntResult
    from repro.hls.pareto import ImplementationLibrary
    from repro.ir import LoweredIR
    from repro.model.performance import SystemPerformance
    from repro.sym import SymmetryAnalysis, VerifiedFamily
    from repro.verify.checker import VerificationResult

_UNSET = object()

#: Lint-scale exhaustive-verification budget.  Lint runs as a pre-flight
#: before every exploration and simulation, so the ERM5xx rules get a
#: deliberately small slice of the checker's default budget; a run that
#: exhausts it reports INCONCLUSIVE and the rules stay silent rather than
#: guessing.
VERIFY_BUDGET_STATES = 20_000
VERIFY_BUDGET_SECONDS = 1.0


class LintContext:
    """Everything a rule may ask about one ``(system, ordering, library)``.

    Rules must treat the context as read-only.  All derived facts are
    memoized, so rule order never affects cost, and rules that depend on a
    *sound* configuration (deadlock and performance rules) can gate on
    :meth:`structure_ok`/:meth:`ordering_ok` cheaply.
    """

    def __init__(
        self,
        system: SystemGraph,
        ordering: ChannelOrdering | None = None,
        library: "ImplementationLibrary | None" = None,
        perf_engine: PerformanceEngine | None = None,
    ):
        self.system = system
        self.ordering = ordering or ChannelOrdering.declaration_order(system)
        self.library = library
        self.perf_engine = perf_engine or PerformanceEngine()
        self._structural: list[Diagnostic] | None = None
        self._ordering_issues: list[Diagnostic] | None = None
        self._witness: object = _UNSET
        self._optimized: object = _UNSET
        self._dead_loops: list[tuple[str, ...]] | None = None
        self._verification: object = _UNSET
        self._ir: object = _UNSET
        self._absint: object = _UNSET
        self._symmetry: object = _UNSET
        self._symmetry_order_relaxed: object = _UNSET
        self._symmetry_topology_relaxed: object = _UNSET
        self._declared_families: object = _UNSET

    # ------------------------------------------------------------------
    # Structural soundness
    # ------------------------------------------------------------------

    def structural(self) -> list[Diagnostic]:
        """The ``ERM101``–``ERM107`` findings of the system alone."""
        if self._structural is None:
            self._structural = structural_diagnostics(self.system)
        return self._structural

    def ordering_issues(self) -> list[Diagnostic]:
        """The ``ERM108`` ordering ↔ topology findings."""
        if self._ordering_issues is None:
            self._ordering_issues = ordering_diagnostics(
                self.system, self.ordering
            )
        return self._ordering_issues

    def structure_ok(self) -> bool:
        """True when the topology has no structural errors."""
        return not self.structural()

    def ordering_ok(self) -> bool:
        """True when the ordering is a valid permutation of every port."""
        return not self.ordering_issues()

    def sound(self) -> bool:
        """True when deeper (deadlock/performance) analysis is meaningful."""
        return self.structure_ok() and self.ordering_ok()

    # ------------------------------------------------------------------
    # Lowered program
    # ------------------------------------------------------------------

    def ir(self) -> "LoweredIR | None":
        """The lowered program of ``(system, ordering)``, or ``None``.

        ``None`` when the configuration is not sound (an invalid ordering
        has no well-defined lowering).  Served from the process-wide
        lowering memo, so the simulator, verifier, and performance engine
        the lint run precedes all reuse this exact object.
        """
        if self._ir is _UNSET:
            if not self.sound():
                self._ir = None
            else:
                from repro.ir import lower

                self._ir = lower(self.system, self.ordering)
        return self._ir  # type: ignore[return-value]

    def ir_hash(self) -> str | None:
        """The canonical content hash of the configuration, or ``None``.

        The same digest :func:`repro.perf.fingerprint.structure_fingerprint`
        returns — the shared cache key of every IR consumer.
        """
        ir = self.ir()
        return ir.structural_hash if ir is not None else None

    def absint(self) -> "AbsIntResult | None":
        """The abstract-interpretation facts of the configuration.

        Occupancy bounds, dead channels, unreachable statements, and the
        deadlock-freedom certificate (:func:`repro.absint.analyze_ir`),
        or ``None`` when the configuration is not sound.  Served from the
        absint result cache keyed on the IR's content address, so the
        verifier and the explorer running after a lint pre-flight reuse
        this exact result.
        """
        if self._absint is _UNSET:
            ir = self.ir()
            if ir is None:
                self._absint = None
            else:
                from repro.absint import analyze_ir

                self._absint = analyze_ir(ir)
        return self._absint  # type: ignore[return-value]

    def symmetry(self) -> "SymmetryAnalysis | None":
        """The strict (``EXACT``-policy) symmetry analysis, or ``None``.

        Canonical labeling of the lowered program
        (:func:`repro.sym.analyze_symmetry`): process/channel orbits,
        verified generator permutations, and the orbit-canonical hash.
        ``None`` when the configuration is not sound.  Served from the
        process-wide symmetry memo, so the verifier and explorer that run
        after a lint pre-flight reuse this exact analysis.  Runs at every
        system scale — the labeling budget is adaptive and refinement
        alone settles asymmetric designs quickly.
        """
        if self._symmetry is _UNSET:
            self._symmetry = self._analyze_symmetry(None)
        return self._symmetry  # type: ignore[return-value]

    def symmetry_order_relaxed(self) -> "SymmetryAnalysis | None":
        """Program-order-insensitive symmetry, or ``None``.

        The ``ORDER_RELAXED`` policy ignores statement order inside
        processes (channel attributes still matter), exposing design
        families whose members differ only by ordering.  Small systems
        only — the relaxed rules that consume this enumerate group
        elements, which is a small-system pastime.
        """
        if self._symmetry_order_relaxed is _UNSET:
            from repro.sym import ORDER_RELAXED

            self._symmetry_order_relaxed = self._analyze_symmetry(
                ORDER_RELAXED, small_only=True
            )
        return self._symmetry_order_relaxed  # type: ignore[return-value]

    def symmetry_topology_relaxed(self) -> "SymmetryAnalysis | None":
        """Pure endpoint-topology symmetry, or ``None``.

        Relaxes *both* statement order and channel attributes, grouping
        channels by the shape of the communication graph alone — the
        lens under which an asymmetric capacity inside an otherwise
        replicated family becomes visible (ERM703).  Small systems only.
        """
        if self._symmetry_topology_relaxed is _UNSET:
            from repro.sym import TOPOLOGY_RELAXED

            self._symmetry_topology_relaxed = self._analyze_symmetry(
                TOPOLOGY_RELAXED, small_only=True
            )
        return self._symmetry_topology_relaxed  # type: ignore[return-value]

    def declared_families(self) -> "tuple[VerifiedFamily, ...] | None":
        """The system's declared replication families, verified — or ``None``.

        ``None`` when the configuration is not sound or the system
        declares no families; otherwise the subset of declarations whose
        generators pass table verification against the lowered program
        (:func:`repro.sym.verify_families`), each tagged with the
        strongest policy it holds under (``EXACT``, or ``ORDER_RELAXED``
        when a shared endpoint serializes the lanes).  The empty tuple
        means families were declared but none survived — a drift signal
        rules may ignore.  This is the fast path ERM701 reports from
        without running the canonical-labeling search.
        """
        if self._declared_families is _UNSET:
            ir = self.ir()
            if ir is None or not self.system.declared_families:
                self._declared_families = None
            else:
                from repro.sym import verify_families

                self._declared_families = verify_families(
                    ir, self.system.declared_families
                )
        return self._declared_families  # type: ignore[return-value]

    def _analyze_symmetry(
        self, policy: object, small_only: bool = False
    ) -> "SymmetryAnalysis | None":
        ir = self.ir()
        if ir is None:
            return None
        if small_only:
            from repro.verify.checker import is_small_system

            if not is_small_system(self.system):
                return None
        from repro.sym import EXACT, analyze_symmetry, declared_seeds

        seeds = (
            declared_seeds(ir, self.system.declared_families)
            if self.system.declared_families
            else ()
        )
        return analyze_symmetry(
            ir,
            policy=policy if policy is not None else EXACT,  # type: ignore[arg-type]
            seeds=seeds,
        )

    # ------------------------------------------------------------------
    # Deadlock facts
    # ------------------------------------------------------------------

    def deadlock_witness(self) -> tuple[str, ...] | None:
        """The circular wait of the current ordering, or ``None`` if live.

        System-level names alternating process/channel, as produced by
        :func:`repro.model.performance.deadlock_cycle`.  ``None`` as well
        when the configuration is not sound enough to build the TMG.
        """
        if self._witness is _UNSET:
            if not self.sound():
                self._witness = None
            else:
                from repro.model.performance import deadlock_cycle

                self._witness = deadlock_cycle(self.system, self.ordering)
        return self._witness  # type: ignore[return-value]

    def token_free_topology_loops(self) -> list[tuple[str, ...]]:
        """Topology cycles on which *no* channel carries an initial token.

        Every such loop deadlocks under **every** statement ordering: the
        forward path through each member process (from its get of the
        incoming loop channel to its put of the outgoing one) crosses only
        unmarked places, so the loop closes a token-free TMG cycle
        regardless of how gets and puts are ordered.  Reordering cannot
        help — only pre-loading a channel (``initial_tokens >= 1``) can.

        Returns one witness cycle (alternating process and channel names,
        starting at a process) per strongly-connected component of the
        zero-token channel subgraph.
        """
        if self._dead_loops is None:
            self._dead_loops = _token_free_loops(self.system)
        return self._dead_loops

    def reordering_can_fix_deadlock(self) -> bool:
        """True when the deadlock is ordering-induced (Algorithm 1 helps)."""
        return not self.token_free_topology_loops()

    def verification(self) -> "VerificationResult | None":
        """Exhaustive deadlock verdict from the model checker, or ``None``.

        Runs :func:`repro.verify.check_deadlock` once, under the small
        lint-scale budget, and caches the result.  ``None`` when the
        configuration is not sound or the system is above
        :data:`repro.verify.SMALL_SYSTEM_LIMIT` — the ERM5xx rules only
        fire on conclusive verdicts, so a skipped or budget-exhausted run
        never silently passes *or* fails anything.
        """
        if self._verification is _UNSET:
            if not self.sound():
                self._verification = None
            else:
                from repro.verify.checker import (
                    check_deadlock,
                    is_small_system,
                )

                if not is_small_system(self.system):
                    self._verification = None
                else:
                    self._verification = check_deadlock(
                        self.system,
                        self.ordering,
                        budget_states=VERIFY_BUDGET_STATES,
                        budget_seconds=VERIFY_BUDGET_SECONDS,
                    )
        return self._verification  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Performance facts
    # ------------------------------------------------------------------

    def optimized_ordering(self) -> ChannelOrdering | None:
        """The Algorithm-1 ordering, or ``None`` when it cannot be built.

        Memoized; seeded with the current ordering so timestamp tie-breaks
        match what a designer running ``ermes order`` would get.
        """
        if self._optimized is _UNSET:
            if not self.sound():
                self._optimized = None
            else:
                from repro.ordering.algorithm import channel_ordering

                try:
                    self._optimized = channel_ordering(
                        self.system, initial_ordering=self.ordering
                    )
                except ReproError:
                    self._optimized = None
        return self._optimized  # type: ignore[return-value]

    def performance_of(
        self, ordering: ChannelOrdering
    ) -> "SystemPerformance | None":
        """Exact cycle-time analysis of ``ordering``, or ``None`` on
        deadlock.  Served through the shared performance engine, so a
        repeated query (and the explorer that runs right after a clean
        pre-flight) hits the cache."""
        from repro.model.performance import analyze_system

        try:
            return analyze_system(
                self.system,
                ordering,
                exact=True,
                perf_engine=self.perf_engine,
            )
        except DeadlockError:
            return None


def _token_free_loops(system: SystemGraph) -> list[tuple[str, ...]]:
    """One process/channel witness cycle per dead SCC of the zero-token
    channel subgraph (iterative Tarjan; linear time)."""
    edges: dict[str, list[tuple[str, str]]] = {
        p.name: [] for p in system.processes
    }
    for channel in system.channels:
        if channel.initial_tokens == 0:
            edges[channel.producer].append((channel.consumer, channel.name))

    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = 0
    sccs: list[list[str]] = []

    for root in edges:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, i = work[-1]
            if i == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            while i < len(edges[node]):
                successor = edges[node][i][0]
                i += 1
                if successor not in index:
                    work[-1] = (node, i)
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    loops: list[tuple[str, ...]] = []
    for component in sccs:
        members = set(component)
        loops.append(_witness_in_scc(edges, sorted(members)[0], members))
    loops.sort()
    return loops


def _witness_in_scc(
    edges: dict[str, list[tuple[str, str]]], start: str, members: set[str]
) -> tuple[str, ...]:
    """A concrete cycle through ``start`` inside one SCC, as alternating
    process and channel names."""
    # DFS from start constrained to the SCC until we loop back to start.
    path: list[tuple[str, str | None]] = [(start, None)]
    seen = {start}
    work: list[int] = [0]
    while work:
        node = path[-1][0]
        i = work[-1]
        succs = [e for e in edges[node] if e[0] in members]
        if i < len(succs):
            work[-1] += 1
            successor, channel = succs[i]
            if successor == start:
                path.append((successor, channel))
                cycle: list[str] = []
                for k in range(len(path) - 1):
                    cycle.append(path[k][0])
                    cycle.append(path[k + 1][1] or "")
                return tuple(cycle)
            if successor not in seen:
                seen.add(successor)
                path.append((successor, channel))
                work.append(0)
        else:
            work.pop()
            path.pop()
    return (start,)  # unreachable for a true SCC; defensive
