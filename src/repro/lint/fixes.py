"""Applying machine-applicable fix-its.

``ermes lint --fix`` collects every fixable diagnostic and applies their
:class:`~repro.diagnostics.OrderingFix` patches in severity order
(deadlock fixes before performance fixes).  Each application is validated
against the system; a patch that no longer validates — e.g. because an
earlier fix already rewrote the same process — is skipped, never applied
blind.  The result is re-linted by the caller, so a --fix run reports the
post-fix state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.system import ChannelOrdering, SystemGraph
from repro.diagnostics import Diagnostic
from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint import LintResult


@dataclass(frozen=True)
class FixOutcome:
    """What a fix pass did."""

    ordering: ChannelOrdering
    applied: tuple[Diagnostic, ...]
    skipped: tuple[Diagnostic, ...]

    @property
    def changed(self) -> bool:
        return bool(self.applied)


def apply_fixes(
    system: SystemGraph,
    ordering: ChannelOrdering,
    diagnostics: Sequence[Diagnostic],
) -> FixOutcome:
    """Apply every applicable fix-it among ``diagnostics``.

    Fixes are applied most-severe first.  A fix whose patch is redundant
    (the ordering already matches) or invalid against the system is
    recorded as skipped.
    """
    applied: list[Diagnostic] = []
    skipped: list[Diagnostic] = []
    current = ordering
    for diagnostic in sorted(diagnostics, key=Diagnostic.sort_key):
        fix = diagnostic.fix
        if fix is None:
            continue
        already = all(
            current.gets_of(p) == order for p, order in fix.gets.items()
        ) and all(
            current.puts_of(p) == order for p, order in fix.puts.items()
        )
        if already:
            skipped.append(diagnostic)
            continue
        try:
            current = fix.apply(system, current)
        except ValidationError:
            skipped.append(diagnostic)
            continue
        applied.append(diagnostic)
    return FixOutcome(
        ordering=current, applied=tuple(applied), skipped=tuple(skipped)
    )


def fix_result(result: "LintResult") -> FixOutcome:
    """:func:`apply_fixes` over a :class:`~repro.lint.LintResult`."""
    if result.system is None:
        raise ValidationError("lint result carries no system; cannot fix")
    return apply_fixes(result.system, result.ordering, result.diagnostics)
