"""The exact interleaving semantics the model checker explores.

The simulator (:mod:`repro.sim.engine`) is *timed*: it tracks local
clocks, transfer latencies, and payloads.  For deadlock, none of that
matters — whether a configuration can reach a state where every process
is blocked depends only on the *order* of communication statements and on
channel occupancies, never on how long anything takes.  This module
therefore projects the simulator's semantics onto its untimed skeleton:

* **State** — for every process, the index of its current communication
  statement (computation phases are invisible: a compute statement is
  always enabled, touches no channel, and commutes with everything, so
  the projection advances through it atomically); for every buffered
  channel, its occupancy (items currently queued).
* **Actions** — ``rdv(c)`` completes a rendezvous on channel ``c`` (both
  endpoint processes advance together — the joint-transition view of the
  blocking primitives); ``put(c)`` / ``get(c)`` are the two independent
  endpoint actions of a buffered channel (occupancy +1 / −1).

The state space is finite — ``Π_p |comm chain of p| × Π_c (cap_c + 1)``
— so plain reachability decides deadlock *exactly*, including for the
buffered/initial-token extension where the structural TMG argument of
:mod:`repro.tmg.deadlock` is the thing being cross-checked.

A load-bearing property of this transition system (proved as the
*diamond property* in ``docs/VERIFICATION.md``): an enabled action can
never be disabled by another action.  Rendezvous on distinct channels
never share a ready process (a process's current statement serves one
channel), and a buffered endpoint action only ever *helps* the opposite
endpoint.  Persistence is what makes the stubborn-set reduction of
:mod:`repro.verify.stubborn` so effective here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, NamedTuple

from repro.core.system import ChannelOrdering, SystemGraph
from repro.ir import OP_GET, LoweredIR, lower

#: A verification state: per-process communication-statement indices (in
#: the order of :attr:`TransitionSystem.process_names`) followed by
#: per-buffered-channel occupancies (order of
#: :attr:`TransitionSystem.buffered_names`).
State = tuple[tuple[int, ...], tuple[int, ...]]


class ActionKind(enum.Enum):
    """The three communication actions of the untimed semantics."""

    RENDEZVOUS = "rdv"
    PUT = "put"
    GET = "get"


class Action(NamedTuple):
    """One atomic step: a rendezvous, or one buffered endpoint."""

    kind: ActionKind
    channel: str

    def format(self) -> str:
        return f"{self.kind.value}({self.channel})"


@dataclass(frozen=True)
class CommStatement:
    """One communication statement of a process's projected chain.

    ``chain_index`` is the 0-based position in the *full* statement chain
    (gets, compute, puts — the :class:`~repro.ir.program.LoweredIR` op
    order), kept so witnesses report the same statement numbering the
    lint witnesses use.
    """

    kind: str  # "get" | "put"
    channel: str
    chain_index: int


class TransitionSystem:
    """The untimed transition system of one ``(system, ordering)`` pair.

    Processes whose chain has no communication statement (possible only
    for channel-less degenerate processes) take no part: they can always
    run, so they never contribute to a deadlock.
    """

    def __init__(self, system: SystemGraph, ordering: ChannelOrdering | None = None):
        self.system = system
        self.ordering = ordering or ChannelOrdering.declaration_order(system)
        #: The lowered program this transition system interprets.  The
        #: chains below are a direct decoding of its op arrays — the
        #: verifier no longer re-derives statement orders from the raw
        #: ordering, so sim, TMG, and verify all read one compilation.
        self.ir: LoweredIR = lower(system, self.ordering)
        ir = self.ir

        #: Projected communication chains, only for processes that have one.
        self.chains: dict[str, tuple[CommStatement, ...]] = {}
        #: Full-chain lengths (for witness ``index/total`` reporting).
        self.chain_totals: dict[str, int] = {}
        for pid, process in enumerate(ir.processes):
            kinds = ir.op_kinds[pid]
            args = ir.op_args[pid]
            comm = tuple(
                CommStatement(
                    kind="get" if kinds[i] == OP_GET else "put",
                    channel=ir.channels[args[i]],
                    chain_index=i,
                )
                for i in ir.comm_indices[pid]
            )
            if comm:
                self.chains[process] = comm
                self.chain_totals[process] = len(kinds)

        self.process_names: tuple[str, ...] = tuple(self.chains)
        self._process_slot: dict[str, int] = {
            name: i for i, name in enumerate(self.process_names)
        }

        #: Buffered channels carry an occupancy dimension; rendezvous
        #: channels are pure synchronizations with no state of their own.
        buffered_cids = tuple(
            cid for cid in range(ir.n_channels) if ir.buffered[cid]
        )
        self.buffered_names: tuple[str, ...] = tuple(
            ir.channels[cid] for cid in buffered_cids
        )
        self._buffer_slot: dict[str, int] = {
            name: i for i, name in enumerate(self.buffered_names)
        }
        self._capacity: dict[str, int] = {
            ir.channels[cid]: ir.effective_capacities[cid]
            for cid in buffered_cids
        }
        self._initial_tokens: tuple[int, ...] = tuple(
            ir.initial_tokens[cid] for cid in buffered_cids
        )
        self._producer: dict[str, str] = {
            name: ir.processes[ir.producers[cid]]
            for cid, name in enumerate(ir.channels)
        }
        self._consumer: dict[str, str] = {
            name: ir.processes[ir.consumers[cid]]
            for cid, name in enumerate(ir.channels)
        }

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------

    def initial_state(self) -> State:
        """Every process at its first communication statement; buffered
        channels pre-loaded with their initial tokens."""
        return (
            tuple(0 for _ in self.process_names),
            self._initial_tokens,
        )

    def statement_at(self, state: State, process: str) -> CommStatement:
        """The communication statement ``process`` is waiting to execute."""
        slot = self._process_slot[process]
        return self.chains[process][state[0][slot]]

    def occupancy(self, state: State, channel: str) -> int:
        """Items currently queued on a buffered channel."""
        return state[1][self._buffer_slot[channel]]

    def capacity(self, channel: str) -> int:
        return self._capacity[channel]

    def is_buffered(self, channel: str) -> bool:
        return channel in self._buffer_slot

    def endpoints(self, action: Action) -> tuple[str, ...]:
        """The processes an action moves: both for a rendezvous, the one
        endpoint for a buffered put/get."""
        if action.kind is ActionKind.RENDEZVOUS:
            return (
                self._producer[action.channel],
                self._consumer[action.channel],
            )
        if action.kind is ActionKind.PUT:
            return (self._producer[action.channel],)
        return (self._consumer[action.channel],)

    def current_action(self, state: State, process: str) -> Action:
        """The only action that can ever advance ``process`` from here."""
        statement = self.statement_at(state, process)
        if not self.is_buffered(statement.channel):
            return Action(ActionKind.RENDEZVOUS, statement.channel)
        if statement.kind == "put":
            return Action(ActionKind.PUT, statement.channel)
        return Action(ActionKind.GET, statement.channel)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def is_enabled(self, state: State, action: Action) -> bool:
        channel = action.channel
        if action.kind is ActionKind.RENDEZVOUS:
            producer, consumer = self.endpoints(action)
            put_ready = (
                producer in self.chains
                and self.statement_at(state, producer).kind == "put"
                and self.statement_at(state, producer).channel == channel
            )
            get_ready = (
                consumer in self.chains
                and self.statement_at(state, consumer).kind == "get"
                and self.statement_at(state, consumer).channel == channel
            )
            return put_ready and get_ready
        (endpoint,) = self.endpoints(action)
        statement = self.statement_at(state, endpoint)
        if statement.channel != channel:
            return False
        if action.kind is ActionKind.PUT:
            return (
                statement.kind == "put"
                and self.occupancy(state, channel) < self.capacity(channel)
            )
        return statement.kind == "get" and self.occupancy(state, channel) > 0

    def enabled_actions(self, state: State) -> tuple[Action, ...]:
        """All enabled actions, deterministically ordered.

        Derived from each process's current statement, so the scan is
        linear in the number of processes; each enabled rendezvous is
        reported once (from its producer side).
        """
        enabled: list[Action] = []
        for process in self.process_names:
            action = self.current_action(state, process)
            if action.kind is ActionKind.GET:
                if self.is_enabled(state, action):
                    enabled.append(action)
            elif action.kind is ActionKind.PUT:
                if self.is_enabled(state, action):
                    enabled.append(action)
            else:  # rendezvous: count it once, from the producer side
                if (
                    self._producer[action.channel] == process
                    and self.is_enabled(state, action)
                ):
                    enabled.append(action)
        enabled.sort(key=lambda a: (a.channel, a.kind.value))
        return tuple(enabled)

    def successor(self, state: State, action: Action) -> State:
        """The state after firing ``action`` (must be enabled)."""
        indices = list(state[0])
        occupancies = list(state[1])
        for process in self.endpoints(action):
            slot = self._process_slot[process]
            indices[slot] = (indices[slot] + 1) % len(self.chains[process])
        if action.kind is ActionKind.PUT:
            occupancies[self._buffer_slot[action.channel]] += 1
        elif action.kind is ActionKind.GET:
            occupancies[self._buffer_slot[action.channel]] -= 1
        return (tuple(indices), tuple(occupancies))

    # ------------------------------------------------------------------
    # Deadlock
    # ------------------------------------------------------------------

    def is_deadlock(self, state: State) -> bool:
        """True when some process is blocked and no action is enabled.

        A system with no communication statements at all never blocks —
        every process free-runs — so the empty transition system is
        vacuously deadlock-free rather than trivially dead.
        """
        if not self.process_names:
            return False
        return not self.enabled_actions(state)

    def blocked_map(self, state: State) -> dict[str, str]:
        """``process -> channel`` it is blocked on (every communicating
        process, in a deadlocked state)."""
        return {
            process: self.statement_at(state, process).channel
            for process in self.process_names
        }

    def wait_for_edges(self, state: State) -> dict[str, str]:
        """The wait-for graph of a (deadlocked) state.

        A process stuck at a statement on channel ``c`` waits for the
        *other* endpoint of ``c`` to serve it: the producer for a blocked
        get, the consumer for a blocked put (a blocked buffered put waits
        on the consumer to free a slot; a blocked buffered get waits on
        the producer to queue an item — same edges).
        """
        edges: dict[str, str] = {}
        for process in self.process_names:
            statement = self.statement_at(state, process)
            if statement.kind == "put":
                edges[process] = self._consumer[statement.channel]
            else:
                edges[process] = self._producer[statement.channel]
        return edges

    # ------------------------------------------------------------------

    def state_space_bound(self) -> int:
        """The a-priori product bound on reachable states."""
        bound = 1
        for chain in self.chains.values():
            bound *= len(chain)
        for name in self.buffered_names:
            bound *= self._capacity[name] + 1
        return bound

    def iter_channels_of(self, process: str) -> Iterator[str]:
        """Every channel ``process`` touches (for dependency closure)."""
        for statement in self.chains.get(process, ()):
            yield statement.channel
