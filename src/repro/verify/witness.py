"""Counterexample extraction: a deadlocked state as a designer-readable,
replayable witness.

A ``DEADLOCKED`` verdict would be useless as a bare state tuple.  This
module decodes it three ways:

* the **schedule** — the action sequence (shortest among the explored
  interleavings) that drives the initial state into the deadlock; it
  replays step by step through :func:`replay_schedule`, so the verdict is
  checkable without trusting the search;
* the **blocked configuration** — which statement every process is stuck
  at, the same information the simulator reports when it hits the
  deadlock at runtime;
* the **circular wait** — the cycle of refusals behind the deadlock,
  decoded into the statement-indexed
  :class:`~repro.lint.witness.BlockedStatement` vocabulary the ERM2xx
  lint witnesses already use, so ``ermes verify`` and ``ermes lint`` read
  the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import ChannelOrdering, SystemGraph
from repro.errors import VerificationError
from repro.lint.witness import BlockedStatement
from repro.verify.semantics import Action, State, TransitionSystem


@dataclass(frozen=True)
class DeadlockWitness:
    """A replayable counterexample for a ``DEADLOCKED`` verdict.

    Attributes:
        schedule: Actions from the initial state to the deadlocked state.
        blocked: ``(process, channel)`` pairs, sorted by process: the
            statement each communicating process is blocked on.
        cycle: The circular wait as alternating process/channel names
            (same shape as :func:`repro.model.performance.deadlock_cycle`
            returns for the structural witness).
        statements: The cycle decoded hop by hop into blocked statements.
        state: The raw deadlocked state (for replay assertions).
    """

    schedule: tuple[Action, ...]
    blocked: tuple[tuple[str, str], ...]
    cycle: tuple[str, ...]
    statements: tuple[BlockedStatement, ...]
    state: State

    def format_schedule(self) -> str:
        """The schedule as one arrow-joined line."""
        return " -> ".join(action.format() for action in self.schedule)

    def format(self) -> str:
        """Multi-line rendering: schedule, blocked set, circular wait."""
        lines = [
            f"schedule ({len(self.schedule)} steps): "
            + (self.format_schedule() or "<initial state>"),
            "blocked: "
            + ", ".join(f"{p} on {c}" for p, c in self.blocked),
        ]
        if self.statements:
            lines.append("circular wait:")
            for statement in self.statements:
                lines.append("  " + statement.format())
        return "\n".join(lines)


def decode_deadlock(
    ts: TransitionSystem, state: State, schedule: tuple[Action, ...]
) -> DeadlockWitness:
    """Decode a deadlocked ``state`` into a :class:`DeadlockWitness`."""
    blocked = ts.blocked_map(state)
    wait_for = ts.wait_for_edges(state)
    process_cycle = _functional_cycle(wait_for)
    cycle: list[str] = []
    statements: list[BlockedStatement] = []
    for i, process in enumerate(process_cycle):
        waited_channel = blocked[process]
        cycle.append(process)
        cycle.append(waited_channel)
        server = process_cycle[(i + 1) % len(process_cycle)]
        statements.append(
            _refusal_statement(ts, server, waited_channel, blocked[server])
        )
    return DeadlockWitness(
        schedule=schedule,
        blocked=tuple(sorted(blocked.items())),
        cycle=tuple(cycle),
        statements=tuple(statements),
        state=state,
    )


def _refusal_statement(
    ts: TransitionSystem,
    server: str,
    waited_channel: str,
    busy_channel: str,
) -> BlockedStatement:
    """Why ``server`` does not serve ``waited_channel``: it insists on
    completing ``busy_channel`` (its current statement) first."""
    chain = ts.chains[server]
    gets = [s.channel for s in chain if s.kind == "get"]
    if waited_channel in gets:
        kind = "get"
        position, count = gets.index(waited_channel) + 1, len(gets)
    else:
        kind = "put"
        puts = [s.channel for s in chain if s.kind == "put"]
        position, count = puts.index(waited_channel) + 1, len(puts)
    statement = next(
        s for s in chain if s.kind == kind and s.channel == waited_channel
    )
    return BlockedStatement(
        process=server,
        kind=kind,
        channel=waited_channel,
        index=statement.chain_index + 1,
        total=ts.chain_totals[server],
        position=position,
        count=count,
        waits_for=busy_channel,
    )


def _functional_cycle(wait_for: dict[str, str]) -> tuple[str, ...]:
    """The (unique per component) cycle of a functional wait-for graph.

    In a deadlocked state every communicating process has exactly one
    outgoing wait-for edge, so following edges from any node must loop.
    Starts the returned cycle at its lexicographically smallest member
    for determinism.
    """
    seen: set[str] = set()
    for root in sorted(wait_for):
        if root in seen:
            continue
        path: list[str] = []
        index: dict[str, int] = {}
        node = root
        while node not in index:
            if node in seen:
                break
            index[node] = len(path)
            path.append(node)
            node = wait_for[node]
        else:
            cycle = path[index[node]:]
            smallest = cycle.index(min(cycle))
            return tuple(cycle[smallest:] + cycle[:smallest])
        seen.update(path)
    raise VerificationError(
        "no circular wait in a supposedly deadlocked state"
    )


def replay_schedule(
    system: SystemGraph,
    ordering: ChannelOrdering | None,
    schedule: tuple[Action, ...],
) -> State:
    """Re-execute ``schedule`` from the initial state, checking every step.

    Raises :class:`~repro.errors.VerificationError` on the first action
    that is not enabled — a witness that fails to replay is a checker
    bug, and this function is exactly how the tests (and a skeptical
    user) establish that no such bug is present.
    """
    ts = TransitionSystem(system, ordering)
    state = ts.initial_state()
    for step, action in enumerate(schedule):
        if not ts.is_enabled(state, action):
            raise VerificationError(
                f"witness schedule does not replay: step {step} "
                f"({action.format()}) is not enabled"
            )
        state = ts.successor(state, action)
    return state


def replay_witness(
    system: SystemGraph,
    ordering: ChannelOrdering | None,
    witness: DeadlockWitness,
) -> State:
    """Replay a witness end to end and check it lands in its deadlock.

    Returns the final state after asserting that (a) the schedule
    replays, (b) the final state is deadlocked, and (c) its blocked
    configuration matches the witness's claim.
    """
    ts = TransitionSystem(system, ordering)
    state = replay_schedule(system, ordering, witness.schedule)
    if not ts.is_deadlock(state):
        raise VerificationError(
            "witness schedule replays but does not end in a deadlock"
        )
    blocked = tuple(sorted(ts.blocked_map(state).items()))
    if blocked != witness.blocked:
        raise VerificationError(
            "witness schedule ends in a different blocked configuration: "
            f"{blocked} != {witness.blocked}"
        )
    return state
