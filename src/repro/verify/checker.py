"""The explicit-state reachability engine and its budgeted verdicts.

:func:`check_deadlock` explores the untimed transition system of a
``(system, ordering)`` pair (see :mod:`repro.verify.semantics`) and
returns a three-valued :class:`VerificationResult`:

* ``DEADLOCK_FREE`` — the *entire* reachable state space was enumerated
  and no deadlocked state exists.  This is a proof, not a sample.
* ``DEADLOCKED`` — a reachable deadlock was found; the result carries a
  replayable :class:`~repro.verify.witness.DeadlockWitness` (shortest
  schedule among the explored interleavings, plus the circular wait
  decoded to blocked statements).
* ``INCONCLUSIVE`` — a state or time budget ran out first.  Budgets are
  never a silent pass: the verdict is explicit, carries the reason, and
  the strict entry point :func:`verify_ordering` raises
  :class:`~repro.errors.BudgetExceeded` instead of returning.

The search is breadth-first (witnesses come out shortest-first) with
stubborn-set partial-order reduction on by default
(:mod:`repro.verify.stubborn`); ``por=False`` selects the naive full
interleaving — same verdicts, exponentially more states (that gap is the
benchmark ``benchmarks/test_bench_verify.py`` tracks).
"""

from __future__ import annotations

import enum
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.system import ChannelOrdering, SystemGraph
from repro.errors import BudgetExceeded, DeadlockError
from repro.verify.semantics import Action, State, TransitionSystem
from repro.verify.stubborn import stubborn_set
from repro.verify.witness import DeadlockWitness, decode_deadlock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.sym.states import StateSymmetry

#: Default cap on explored states — comfortably above every shipped
#: example while still bounding degenerate blow-ups to well under a
#: second of work.
DEFAULT_BUDGET_STATES = 1_000_000


class Verdict(enum.Enum):
    """Three-valued outcome of a verification run."""

    DEADLOCK_FREE = "deadlock-free"
    DEADLOCKED = "deadlocked"
    INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class VerificationResult:
    """Everything one :func:`check_deadlock` run established.

    Attributes:
        verdict: The three-valued outcome.
        witness: The replayable counterexample (``DEADLOCKED`` only).
        states_explored: Distinct states expanded.
        transitions_fired: Successor computations performed.
        por_pruned: Enabled actions *not* expanded thanks to the
            stubborn-set reduction (0 when ``por=False``).
        state_space_bound: The a-priori product bound on the state space.
        elapsed_s: Wall-clock search time.
        budget_states / budget_seconds: The limits the run was given.
        reason: Why the run stopped (always set; for ``INCONCLUSIVE``
            it names the exhausted budget).
        por: Whether the reduction was active.
        sym: Whether quotient-space symmetry reduction was active (it
            silently stays off when the design's automorphism group is
            trivial, even under ``sym=True``).
        sym_merged: Successor states folded onto an already-visited
            orbit representative by a non-identity automorphism
            (0 when ``sym`` is off).
    """

    verdict: Verdict
    witness: DeadlockWitness | None
    states_explored: int
    transitions_fired: int
    por_pruned: int
    state_space_bound: int
    elapsed_s: float
    budget_states: int
    budget_seconds: float | None
    reason: str
    por: bool
    sym: bool = False
    sym_merged: int = 0

    @property
    def deadlocked(self) -> bool:
        return self.verdict is Verdict.DEADLOCKED

    @property
    def proven_free(self) -> bool:
        return self.verdict is Verdict.DEADLOCK_FREE

    @property
    def conclusive(self) -> bool:
        return self.verdict is not Verdict.INCONCLUSIVE

    def format(self) -> str:
        """One-paragraph human rendering (the ``ermes verify`` body)."""
        lines = [
            f"verdict: {self.verdict.value} ({self.reason})",
            f"states explored: {self.states_explored}"
            f" (bound {self.state_space_bound})",
            f"transitions fired: {self.transitions_fired}",
            f"por: {'on' if self.por else 'off'},"
            f" pruned {self.por_pruned} interleavings",
            f"sym: {'on' if self.sym else 'off'},"
            f" merged {self.sym_merged} symmetric states",
            f"elapsed: {self.elapsed_s:.3f}s",
        ]
        if self.witness is not None:
            lines.append("counterexample:")
            lines.append("  " + self.witness.format().replace("\n", "\n  "))
        return "\n".join(lines)


def check_deadlock(
    system: SystemGraph,
    ordering: ChannelOrdering | None = None,
    *,
    por: bool = True,
    budget_states: int = DEFAULT_BUDGET_STATES,
    budget_seconds: float | None = None,
    use_certificate: bool = False,
    sym: bool = False,
    metrics: "MetricsRegistry | None" = None,
) -> VerificationResult:
    """Exhaustively decide deadlock reachability, within budget.

    Args:
        system: The topology under verification.
        ordering: Statement orders (default: declaration order).
        por: Stubborn-set partial-order reduction (on by default;
            ``False`` explores the full interleaving — for benchmarks
            and for distrust).
        budget_states: Hard cap on states expanded; exceeding it yields
            an ``INCONCLUSIVE`` verdict, never a silent pass.
        budget_seconds: Optional wall-clock cap with the same contract.
        use_certificate: Try a static deadlock-freedom certificate
            (:mod:`repro.absint`) before searching.  When one is issued
            *and independently re-validated* against the lowered IR, the
            run returns ``DEADLOCK_FREE`` with zero states explored —
            the budgets never come into play, so verification stays on
            at scales the BFS cannot touch.  When no certificate exists
            the search proceeds exactly as without the flag.  Off by
            default: callers pinning budget semantics (and the ERM5xx
            lint rules, whose job is the exhaustive answer) keep the
            plain search.
        sym: Quotient-space symmetry reduction: canonicalize every BFS
            state to its orbit representative under the design's
            verified automorphism group (:mod:`repro.sym`) before the
            visited-set lookup.  Composes with the stubborn-set
            reduction; verdicts are unchanged (``docs/THEORY.md`` §8)
            and ``DEADLOCKED`` witnesses are pulled back to a concrete
            replayable schedule.  A trivial group degrades gracefully
            to the plain search.
        metrics: Optional registry; the run reports under the stable
            ``verify.*`` names (``docs/OBSERVABILITY.md``).
    """
    if budget_states < 1:
        raise ValueError("budget_states must be >= 1")
    ts = TransitionSystem(system, ordering)
    if use_certificate:
        from repro.absint import analyze_ir, check_certificate

        certificate = analyze_ir(ts.ir).certificate
        if certificate is not None:
            check_certificate(ts.ir, certificate)
            if metrics is not None:
                metrics.counter("verify.runs").add(1)
                metrics.counter("verify.certificates.accepted").add(1)
            return VerificationResult(
                verdict=Verdict.DEADLOCK_FREE,
                witness=None,
                states_explored=0,
                transitions_fired=0,
                por_pruned=0,
                state_space_bound=ts.state_space_bound(),
                elapsed_s=0.0,
                budget_states=budget_states,
                budget_seconds=budget_seconds,
                reason=(
                    "validated siphon-ranking certificate "
                    f"(ir {certificate.ir_hash[:12]}...) proves "
                    "deadlock-freedom without search"
                ),
                por=por,
            )
    sym_engine = None
    if sym:
        from repro.sym.states import StateSymmetry

        sym_engine = StateSymmetry(ts)
        if sym_engine.trivial:
            sym_engine = None  # no symmetry: plain search, honestly flagged
    timer_cm = (
        metrics.timer("verify.search") if metrics is not None else None
    )
    start = time.perf_counter()
    if timer_cm is not None:
        timer_cm.__enter__()
    try:
        if sym_engine is not None:
            outcome = _search_sym(
                ts, sym_engine, por, budget_states, budget_seconds, start
            )
        else:
            outcome = _search(ts, por, budget_states, budget_seconds, start)
    finally:
        if timer_cm is not None:
            timer_cm.__exit__(None, None, None)
    if metrics is not None:
        metrics.counter("verify.runs").add(1)
        metrics.counter("verify.states.explored").add(outcome.states_explored)
        metrics.counter("verify.transitions").add(outcome.transitions_fired)
        metrics.counter("verify.por.pruned").add(outcome.por_pruned)
        if outcome.sym:
            metrics.counter("verify.sym.runs").add(1)
            metrics.counter("verify.sym.merged").add(outcome.sym_merged)
        if outcome.deadlocked:
            metrics.counter("verify.deadlocks").add(1)
    return outcome


def _search(
    ts: TransitionSystem,
    por: bool,
    budget_states: int,
    budget_seconds: float | None,
    start: float,
) -> VerificationResult:
    initial = ts.initial_state()
    parents: dict[State, tuple[State, Action] | None] = {initial: None}
    frontier: deque[State] = deque([initial])
    explored = 0
    fired = 0
    pruned = 0

    def finish(
        verdict: Verdict, reason: str, witness: DeadlockWitness | None = None
    ) -> VerificationResult:
        return VerificationResult(
            verdict=verdict,
            witness=witness,
            states_explored=explored,
            transitions_fired=fired,
            por_pruned=pruned,
            state_space_bound=ts.state_space_bound(),
            elapsed_s=time.perf_counter() - start,
            budget_states=budget_states,
            budget_seconds=budget_seconds,
            reason=reason,
            por=por,
        )

    # Check the time budget only every so many states: a perf_counter
    # call per state would dominate tiny searches.
    TIME_CHECK_EVERY = 256

    while frontier:
        state = frontier.popleft()
        explored += 1
        if explored > budget_states:
            return finish(
                Verdict.INCONCLUSIVE,
                f"state budget exceeded ({budget_states} states)",
            )
        if (
            budget_seconds is not None
            and explored % TIME_CHECK_EVERY == 0
            and time.perf_counter() - start > budget_seconds
        ):
            return finish(
                Verdict.INCONCLUSIVE,
                f"time budget exceeded ({budget_seconds}s)",
            )
        enabled = ts.enabled_actions(state)
        if not enabled:
            if ts.is_deadlock(state):
                schedule = _schedule_to(parents, state)
                witness = decode_deadlock(ts, state, schedule)
                return finish(
                    Verdict.DEADLOCKED,
                    f"deadlocked state reachable in {len(schedule)} steps",
                    witness,
                )
            continue  # no communicating process: nothing to do, nothing stuck
        if por and len(enabled) > 1:
            expand = stubborn_set(ts, state, enabled)
            pruned += len(enabled) - len(expand)
        else:
            expand = enabled
        for action in expand:
            fired += 1
            successor = ts.successor(state, action)
            if successor not in parents:
                parents[successor] = (state, action)
                frontier.append(successor)
    return finish(
        Verdict.DEADLOCK_FREE,
        f"all {explored} reachable states enumerated, none deadlocked",
    )


def _schedule_to(
    parents: dict[State, tuple[State, Action] | None], state: State
) -> tuple[Action, ...]:
    """Walk the parent pointers back to the initial state."""
    schedule: list[Action] = []
    cursor = state
    while True:
        entry = parents[cursor]
        if entry is None:
            break
        cursor, action = entry
        schedule.append(action)
    schedule.reverse()
    return tuple(schedule)


def _search_sym(
    ts: TransitionSystem,
    sym: "StateSymmetry",
    por: bool,
    budget_states: int,
    budget_seconds: float | None,
    start: float,
) -> VerificationResult:
    """BFS over orbit representatives instead of concrete states.

    Every explored state is the canonical representative of its orbit
    under the IR's verified automorphism group, so symmetric copies of
    a state are expanded once.  Soundness (``docs/THEORY.md`` §8): an
    automorphism commutes with the successor relation and preserves
    deadlockedness, so a deadlock is reachable in the quotient iff one
    is reachable concretely.  Parent pointers additionally record the
    canonicalizing permutation of each step, letting the witness
    reconstruction pull the representative-frame schedule back to a
    concrete replayable one.
    """
    from repro.sym.perm import (
        PairPerm,
        compose_pair,
        invert_pair,
        is_identity_pair,
    )

    concrete_initial = ts.initial_state()
    initial, initial_pi = sym.canonicalize(concrete_initial)
    # rep -> (parent rep, action in the parent's frame, canonicalizing
    # permutation pi with rep == pi(successor(parent, action))).
    parents: dict[State, tuple[State, Action, PairPerm] | None] = {
        initial: None
    }
    frontier: deque[State] = deque([initial])
    explored = 0
    fired = 0
    pruned = 0
    merged = 0

    def finish(
        verdict: Verdict, reason: str, witness: DeadlockWitness | None = None
    ) -> VerificationResult:
        return VerificationResult(
            verdict=verdict,
            witness=witness,
            states_explored=explored,
            transitions_fired=fired,
            por_pruned=pruned,
            state_space_bound=ts.state_space_bound(),
            elapsed_s=time.perf_counter() - start,
            budget_states=budget_states,
            budget_seconds=budget_seconds,
            reason=reason,
            por=por,
            sym=True,
            sym_merged=merged,
        )

    def concrete_witness(deadlock_rep: State) -> DeadlockWitness:
        # Walk back collecting (action, pi) per step, then replay
        # forward tracking the cumulative frame map sigma (concrete ->
        # representative): sigma_0 = pi_0, the concrete action is
        # sigma_i^-1(a_{i+1}), and sigma_{i+1} = pi_{i+1} o sigma_i.
        steps: list[tuple[Action, PairPerm]] = []
        cursor = deadlock_rep
        while True:
            entry = parents[cursor]
            if entry is None:
                break
            cursor, action, pi = entry
            steps.append((action, pi))
        steps.reverse()
        sigma = initial_pi
        schedule: list[Action] = []
        for action, pi in steps:
            schedule.append(sym.map_action(invert_pair(sigma), action))
            sigma = compose_pair(pi, sigma)
        concrete = sym.apply(invert_pair(sigma), deadlock_rep)
        return decode_deadlock(ts, concrete, tuple(schedule))

    TIME_CHECK_EVERY = 256

    while frontier:
        state = frontier.popleft()
        explored += 1
        if explored > budget_states:
            return finish(
                Verdict.INCONCLUSIVE,
                f"state budget exceeded ({budget_states} states)",
            )
        if (
            budget_seconds is not None
            and explored % TIME_CHECK_EVERY == 0
            and time.perf_counter() - start > budget_seconds
        ):
            return finish(
                Verdict.INCONCLUSIVE,
                f"time budget exceeded ({budget_seconds}s)",
            )
        enabled = ts.enabled_actions(state)
        if not enabled:
            if ts.is_deadlock(state):
                witness = concrete_witness(state)
                return finish(
                    Verdict.DEADLOCKED,
                    "deadlocked state reachable in "
                    f"{len(witness.schedule)} steps",
                    witness,
                )
            continue  # no communicating process: nothing to do, nothing stuck
        if por and len(enabled) > 1:
            expand = stubborn_set(ts, state, enabled)
            pruned += len(enabled) - len(expand)
        else:
            expand = enabled
        for action in expand:
            fired += 1
            successor = ts.successor(state, action)
            rep, pi = sym.canonicalize(successor)
            if not is_identity_pair(pi):
                merged += 1
            if rep not in parents:
                parents[rep] = (state, action, pi)
                frontier.append(rep)
    return finish(
        Verdict.DEADLOCK_FREE,
        f"all {explored} reachable orbit representatives enumerated, "
        "none deadlocked",
    )


#: Systems at or below this many processes + channels are "small": the
#: explorer machine-checks Algorithm 1's output on them after every
#: reordering (state spaces this size verify in well under a second).
SMALL_SYSTEM_LIMIT = 48


def is_small_system(system: SystemGraph) -> bool:
    """True when the explorer's post-Algorithm-1 verification applies."""
    return len(system.processes) + len(system.channels) <= SMALL_SYSTEM_LIMIT


def verify_ordering(
    system: SystemGraph,
    ordering: ChannelOrdering,
    *,
    por: bool = True,
    budget_states: int = DEFAULT_BUDGET_STATES,
    budget_seconds: float | None = None,
    use_certificate: bool = False,
    sym: bool = False,
    metrics: "MetricsRegistry | None" = None,
) -> VerificationResult:
    """Machine-check that ``ordering`` cannot deadlock — strictly.

    The strict form of :func:`check_deadlock` the DSE explorer runs on
    Algorithm 1's output: a ``DEADLOCKED`` verdict raises
    :class:`~repro.errors.DeadlockError` carrying the witness cycle, and
    an ``INCONCLUSIVE`` verdict raises
    :class:`~repro.errors.BudgetExceeded` — a budget can defer the
    guarantee, never silently grant it.  With ``use_certificate=True`` a
    validated static certificate short-circuits the search entirely (see
    :func:`check_deadlock`), which is what lifts the
    :data:`SMALL_SYSTEM_LIMIT` gate at MPEG-2 scale.
    """
    result = check_deadlock(
        system,
        ordering,
        por=por,
        budget_states=budget_states,
        budget_seconds=budget_seconds,
        use_certificate=use_certificate,
        sym=sym,
        metrics=metrics,
    )
    if result.verdict is Verdict.INCONCLUSIVE:
        raise BudgetExceeded(
            f"verification of {system.name!r} is inconclusive: "
            f"{result.reason}; raise the budget to obtain a verdict"
        )
    if result.verdict is Verdict.DEADLOCKED:
        witness = result.witness
        assert witness is not None
        raise DeadlockError(
            f"system {system.name!r} deadlocks under the verified ordering; "
            f"witness schedule of {len(witness.schedule)} steps: "
            + witness.format_schedule(),
            cycle=list(witness.cycle),
        )
    return result
