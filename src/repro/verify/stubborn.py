"""Stubborn-set partial-order reduction for the deadlock search.

The naive search interleaves every enabled action at every state, so two
independent rendezvous — say, on opposite ends of a pipeline — double the
frontier even though both orders reach the same state (the diamond
property of :mod:`repro.verify.semantics`).  A *stubborn set* is a subset
of the enabled actions that is sound to explore exclusively: the classic
theorem (Valmari 1991; Godefroid 1996, persistent sets) states that a
selective search that expands a nonempty stubborn set at every state
visits **every reachable deadlock state**.  Deadlock preservation needs no
cycle proviso — that is what makes the reduction both simple and exact
for the property this checker decides.

Construction (the standard insertion algorithm, specialized to the
blocking-channel dependency structure):

* seed the closure with one enabled action;
* an **enabled** action in the closure pulls in every action *dependent*
  on it — here, syntactic dependence: sharing an endpoint process or
  naming the same channel (anything else commutes and cannot be disabled,
  see the diamond lemma in ``docs/VERIFICATION.md``);
* a **disabled** action in the closure pulls in one *necessary enabling
  set*: a set of actions, at least one of which must fire before the
  disabled action can become enabled.  A misplaced endpoint process can
  only move through its current action; an empty buffer needs the
  channel's put; a full buffer needs its get.

The stubborn set returned is the enabled subset of the closure.  Seeds
are tried in deterministic order and the smallest result wins (ties go to
the lexicographically first), so runs are reproducible action for action.
"""

from __future__ import annotations

from repro.verify.semantics import Action, ActionKind, State, TransitionSystem


def stubborn_set(
    ts: TransitionSystem, state: State, enabled: tuple[Action, ...]
) -> tuple[Action, ...]:
    """A nonempty stubborn subset of ``enabled`` (assumed nonempty)."""
    best: tuple[Action, ...] | None = None
    for seed in enabled:
        candidate = _closure(ts, state, seed, enabled)
        if len(candidate) == 1:
            return candidate  # cannot do better than a singleton
        if best is None or len(candidate) < len(best):
            best = candidate
    assert best is not None
    return best


def _closure(
    ts: TransitionSystem,
    state: State,
    seed: Action,
    enabled: tuple[Action, ...],
) -> tuple[Action, ...]:
    """Close ``{seed}`` under the stubborn conditions; return the enabled
    members, deterministically ordered."""
    enabled_set = set(enabled)
    closure: set[Action] = {seed}
    work: list[Action] = [seed]
    while work:
        action = work.pop()
        if action in enabled_set:
            additions = _dependent_actions(ts, state, action)
        else:
            additions = _necessary_enabling_set(ts, state, action, closure)
        for other in additions:
            if other not in closure:
                closure.add(other)
                work.append(other)
    chosen = sorted(
        closure & enabled_set, key=lambda a: (a.channel, a.kind.value)
    )
    return tuple(chosen)


def _dependent_actions(
    ts: TransitionSystem, state: State, action: Action
) -> list[Action]:
    """Every action sharing a process or the channel with ``action``.

    Actions are identified with the *statements that could issue them*:
    for each endpoint process of ``action``, the current actions that any
    statement of that process's chain could contribute, restricted to the
    channels the process touches.  That keeps the universe local — the
    closure never has to materialize all actions of the system.
    """
    dependents: list[Action] = []
    seen: set[Action] = set()

    def add(other: Action) -> None:
        if other != action and other not in seen:
            seen.add(other)
            dependents.append(other)

    for process in ts.endpoints(action):
        for channel in ts.iter_channels_of(process):
            add(_channel_action_for(ts, channel, process))
    # Same-channel counterpart (the opposite endpoint of a buffered FIFO).
    if action.kind is ActionKind.PUT:
        add(Action(ActionKind.GET, action.channel))
    elif action.kind is ActionKind.GET:
        add(Action(ActionKind.PUT, action.channel))
    return dependents


def _channel_action_for(
    ts: TransitionSystem, channel: str, process: str
) -> Action:
    """The action ``process`` would perform on ``channel``."""
    if not ts.is_buffered(channel):
        return Action(ActionKind.RENDEZVOUS, channel)
    producer, = ts.endpoints(Action(ActionKind.PUT, channel))
    if producer == process:
        return Action(ActionKind.PUT, channel)
    return Action(ActionKind.GET, channel)


def _necessary_enabling_set(
    ts: TransitionSystem,
    state: State,
    action: Action,
    closure: set[Action],
) -> list[Action]:
    """Actions, one of which must fire before ``action`` can enable.

    For each failing precondition there is an exact necessary set: a
    misplaced process can only advance through its current action; an
    empty buffer can only fill through its put; a full buffer can only
    drain through its get.  When several preconditions fail, any one
    suffices for soundness — prefer one whose necessary action is already
    in the closure, which keeps stubborn sets small.
    """
    candidates: list[list[Action]] = []
    channel = action.channel
    for process in ts.endpoints(action):
        statement = ts.statement_at(state, process)
        wrong_statement = statement.channel != channel or (
            action.kind is ActionKind.RENDEZVOUS
            and statement.kind
            != ("put" if process == ts.endpoints(action)[0] else "get")
        )
        if wrong_statement:
            candidates.append([ts.current_action(state, process)])
    if action.kind is ActionKind.PUT and ts.occupancy(
        state, channel
    ) >= ts.capacity(channel):
        candidates.append([Action(ActionKind.GET, channel)])
    if action.kind is ActionKind.GET and ts.occupancy(state, channel) == 0:
        candidates.append([Action(ActionKind.PUT, channel)])
    if not candidates:
        # Every precondition holds, i.e. the action is actually enabled;
        # the caller classifies it as such, so this is unreachable — be
        # conservative and return nothing new.
        return []
    for candidate in candidates:
        if all(member in closure for member in candidate):
            return candidate
    return candidates[0]
