"""``repro.verify`` — explicit-state verification of blocking-channel systems.

The third leg of the reproduction's deadlock story.  The TMG liveness
test (:mod:`repro.tmg.deadlock`) is *structural*: exact for pure
rendezvous marked graphs, an abstraction once buffered channels and
initial tokens enter.  The simulator observes *one* schedule.  This
package decides the property **exhaustively**: it enumerates the
reachable states of the exact untimed semantics (per-process statement
index, per-channel occupancy) and either proves deadlock freedom, ships
a replayable counterexample, or says — explicitly — that the budget ran
out.

Typical use::

    from repro.verify import check_deadlock, Verdict

    result = check_deadlock(system, ordering, budget_states=100_000)
    if result.verdict is Verdict.DEADLOCKED:
        print(result.witness.format())

The pieces:

* :mod:`repro.verify.semantics` — the finite transition system;
* :mod:`repro.verify.stubborn` — stubborn-set partial-order reduction
  (sound for deadlock detection without a cycle proviso);
* :mod:`repro.verify.checker` — budgeted BFS, three-valued
  :class:`Verdict`, and the strict :func:`verify_ordering` the DSE
  explorer runs on Algorithm 1's output;
* :mod:`repro.verify.witness` — counterexample decoding and replay.

The CLI front end is ``ermes verify``; the lint integration is the
``ERM5xx`` rule family (``docs/LINT_RULES.md``).  Semantics, the POR
soundness argument, and the witness format are documented in
``docs/VERIFICATION.md``.
"""

from repro.verify.checker import (
    DEFAULT_BUDGET_STATES,
    SMALL_SYSTEM_LIMIT,
    VerificationResult,
    Verdict,
    check_deadlock,
    is_small_system,
    verify_ordering,
)
from repro.verify.semantics import (
    Action,
    ActionKind,
    CommStatement,
    State,
    TransitionSystem,
)
from repro.verify.stubborn import stubborn_set
from repro.verify.witness import (
    DeadlockWitness,
    decode_deadlock,
    replay_schedule,
    replay_witness,
)

__all__ = [
    "Action",
    "ActionKind",
    "CommStatement",
    "DEFAULT_BUDGET_STATES",
    "DeadlockWitness",
    "SMALL_SYSTEM_LIMIT",
    "State",
    "TransitionSystem",
    "VerificationResult",
    "Verdict",
    "check_deadlock",
    "decode_deadlock",
    "is_small_system",
    "replay_schedule",
    "replay_witness",
    "stubborn_set",
    "verify_ordering",
]
