"""Timed Marked Graphs (Definition 1 of the paper).

A timed marked graph (TMG) is a Petri-net subclass
``G = (P, T, F, d, M0)`` where every place has exactly one producing and
one consuming transition.  This restriction makes the reachable behaviour
deterministic and the steady-state throughput computable in polynomial time
(Section 3), which is why the paper adopts it as its performance model.

The class below enforces the structural restriction *by construction*:
places are created with their unique producer and consumer, so ``F`` never
needs repairing after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import ValidationError


@dataclass(frozen=True)
class Transition:
    """A transition with its firing delay ``d(t)`` in clock cycles."""

    name: str
    delay: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("transition name must be non-empty")
        if self.delay < 0:
            raise ValidationError(
                f"transition {self.name!r}: delay must be >= 0, got {self.delay}"
            )


@dataclass(frozen=True)
class Place:
    """A place with its unique producer/consumer transitions and marking."""

    name: str
    source: str
    target: str
    tokens: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("place name must be non-empty")
        if self.tokens < 0:
            raise ValidationError(
                f"place {self.name!r}: tokens must be >= 0, got {self.tokens}"
            )


class TimedMarkedGraph:
    """A timed marked graph with mutable marking.

    The structure (places, transitions, arcs, delays) is fixed once built;
    the marking evolves through :meth:`fire`.  ``initial_marking`` is
    retained so analyses always refer to ``M0`` regardless of any token
    game played on the instance, and :meth:`reset` restores it.
    """

    def __init__(self, name: str = "tmg"):
        self.name = name
        self._transitions: dict[str, Transition] = {}
        self._places: dict[str, Place] = {}
        self._outputs: dict[str, list[str]] = {}  # transition -> place names
        self._inputs: dict[str, list[str]] = {}  # transition -> place names
        self._marking: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_transition(self, name: str, delay: int = 0) -> Transition:
        """Add a transition; names are unique across places and transitions
        (Definition 1 requires ``P ∩ T = ∅``)."""
        if name in self._transitions or name in self._places:
            raise ValidationError(f"duplicate element name {name!r}")
        transition = Transition(name, delay)
        self._transitions[name] = transition
        self._outputs[name] = []
        self._inputs[name] = []
        return transition

    def add_place(
        self, name: str, source: str, target: str, tokens: int = 0
    ) -> Place:
        """Add a place from transition ``source`` to transition ``target``
        holding ``tokens`` initial tokens."""
        if name in self._transitions or name in self._places:
            raise ValidationError(f"duplicate element name {name!r}")
        for endpoint in (source, target):
            if endpoint not in self._transitions:
                raise ValidationError(
                    f"place {name!r} references unknown transition {endpoint!r}"
                )
        place = Place(name, source, target, tokens)
        self._places[name] = place
        self._outputs[source].append(name)
        self._inputs[target].append(name)
        self._marking[name] = tokens
        return place

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def transition(self, name: str) -> Transition:
        try:
            return self._transitions[name]
        except KeyError:
            raise ValidationError(f"unknown transition {name!r}") from None

    def place(self, name: str) -> Place:
        try:
            return self._places[name]
        except KeyError:
            raise ValidationError(f"unknown place {name!r}") from None

    @property
    def transitions(self) -> tuple[Transition, ...]:
        return tuple(self._transitions.values())

    @property
    def places(self) -> tuple[Place, ...]:
        return tuple(self._places.values())

    @property
    def transition_names(self) -> tuple[str, ...]:
        return tuple(self._transitions)

    @property
    def place_names(self) -> tuple[str, ...]:
        return tuple(self._places)

    def delay(self, transition: str) -> int:
        return self.transition(transition).delay

    def input_places(self, transition: str) -> tuple[str, ...]:
        self.transition(transition)
        return tuple(self._inputs[transition])

    def output_places(self, transition: str) -> tuple[str, ...]:
        self.transition(transition)
        return tuple(self._outputs[transition])

    # ------------------------------------------------------------------
    # Marking and the token game
    # ------------------------------------------------------------------

    @property
    def marking(self) -> Mapping[str, int]:
        """The current marking (place name -> token count)."""
        return dict(self._marking)

    def initial_marking(self) -> dict[str, int]:
        """``M0``: the marking the graph was built with."""
        return {p.name: p.tokens for p in self._places.values()}

    def tokens(self, place: str) -> int:
        self.place(place)
        return self._marking[place]

    def set_marking(self, marking: Mapping[str, int]) -> None:
        """Overwrite the current marking (places absent from ``marking``
        keep their current count)."""
        for name, count in marking.items():
            self.place(name)
            if count < 0:
                raise ValidationError(
                    f"marking for {name!r} must be >= 0, got {count}"
                )
            self._marking[name] = count

    def reset(self) -> None:
        """Restore the initial marking ``M0``."""
        self._marking = {p.name: p.tokens for p in self._places.values()}

    def is_enabled(self, transition: str) -> bool:
        """A transition is enabled when every input place holds a token."""
        return all(self._marking[p] >= 1 for p in self.input_places(transition))

    def enabled_transitions(self) -> tuple[str, ...]:
        return tuple(t for t in self._transitions if self.is_enabled(t))

    def fire(self, transition: str) -> None:
        """Fire an enabled transition: take one token from each input place,
        put one into each output place."""
        if not self.is_enabled(transition):
            raise ValidationError(
                f"transition {transition!r} is not enabled in the current marking"
            )
        for p in self._inputs[transition]:
            self._marking[p] -= 1
        for p in self._outputs[transition]:
            self._marking[p] += 1

    def total_tokens(self, places: Iterable[str] | None = None) -> int:
        """Token count over ``places`` (default: the whole marking)."""
        if places is None:
            return sum(self._marking.values())
        return sum(self._marking[self.place(p).name] for p in places)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check Definition 1's structural requirements.

        Construction already guarantees each place has exactly one producer
        and one consumer; this additionally rejects empty graphs and
        transitions with no connected place (which can never fire or be
        observed and indicate a modelling bug).
        """
        if not self._transitions:
            raise ValidationError(f"TMG {self.name!r} has no transitions")
        for name in self._transitions:
            if not self._inputs[name] and not self._outputs[name]:
                raise ValidationError(
                    f"transition {name!r} is disconnected (no places)"
                )

    def cycles(self) -> Iterator[list[str]]:
        """Yield elementary cycles as alternating transition/place name
        lists, starting at a transition.  Exponential; small graphs only.

        Parallel places between the same pair of transitions are collapsed
        to the one with the fewest tokens — the binding one for both cycle
        time (maximum delay/token ratio) and deadlock detection.
        """
        import networkx as nx

        graph = nx.DiGraph()
        for place in self._places.values():
            edge = graph.edges.get((place.source, place.target))
            if edge is not None and self._places[edge["place"]].tokens <= place.tokens:
                continue
            graph.add_edge(place.source, place.target, place=place.name)
        for cycle in nx.simple_cycles(graph):
            expanded: list[str] = []
            n = len(cycle)
            for i, u in enumerate(cycle):
                v = cycle[(i + 1) % n]
                expanded.append(u)
                expanded.append(graph.edges[u, v]["place"])
            yield expanded

    def __repr__(self) -> str:
        return (
            f"TimedMarkedGraph({self.name!r}, transitions={len(self._transitions)}, "
            f"places={len(self._places)}, tokens={sum(self._marking.values())})"
        )
