"""Howard's policy-iteration algorithm for the maximum cycle ratio.

The paper computes the cycle time ``π(G)`` — the reciprocal of the minimum
cycle mean of Definition 3 — with Howard's algorithm
[Cochet-Terrasson et al. 1998], a policy-iteration scheme from the
stochastic-control community that is, in practice, the fastest known
minimum/maximum cycle ratio algorithm (Dasdan–Irani–Gupta).

On the event graph (see :mod:`repro.tmg.event_graph`) the cycle time is the
*maximum* ratio ``Σ delay / Σ tokens`` over cycles.  This module implements
maximum-cycle-ratio policy iteration directly:

* a *policy* selects one outgoing edge per node of a strongly connected
  component;
* *evaluation* finds the cycles of the policy's functional graph, giving
  each node the ratio ``λ`` of the cycle it reaches and a potential ``v``
  measuring its transient offset;
* *improvement* switches a node's policy edge whenever a neighbour promises
  a larger ``λ`` or, at equal ``λ``, a larger potential.

With exact rational arithmetic (``fractions.Fraction``) the result is the
exact cycle ratio; float mode trades exactness for speed on graphs with
tens of thousands of nodes.

Precondition: the graph has no token-free cycle (checked by callers via
:mod:`repro.tmg.deadlock`); otherwise the ratio is unbounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union

from repro.errors import NotLiveError, ReproError
from repro.tmg.event_graph import Edge, EventGraph, strongly_connected_components

Number = Union[Fraction, float]

_FLOAT_TOL = 1e-9


@dataclass(frozen=True)
class CycleRatioResult:
    """Outcome of a maximum-cycle-ratio computation.

    Attributes:
        ratio: ``max_c Σdelay(c)/Σtokens(c)``; the system cycle time when
            the graph models a live TMG.
        cycle: Transition names around one critical cycle, in order.
        places: Names of the contracted places along that cycle (one per
            edge), in the same order.
    """

    ratio: Number
    cycle: tuple[str, ...]
    places: tuple[str, ...]


def maximum_cycle_ratio(
    graph: EventGraph, exact: bool = True
) -> CycleRatioResult | None:
    """Maximum cycle ratio of an event graph via Howard policy iteration.

    Args:
        graph: The event graph (delays on edges toward their target
            transition, tokens from the contracted place).
        exact: Use :class:`fractions.Fraction` arithmetic.  Float mode is
            roughly 3-5x faster and adequate for large synthetic graphs.

    Returns:
        The best :class:`CycleRatioResult` over all strongly connected
        components, or ``None`` if the graph is acyclic (no steady-state
        constraint).

    Raises:
        NotLiveError: If a reachable cycle carries zero tokens.
    """
    best: CycleRatioResult | None = None
    for component in strongly_connected_components(graph):
        members = set(component)
        succ = {
            u: [e for e in graph.succ[u] if e.target in members] for u in component
        }
        if len(component) == 1 and not succ[component[0]]:
            continue  # trivial SCC: no cycle through it
        result = _howard_scc(component, succ, exact)
        if best is None or result.ratio > best.ratio:
            best = result
    return best


def maximum_cycle_ratio_screened(graph: EventGraph) -> CycleRatioResult | None:
    """Float-first screening with exact verification.

    Runs Howard in float arithmetic (fast), lifts the ratio of the critical
    cycle it reports back to an exact :class:`~fractions.Fraction`, and then
    certifies optimality with one exact Bellman–Ford pass: if no cycle has
    a positive weight under the reweighting ``d − λ·m``, that exact ratio
    *is* the maximum.  Should the float screen have missed the true critical
    cycle (a near-tie inside its tolerance), the exact cycle-ratio-iteration
    completion takes over and converges to the exact optimum anyway.

    The result is therefore always exact — identical in value to
    ``maximum_cycle_ratio(graph, exact=True)`` — while the bulk of the work
    runs in float.  Only the reported critical *cycle* may differ when
    several distinct cycles share the maximal ratio (any returned cycle is
    certified to attain it).

    Raises:
        NotLiveError: If a reachable cycle carries zero tokens.
    """
    screen = maximum_cycle_ratio(graph, exact=False)
    if screen is None:
        return None
    by_place = {edge.place: edge for edge in graph.edges}
    edges = [by_place[place] for place in screen.places]
    delay_sum = sum(edge.delay for edge in edges)
    token_sum = sum(edge.tokens for edge in edges)
    if token_sum == 0:
        raise NotLiveError(
            "event graph has a token-free cycle through "
            + " -> ".join(screen.cycle),
            cycle=list(screen.cycle),
        )
    ratio = Fraction(delay_sum, token_sum)
    nodes = list(graph.nodes)
    witness = _find_positive_cycle(nodes, graph.succ, ratio, exact=True)
    if witness is None:
        return CycleRatioResult(
            ratio=ratio, cycle=screen.cycle, places=screen.places
        )
    return _ratio_iteration_completion(
        nodes,
        graph.succ,
        ratio,
        (list(screen.cycle), list(screen.places)),
        exact=True,
    )


def _howard_scc(
    nodes: list[str], succ: dict[str, list[Edge]], exact: bool
) -> CycleRatioResult:
    """Run policy iteration within one SCC (every node has an out-edge).

    Policy iteration's potential-improvement step compares potentials that
    are only anchored *per policy cycle*; when the policy graph carries two
    or more equal-ratio cycles, those comparisons can flip-flop the policy
    forever without changing the (already maximal) ratio.  The loop
    therefore watches for stagnation — potential-only switches that stop
    raising the best ratio — and completes with the provably terminating
    cycle-ratio iteration: repeatedly look for a positive cycle under the
    reweighting ``d − λ·m`` (Bellman–Ford) and, if one exists, adopt its
    strictly larger ratio.  No positive cycle certifies optimality.
    """
    zero: Number = Fraction(0) if exact else 0.0
    tol: Number = Fraction(0) if exact else _FLOAT_TOL

    policy: dict[str, Edge] = {u: succ[u][0] for u in nodes}
    max_iterations = 10 * len(nodes) + 1000
    stagnation_limit = len(nodes) + 8

    best_cycle: tuple[list[str], list[str]] = ([], [])
    best_ratio: Number = zero
    have_best = False
    stagnant = 0
    clean_convergence = False

    for _ in range(max_iterations):
        lam, pot, cycles = _evaluate_policy(nodes, policy, exact)
        round_ratio, round_cycle = max(
            ((ratio, cyc) for ratio, cyc in cycles), key=lambda item: item[0]
        )
        if not have_best or round_ratio > best_ratio:
            best_ratio, best_cycle = round_ratio, round_cycle
            have_best = True
            stagnant = 0

        improved = False
        # First criterion: chase a strictly better cycle ratio.
        for u in nodes:
            for edge in succ[u]:
                if lam[edge.target] > lam[u] + tol:
                    policy[u] = edge
                    lam[u] = lam[edge.target]
                    improved = True
        if improved:
            stagnant = 0
            continue
        # Second criterion: same ratio, better potential.
        for u in nodes:
            for edge in succ[u]:
                if lam[edge.target] != lam[u]:
                    continue
                candidate = (
                    pot[edge.target] + edge.delay - lam[u] * edge.tokens
                )
                if candidate > pot[u] + tol:
                    policy[u] = edge
                    pot[u] = candidate
                    improved = True
        if not improved:
            clean_convergence = True
            break
        stagnant += 1
        if stagnant > stagnation_limit:
            break

    if not have_best:
        raise ReproError(
            "Howard policy iteration produced no cycle "
            f"(SCC of {len(nodes)} nodes)"
        )
    if clean_convergence:
        return CycleRatioResult(
            ratio=best_ratio,
            cycle=tuple(best_cycle[0]),
            places=tuple(best_cycle[1]),
        )
    return _ratio_iteration_completion(
        nodes, succ, best_ratio, best_cycle, exact
    )


def _ratio_iteration_completion(
    nodes: list[str],
    succ: dict[str, list[Edge]],
    ratio: Number,
    cycle: tuple[list[str], list[str]],
    exact: bool,
) -> CycleRatioResult:
    """Exact completion: raise ``ratio`` through positive cycles until none
    remains.  Each found cycle has a strictly larger ratio and ratios come
    from the finite set of simple-cycle ratios, so this terminates."""
    while True:
        found = _find_positive_cycle(nodes, succ, ratio, exact)
        if found is None:
            return CycleRatioResult(
                ratio=ratio, cycle=tuple(cycle[0]), places=tuple(cycle[1])
            )
        delay_sum = sum(e.delay for e in found)
        token_sum = sum(e.tokens for e in found)
        if token_sum == 0:
            raise NotLiveError(
                "event graph has a token-free cycle through "
                + " -> ".join(e.source for e in found),
                cycle=[e.source for e in found],
            )
        ratio = (
            Fraction(delay_sum, token_sum) if exact else delay_sum / token_sum
        )
        cycle = ([e.source for e in found], [e.place for e in found])


def _find_positive_cycle(
    nodes: list[str],
    succ: dict[str, list[Edge]],
    lam: Number,
    exact: bool,
) -> list[Edge] | None:
    """A cycle with ``Σ(delay − λ·tokens) > 0``, or ``None``.

    Longest-path Bellman–Ford from an implicit all-zeros source with early
    exit; when relaxation survives ``|V|`` rounds, the predecessor graph
    contains the witness cycle.
    """
    zero: Number = Fraction(0) if exact else 0.0
    tol = 0 if exact else _FLOAT_TOL
    dist: dict[str, Number] = {u: zero for u in nodes}
    pred: dict[str, Edge] = {}
    member = set(nodes)

    last_changed: str | None = None
    for _ in range(len(nodes)):
        changed = False
        for u in nodes:
            base = dist[u]
            for edge in succ[u]:
                if edge.target not in member:
                    continue
                candidate = base + edge.delay - lam * edge.tokens
                if candidate > dist[edge.target] + tol:
                    dist[edge.target] = candidate
                    pred[edge.target] = edge
                    changed = True
                    last_changed = edge.target
        if not changed:
            return None

    # Still relaxing after |V| rounds: walk back to land on the cycle.
    assert last_changed is not None
    node = last_changed
    for _ in range(len(nodes)):
        node = pred[node].source
    cycle_edges: list[Edge] = []
    cursor = node
    while True:
        edge = pred[cursor]
        cycle_edges.append(edge)
        cursor = edge.source
        if cursor == node:
            break
    cycle_edges.reverse()
    return cycle_edges


def _evaluate_policy(
    nodes: list[str], policy: dict[str, Edge], exact: bool
) -> tuple[
    dict[str, Number],
    dict[str, Number],
    list[tuple[Number, tuple[list[str], list[str]]]],
]:
    """Evaluate a policy: per-node cycle ratio ``λ`` and potential ``v``.

    The policy's functional graph decomposes into cycles with in-trees
    hanging off them.  Every node inherits the ratio of the cycle its
    policy path reaches; potentials satisfy
    ``v[u] = v[succ] + delay - λ·tokens`` with one node per cycle pinned
    to 0.
    """
    lam: dict[str, Number] = {}
    pot: dict[str, Number] = {}
    cycles: list[tuple[Number, tuple[list[str], list[str]]]] = []

    state: dict[str, int] = {}  # 0/absent = unvisited, 1 = on path, 2 = done

    for root in nodes:
        if state.get(root) == 2:
            continue
        # Walk the policy path until we hit a finished node or close a cycle.
        path: list[str] = []
        node = root
        while state.get(node) is None:
            state[node] = 1
            path.append(node)
            node = policy[node].target
        if state[node] == 1:
            # Closed a new cycle at `node`: evaluate it.
            start = path.index(node)
            cycle_nodes = path[start:]
            delay_sum = 0
            token_sum = 0
            cycle_places = []
            for u in cycle_nodes:
                edge = policy[u]
                delay_sum += edge.delay
                token_sum += edge.tokens
                cycle_places.append(edge.place)
            if token_sum == 0:
                raise NotLiveError(
                    "event graph has a token-free cycle through "
                    + " -> ".join(cycle_nodes),
                    cycle=cycle_nodes,
                )
            ratio: Number
            if exact:
                ratio = Fraction(delay_sum, token_sum)
            else:
                ratio = delay_sum / token_sum
            cycles.append((ratio, (cycle_nodes, cycle_places)))
            # Pin the closing node, then propagate potentials backward
            # around the cycle.
            anchor = cycle_nodes[0]
            lam[anchor] = ratio
            pot[anchor] = Fraction(0) if exact else 0.0
            for u in reversed(cycle_nodes[1:]):
                edge = policy[u]
                lam[u] = ratio
                pot[u] = pot[edge.target] + edge.delay - ratio * edge.tokens
            for u in cycle_nodes:
                state[u] = 2
        # Resolve the remaining path (tree part) in reverse order.
        for u in reversed(path):
            if state[u] == 2:
                continue
            edge = policy[u]
            lam[u] = lam[edge.target]
            pot[u] = pot[edge.target] + edge.delay - lam[u] * edge.tokens
            state[u] = 2

    return lam, pot, cycles
