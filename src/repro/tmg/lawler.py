"""Lawler's parametric search for the maximum cycle ratio.

An independent oracle for :mod:`repro.tmg.howard`, following the classic
reduction: a cycle with ratio ``Σdelay/Σtokens > λ`` exists iff the graph
re-weighted with ``w_e = delay_e − λ·tokens_e`` contains a positive-weight
cycle, detectable with Bellman–Ford.  Binary search on ``λ`` then brackets
the maximum ratio.

Because all delays and token counts are integers, the optimum is a rational
``p/q`` with ``q ≤ Σ tokens``; searching to a resolution finer than
``1/q_max²`` and snapping to the nearest fraction with bounded denominator
recovers the exact value.  The implementation defaults to a float tolerance
adequate for testing; exact snapping is available via ``exact=True``.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import NotLiveError
from repro.tmg.deadlock import find_token_free_cycle
from repro.tmg.event_graph import EventGraph


def _has_positive_cycle(graph: EventGraph, lam: float) -> bool:
    """Bellman–Ford: does any cycle have ``Σ(delay − λ·tokens) > 0``?

    Works on the longest-path variant: relax ``dist[v] = max(dist[v],
    dist[u] + w)``; an n-th relaxation round that still improves implies a
    positive cycle.  All nodes start at 0 (equivalent to a virtual source),
    so cycles anywhere in the graph are found.
    """
    nodes = graph.nodes
    dist = {u: 0.0 for u in nodes}
    for round_index in range(len(nodes)):
        changed = False
        for u in nodes:
            base = dist[u]
            for edge in graph.succ[u]:
                candidate = base + edge.delay - lam * edge.tokens
                if candidate > dist[edge.target] + 1e-12:
                    dist[edge.target] = candidate
                    changed = True
        if not changed:
            return False
    return True


def maximum_cycle_ratio_lawler(
    graph: EventGraph,
    exact: bool = False,
    tolerance: float = 1e-9,
) -> Fraction | float | None:
    """Maximum cycle ratio by parametric binary search.

    Returns ``None`` for acyclic graphs, raises
    :class:`~repro.errors.NotLiveError` when a token-free cycle exists
    (the ratio would be unbounded).

    Args:
        graph: Event graph to analyze.
        exact: Snap the result to the exact rational value (requires the
            true denominator to be at most the total token count, which
            always holds).
        tolerance: Bracket width at which the binary search stops.
    """
    cycle = find_token_free_cycle(graph)
    if cycle is not None:
        raise NotLiveError(
            "event graph has a token-free cycle through " + " -> ".join(cycle),
            cycle=cycle,
        )
    edges = graph.edges
    if not edges:
        return None

    # Any cycle ratio is at most Σdelay / 1 and at least 0.
    upper = float(sum(max(e.delay, 0) for e in edges)) + 1.0
    lower = 0.0
    if not _has_positive_cycle(graph, lower):
        # No cycle with positive delay at λ=0 means either no cycle at all
        # or only zero-delay cycles; both yield ratio 0 if a cycle exists.
        return _ratio_zero_or_none(graph, exact)

    while upper - lower > tolerance:
        mid = (lower + upper) / 2.0
        if _has_positive_cycle(graph, mid):
            lower = mid
        else:
            upper = mid

    estimate = (lower + upper) / 2.0
    if not exact:
        return estimate
    max_denominator = max(1, sum(max(e.tokens, 0) for e in edges))
    return Fraction(estimate).limit_denominator(max_denominator)


def _ratio_zero_or_none(graph: EventGraph, exact: bool) -> Fraction | float | None:
    """Distinguish 'graph is acyclic' (None) from 'best cycle ratio is 0'."""
    # Cycle detection over all edges (tokens already known non-zero-cycle).
    seen: set[str] = set()
    done: set[str] = set()
    for root in graph.nodes:
        if root in done:
            continue
        stack: list[tuple[str, int]] = [(root, 0)]
        seen.add(root)
        path = {root}
        while stack:
            node, i = stack[-1]
            succ = graph.succ[node]
            if i < len(succ):
                stack[-1] = (node, i + 1)
                child = succ[i].target
                if child in path:
                    return Fraction(0) if exact else 0.0
                if child not in done:
                    seen.add(child)
                    path.add(child)
                    stack.append((child, 0))
            else:
                stack.pop()
                path.discard(node)
                done.add(node)
    return None
