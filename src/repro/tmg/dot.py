"""Graphviz DOT export for Timed Marked Graphs.

Renders the bipartite place/transition structure the way Fig. 3 draws it:
transitions as bars annotated with their delays, places as circles with
their token counts, optional highlighting of a critical cycle.
"""

from __future__ import annotations

from typing import Iterable

from repro.tmg.graph import TimedMarkedGraph


def _quote(name: str) -> str:
    return '"' + name.replace('"', '\\"') + '"'


def tmg_to_dot(
    tmg: TimedMarkedGraph,
    highlight_transitions: Iterable[str] = (),
    highlight_places: Iterable[str] = (),
    show_zero_tokens: bool = True,
) -> str:
    """Render a TMG as a DOT digraph.

    Args:
        tmg: The graph to render (current marking shown on places).
        highlight_transitions: Transition names drawn in red (e.g. a
            critical cycle from the analysis report).
        highlight_places: Place names drawn in red (e.g.
            ``report.critical_places``).
        show_zero_tokens: Label empty places with "0" (else leave blank).
    """
    hot_t = set(highlight_transitions)
    hot_p = set(highlight_places)
    lines = [f"digraph {_quote(tmg.name)} {{", "  rankdir=LR;"]

    for transition in tmg.transitions:
        attrs = [
            "shape=box",
            "height=0.15",
            "style=filled",
            'fillcolor="#333333"',
            'fontcolor=white',
            f'label="{transition.name}\\nd={transition.delay}"',
        ]
        if transition.name in hot_t:
            attrs.append('color="red"')
            attrs.append("penwidth=2.5")
        lines.append(f"  {_quote(transition.name)} [{', '.join(attrs)}];")

    marking = tmg.marking
    for place in tmg.places:
        tokens = marking[place.name]
        label = place.name
        if tokens or show_zero_tokens:
            label += f"\\n● {tokens}" if tokens else "\\n0"
        attrs = ["shape=circle", f'label="{label}"']
        if place.name in hot_p:
            attrs.append('color="red"')
            attrs.append("penwidth=2.5")
        lines.append(f"  {_quote(place.name)} [{', '.join(attrs)}];")
        lines.append(
            f"  {_quote(place.source)} -> {_quote(place.name)};"
        )
        lines.append(
            f"  {_quote(place.name)} -> {_quote(place.target)};"
        )

    lines.append("}")
    return "\n".join(lines) + "\n"
