"""System-level performance analysis of Timed Marked Graphs (Section 3).

The façade :func:`analyze` ties the pieces together: liveness check,
maximum-cycle-ratio computation with the selected engine, and a
:class:`PerformanceReport` carrying the quantities the methodology consumes
— cycle time, throughput, and the critical cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Union

from repro.errors import NotLiveError, ReproError
from repro.tmg.deadlock import find_token_free_cycle
from repro.tmg.enumeration import maximum_cycle_ratio_enumerated
from repro.tmg.event_graph import EventGraph, build_event_graph
from repro.tmg.graph import TimedMarkedGraph
from repro.tmg.howard import maximum_cycle_ratio, maximum_cycle_ratio_screened
from repro.tmg.lawler import maximum_cycle_ratio_lawler

Number = Union[Fraction, float]


class Engine(enum.Enum):
    """Available cycle-time engines.

    ``HOWARD`` is the paper's choice (polynomial, fast in practice).
    ``LAWLER`` is a parametric binary search, ``ENUMERATION`` the exact
    brute force; both serve as independent oracles.
    """

    HOWARD = "howard"
    LAWLER = "lawler"
    ENUMERATION = "enumeration"


@dataclass(frozen=True)
class PerformanceReport:
    """Result of analyzing one TMG.

    Attributes:
        cycle_time: ``π(G)`` — the average separation between consecutive
            firings of any transition in steady state (Definition 2); the
            reciprocal of the system throughput.
        critical_cycle: Transition names around one critical cycle (a cycle
            whose mean equals the minimum — the throughput bottleneck).
        critical_places: The places along the critical cycle (one per
            step); useful to map the bottleneck back to processes/channels.
        engine: Which engine produced the numbers.
    """

    cycle_time: Number
    critical_cycle: tuple[str, ...]
    critical_places: tuple[str, ...]
    engine: Engine

    @property
    def throughput(self) -> Number:
        """Tokens processed per cycle: ``1 / π(G)``."""
        if self.cycle_time == 0:
            raise ReproError("cycle time is zero; throughput undefined")
        if isinstance(self.cycle_time, Fraction):
            return 1 / self.cycle_time
        return 1.0 / self.cycle_time


def is_deadlocked(tmg: TimedMarkedGraph) -> bool:
    """True iff the TMG has a token-free cycle (infinite cycle time)."""
    return find_token_free_cycle(build_event_graph(tmg)) is not None


def deadlock_witness(tmg: TimedMarkedGraph) -> list[str] | None:
    """A token-free cycle as transition names, or ``None`` if live."""
    return find_token_free_cycle(build_event_graph(tmg))


def analyze(
    tmg: TimedMarkedGraph,
    engine: Engine | str = Engine.HOWARD,
    exact: bool = True,
    float_screen: bool = False,
) -> PerformanceReport:
    """Compute cycle time and critical cycle of a live TMG.

    Args:
        tmg: The timed marked graph (analyzed under its *initial* marking).
        engine: Cycle-time engine; see :class:`Engine`.
        exact: Exact rational arithmetic (Howard/enumeration are exact by
            construction in this mode; Lawler snaps to the nearest valid
            rational).
        float_screen: With ``engine=HOWARD`` and ``exact=True``, screen in
            float arithmetic and re-verify only the winning cycle exactly
            (see :func:`repro.tmg.howard.maximum_cycle_ratio_screened`).
            The cycle time stays exact; only the choice among equally
            critical cycles may differ.

    Raises:
        NotLiveError: The TMG has a token-free cycle (deadlock).
        ReproError: The TMG is acyclic, which cannot arise from the
            Section 3 construction and indicates a malformed model.
    """
    return analyze_event_graph(
        build_event_graph(tmg),
        engine=engine,
        exact=exact,
        float_screen=float_screen,
        name=tmg.name,
    )


def analyze_event_graph(
    graph: EventGraph,
    engine: Engine | str = Engine.HOWARD,
    exact: bool = True,
    float_screen: bool = False,
    name: str = "tmg",
    check_live: bool = True,
) -> PerformanceReport:
    """:func:`analyze` on an already-contracted event graph.

    This is the entry point of the incremental analysis path
    (:mod:`repro.perf`): liveness depends only on the graph structure and
    marking, never on delays, so a caller that patches edge delays between
    calls can skip the token-free-cycle scan with ``check_live=False``
    after establishing it once.
    """
    engine = Engine(engine)

    if check_live:
        cycle = find_token_free_cycle(graph)
        if cycle is not None:
            raise NotLiveError(
                f"TMG {name!r} is not live: token-free cycle through "
                + " -> ".join(cycle),
                cycle=cycle,
            )

    if engine is Engine.HOWARD:
        if exact and float_screen:
            result = maximum_cycle_ratio_screened(graph)
        else:
            result = maximum_cycle_ratio(graph, exact=exact)
        if result is None:
            raise ReproError(f"TMG {name!r} has no cycles; cycle time undefined")
        return PerformanceReport(
            cycle_time=result.ratio,
            critical_cycle=result.cycle,
            critical_places=result.places,
            engine=engine,
        )
    if engine is Engine.LAWLER:
        ratio = maximum_cycle_ratio_lawler(graph, exact=exact)
        if ratio is None:
            raise ReproError(f"TMG {name!r} has no cycles; cycle time undefined")
        return PerformanceReport(
            cycle_time=ratio,
            critical_cycle=(),
            critical_places=(),
            engine=engine,
        )
    best = maximum_cycle_ratio_enumerated(graph)
    if best is None:
        raise ReproError(f"TMG {name!r} has no cycles; cycle time undefined")
    ratio, witness = best
    return PerformanceReport(
        cycle_time=ratio if exact else float(ratio),
        critical_cycle=witness.nodes,
        critical_places=witness.places,
        engine=engine,
    )


def cycle_time(
    tmg: TimedMarkedGraph,
    engine: Engine | str = Engine.HOWARD,
    exact: bool = True,
) -> Number:
    """Shorthand for ``analyze(...).cycle_time``."""
    return analyze(tmg, engine=engine, exact=exact).cycle_time
