"""Brute-force cycle-time computation by elementary-cycle enumeration.

Definition 3 computes the cycle time as the maximum, over all elementary
cycles, of ``Σ delay / Σ tokens``.  The paper dismisses direct enumeration
as impractical — the number of elementary cycles can be exponential — but
for small graphs it is the most trustworthy oracle, so the test suite uses
it to validate Howard's algorithm and Lawler's search.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator

import networkx as nx

from repro.errors import NotLiveError
from repro.tmg.event_graph import EventGraph


@dataclass(frozen=True)
class EnumeratedCycle:
    """One elementary cycle with its aggregate weights."""

    nodes: tuple[str, ...]
    places: tuple[str, ...]
    delay: int
    tokens: int

    @property
    def ratio(self) -> Fraction | None:
        """``Σdelay/Σtokens``, or ``None`` for a token-free cycle."""
        if self.tokens == 0:
            return None
        return Fraction(self.delay, self.tokens)


def enumerate_cycles(graph: EventGraph) -> Iterator[EnumeratedCycle]:
    """Yield every elementary cycle of the event graph.

    Exponential in the worst case; intended for graphs with at most a few
    dozen nodes (test oracles, teaching examples).
    """
    nxg = nx.DiGraph()
    for edge in graph.edges:
        nxg.add_edge(
            edge.source,
            edge.target,
            delay=edge.delay,
            tokens=edge.tokens,
            place=edge.place,
        )
    for cycle in nx.simple_cycles(nxg):
        delay = 0
        tokens = 0
        places = []
        n = len(cycle)
        for i, u in enumerate(cycle):
            v = cycle[(i + 1) % n]
            data = nxg.edges[u, v]
            delay += data["delay"]
            tokens += data["tokens"]
            places.append(data["place"])
        yield EnumeratedCycle(
            nodes=tuple(cycle), places=tuple(places), delay=delay, tokens=tokens
        )


def maximum_cycle_ratio_enumerated(
    graph: EventGraph,
) -> tuple[Fraction, EnumeratedCycle] | None:
    """Exact maximum cycle ratio by full enumeration.

    Returns ``(ratio, witness cycle)`` or ``None`` for acyclic graphs;
    raises :class:`~repro.errors.NotLiveError` on a token-free cycle.
    """
    best: tuple[Fraction, EnumeratedCycle] | None = None
    for cycle in enumerate_cycles(graph):
        ratio = cycle.ratio
        if ratio is None:
            raise NotLiveError(
                "event graph has a token-free cycle through "
                + " -> ".join(cycle.nodes),
                cycle=list(cycle.nodes),
            )
        if best is None or ratio > best[0]:
            best = (ratio, cycle)
    return best
