"""The timed token game: executing a TMG and measuring its cycle time.

Besides the analytic cycle-time computation (Howard), the TMG can simply be
*executed*.  Under the earliest-firing rule every transition fires as soon
as all its input tokens are available; for a strongly connected TMG the
k-th firing time of any transition grows asymptotically as ``π(G)·k``
(max-plus linear systems enter a periodic regime).  Executing a few hundred
iterations therefore provides an independent, simulation-style estimate of
the cycle time — exactly the "time-consuming simulation" the paper's
analytic model replaces, kept here as a cross-check oracle.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from fractions import Fraction

from repro.errors import ReproError
from repro.tmg.graph import TimedMarkedGraph


@dataclass
class FiringRecord:
    """Firing times of one transition under the earliest-firing rule."""

    transition: str
    start_times: list[int] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.start_times)


def earliest_firing_times(
    tmg: TimedMarkedGraph, iterations: int
) -> dict[str, FiringRecord]:
    """Compute the first ``iterations`` firing start times of every
    transition under the earliest-firing (ASAP) semantics.

    Uses the standard max-plus recurrence: the k-th firing of ``t`` starts
    when, for every input place ``p`` (produced by ``u`` with marking
    ``M0(p)``), the ``(k − M0(p))``-th completion of ``u`` has occurred
    (firings with ``k ≤ M0(p)`` are covered by initial tokens, available at
    time 0).

    Implementation: event-driven propagation with a priority queue of
    token-arrival events, linear in (iterations × places).
    """
    if iterations < 1:
        raise ReproError("iterations must be >= 1")

    # tokens_available[p] counts tokens present; arrival_times[p] is a FIFO
    # of the times at which those tokens became available.
    arrival_times: dict[str, list[int]] = {}
    for place in tmg.places:
        arrival_times[place.name] = [0] * place.tokens

    fired: dict[str, int] = {t.name: 0 for t in tmg.transitions}
    records = {t.name: FiringRecord(t.name) for t in tmg.transitions}

    # Priority queue of candidate firings (time, transition), deduplicated
    # per (transition, firing index, time): the readiness time of a fixed
    # firing index only grows as more input tokens arrive, so remembering
    # the last push suffices to avoid re-queueing identical events.
    ready: list[tuple[int, str]] = []
    last_push: dict[str, tuple[int, int]] = {}

    def readiness(name: str, k: int) -> int | None:
        """Earliest start of the k-th firing, or None if tokens missing."""
        start = 0
        for p in tmg.input_places(name):
            times = arrival_times[p]
            if len(times) <= k:
                return None
            start = max(start, times[k])
        return start

    def try_schedule(name: str) -> None:
        k = fired[name]
        if k >= iterations:
            return
        start = readiness(name, k)
        if start is None:
            return
        if last_push.get(name) == (k, start):
            return
        last_push[name] = (k, start)
        heapq.heappush(ready, (start, name))

    for t in tmg.transitions:
        try_schedule(t.name)

    completed = 0
    target = iterations * len(tmg.transitions)
    guard = 0
    # Distinct (transition, index, readiness) pushes are bounded by the
    # token traffic; quadruple it for headroom.
    guard_limit = (
        4 * iterations * (len(tmg.places) + 2 * len(tmg.transitions)) + 64
    )
    while ready and completed < target:
        guard += 1
        if guard > guard_limit:
            raise ReproError("earliest-firing execution exceeded its event budget")
        start, name = heapq.heappop(ready)
        k = fired[name]
        if k >= iterations:
            continue
        actual = readiness(name, k)
        if actual is None:
            continue  # a future token arrival will reschedule
        if actual > start:
            if last_push.get(name) != (k, actual):
                last_push[name] = (k, actual)
                heapq.heappush(ready, (actual, name))
            continue
        records[name].start_times.append(actual)
        fired[name] = k + 1
        completed += 1
        completion = actual + tmg.delay(name)
        for p in tmg.output_places(name):
            arrival_times[p].append(completion)
            try_schedule(tmg.place(p).target)
        try_schedule(name)
    return records


def measured_cycle_time(
    tmg: TimedMarkedGraph,
    iterations: int = 64,
    transition: str | None = None,
) -> Fraction | None:
    """Estimate the cycle time by executing the TMG.

    Measures the average separation between consecutive firings of one
    transition over the second half of the execution (the first half warms
    the transient out).  Returns ``None`` when the transition never reaches
    enough firings (not live or starved).
    """
    records = earliest_firing_times(tmg, iterations)
    name = transition or tmg.transition_names[0]
    times = records[name].start_times
    if len(times) < 4:
        return None
    half = len(times) // 2
    span = times[-1] - times[half]
    steps = len(times) - 1 - half
    if steps <= 0:
        return None
    return Fraction(span, steps)
