"""Reduction of a TMG to a weighted *event graph* over transitions.

Definition 3 defines the cycle mean ``µ(c) = M0(c) / Σ_{t∈c} d(t)`` and the
cycle time ``π(G)`` as the reciprocal of the minimum cycle mean.  Working
directly on the bipartite place/transition graph is awkward; instead we
contract every place into an edge between its producer and consumer
transition, annotated with

* ``tokens`` — the place's initial marking ``M0(p)``, and
* ``delay`` — the delay ``d`` of the edge's *target* transition.

Going around any cycle, each transition is the target of exactly one edge,
so the edge-delay sum equals the transition-delay sum and

``π(G) = max over cycles c of  Σ_e delay(e) / Σ_e tokens(e)``

— the maximum cycle *ratio* of the event graph.  A cycle with zero tokens
has infinite ratio: the system is not live (deadlock).

Parallel places between the same transition pair are kept (the reduction
produces a multigraph), but for ratio maximization only the minimum-token
parallel edge can be binding, so :func:`build_event_graph` collapses them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.ir import OP_COMPUTE, OP_GET, LoweredIR
from repro.tmg.graph import TimedMarkedGraph


@dataclass(frozen=True)
class Edge:
    """One event-graph edge (a contracted place)."""

    source: str
    target: str
    tokens: int
    delay: int
    place: str

    @property
    def key(self) -> tuple[str, str]:
        return (self.source, self.target)


@dataclass
class EventGraph:
    """Adjacency-list event graph: ``succ[u]`` lists edges leaving ``u``."""

    nodes: tuple[str, ...]
    succ: dict[str, list[Edge]]

    @property
    def edges(self) -> list[Edge]:
        return [e for edges in self.succ.values() for e in edges]

    def predecessors_view(self) -> dict[str, list[Edge]]:
        """Reverse adjacency (computed on demand)."""
        pred: dict[str, list[Edge]] = {n: [] for n in self.nodes}
        for edge in self.edges:
            pred[edge.target].append(edge)
        return pred


def build_event_graph(tmg: TimedMarkedGraph) -> EventGraph:
    """Contract places into weighted edges (see module docstring).

    Parallel places with identical endpoints are collapsed to the one with
    the fewest tokens, which is the only one that can bind the maximum
    cycle ratio or cause a deadlock.
    """
    best: dict[tuple[str, str], Edge] = {}
    for place in tmg.places:
        edge = Edge(
            source=place.source,
            target=place.target,
            tokens=place.tokens,
            delay=tmg.delay(place.target),
            place=place.name,
        )
        current = best.get(edge.key)
        if current is None or edge.tokens < current.tokens:
            best[edge.key] = edge

    succ: dict[str, list[Edge]] = {name: [] for name in tmg.transition_names}
    for edge in best.values():
        succ[edge.source].append(edge)
    return EventGraph(nodes=tmg.transition_names, succ=succ)


def event_graph_from_ir(
    ir: LoweredIR, process_latencies: Mapping[str, int]
) -> EventGraph:
    """Contract a :class:`~repro.ir.LoweredIR` straight to an event graph.

    Skips materializing the intermediate :class:`TimedMarkedGraph`: the
    IR's integer tables already carry everything the contraction needs.
    Node order, edge order, names, and the minimum-token parallel-place
    collapse replicate ``build_event_graph(build_tmg(...).tmg)`` exactly,
    so maximum-cycle-ratio results (including which cycle is reported as
    critical) are bit-identical to the TMG route.

    Args:
        ir: The lowered system.
        process_latencies: Effective computation latency per process name
            (the IR is latency-free; see ``repro.ir.program``).
    """
    # Transitions, in TMG insertion order, with their firing delays.
    nodes: list[str] = []
    delay: dict[str, int] = {}
    channel_nodes: list[tuple[str, str]] = []  # (put-side, get-side) per cid
    for cid, channel in enumerate(ir.channels):
        if not ir.buffered[cid]:
            name = "ch:" + channel
            nodes.append(name)
            delay[name] = ir.channel_latencies[cid]
            channel_nodes.append((name, name))
        else:
            put_name = "ch:" + channel + ".put"
            get_name = "ch:" + channel + ".get"
            nodes.extend((put_name, get_name))
            delay[put_name] = ir.channel_latencies[cid]
            delay[get_name] = 0
            channel_nodes.append((put_name, get_name))
    process_nodes: list[str] = []
    for process in ir.processes:
        name = "proc:" + process
        nodes.append(name)
        delay[name] = process_latencies[process]
        process_nodes.append(name)

    # Places, in TMG insertion order, collapsed to min-token edges.
    best: dict[tuple[str, str], Edge] = {}

    def _add(place: str, source: str, target: str, tokens: int) -> None:
        edge = Edge(
            source=source,
            target=target,
            tokens=tokens,
            delay=delay[target],
            place=place,
        )
        current = best.get(edge.key)
        if current is None or edge.tokens < current.tokens:
            best[edge.key] = edge

    for cid, channel in enumerate(ir.channels):
        if ir.buffered[cid]:
            put_name, get_name = channel_nodes[cid]
            initial = ir.initial_tokens[cid]
            _add(f"{channel}/data", put_name, get_name, initial)
            _add(
                f"{channel}/credit",
                get_name,
                put_name,
                ir.effective_capacities[cid] - initial,
            )
    for pid, process in enumerate(ir.processes):
        kinds = ir.op_kinds[pid]
        args = ir.op_args[pid]
        transitions: list[str] = []
        places: list[str] = []
        for op, arg in zip(kinds, args):
            if op == OP_COMPUTE:
                transitions.append(process_nodes[pid])
                places.append(f"{process}/comp")
            else:
                put_name, get_name = channel_nodes[arg]
                if op == OP_GET:
                    transitions.append(get_name)
                    places.append(f"{process}/get:{ir.channels[arg]}")
                else:
                    transitions.append(put_name)
                    places.append(f"{process}/put:{ir.channels[arg]}")
        first_marked = ir.first_marked[pid]
        n = len(kinds)
        for i in range(n):
            _add(
                places[i],
                transitions[(i - 1) % n],
                transitions[i],
                1 if i == first_marked else 0,
            )

    succ: dict[str, list[Edge]] = {name: [] for name in nodes}
    for edge in best.values():
        succ[edge.source].append(edge)
    return EventGraph(nodes=tuple(nodes), succ=succ)


def strongly_connected_components(graph: EventGraph) -> list[list[str]]:
    """Tarjan SCCs of the event graph (iterative, recursion-free)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    for root in graph.nodes:
        if root in index:
            continue
        # Iterative Tarjan with an explicit work stack of (node, edge-iter).
        work = [(root, iter(graph.succ[root]))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, edges = work[-1]
            advanced = False
            for edge in edges:
                child = edge.target
                if child not in index:
                    index[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(graph.succ[child])))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components
