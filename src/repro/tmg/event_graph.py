"""Reduction of a TMG to a weighted *event graph* over transitions.

Definition 3 defines the cycle mean ``µ(c) = M0(c) / Σ_{t∈c} d(t)`` and the
cycle time ``π(G)`` as the reciprocal of the minimum cycle mean.  Working
directly on the bipartite place/transition graph is awkward; instead we
contract every place into an edge between its producer and consumer
transition, annotated with

* ``tokens`` — the place's initial marking ``M0(p)``, and
* ``delay`` — the delay ``d`` of the edge's *target* transition.

Going around any cycle, each transition is the target of exactly one edge,
so the edge-delay sum equals the transition-delay sum and

``π(G) = max over cycles c of  Σ_e delay(e) / Σ_e tokens(e)``

— the maximum cycle *ratio* of the event graph.  A cycle with zero tokens
has infinite ratio: the system is not live (deadlock).

Parallel places between the same transition pair are kept (the reduction
produces a multigraph), but for ratio maximization only the minimum-token
parallel edge can be binding, so :func:`build_event_graph` collapses them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tmg.graph import TimedMarkedGraph


@dataclass(frozen=True)
class Edge:
    """One event-graph edge (a contracted place)."""

    source: str
    target: str
    tokens: int
    delay: int
    place: str

    @property
    def key(self) -> tuple[str, str]:
        return (self.source, self.target)


@dataclass
class EventGraph:
    """Adjacency-list event graph: ``succ[u]`` lists edges leaving ``u``."""

    nodes: tuple[str, ...]
    succ: dict[str, list[Edge]]

    @property
    def edges(self) -> list[Edge]:
        return [e for edges in self.succ.values() for e in edges]

    def predecessors_view(self) -> dict[str, list[Edge]]:
        """Reverse adjacency (computed on demand)."""
        pred: dict[str, list[Edge]] = {n: [] for n in self.nodes}
        for edge in self.edges:
            pred[edge.target].append(edge)
        return pred


def build_event_graph(tmg: TimedMarkedGraph) -> EventGraph:
    """Contract places into weighted edges (see module docstring).

    Parallel places with identical endpoints are collapsed to the one with
    the fewest tokens, which is the only one that can bind the maximum
    cycle ratio or cause a deadlock.
    """
    best: dict[tuple[str, str], Edge] = {}
    for place in tmg.places:
        edge = Edge(
            source=place.source,
            target=place.target,
            tokens=place.tokens,
            delay=tmg.delay(place.target),
            place=place.name,
        )
        current = best.get(edge.key)
        if current is None or edge.tokens < current.tokens:
            best[edge.key] = edge

    succ: dict[str, list[Edge]] = {name: [] for name in tmg.transition_names}
    for edge in best.values():
        succ[edge.source].append(edge)
    return EventGraph(nodes=tmg.transition_names, succ=succ)


def strongly_connected_components(graph: EventGraph) -> list[list[str]]:
    """Tarjan SCCs of the event graph (iterative, recursion-free)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    for root in graph.nodes:
        if root in index:
            continue
        # Iterative Tarjan with an explicit work stack of (node, edge-iter).
        work = [(root, iter(graph.succ[root]))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, edges = work[-1]
            advanced = False
            for edge in edges:
                child = edge.target
                if child not in index:
                    index[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(graph.succ[child])))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components
