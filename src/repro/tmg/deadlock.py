"""Liveness / deadlock detection on Timed Marked Graphs.

A strongly-connected TMG is live iff every cycle carries at least one token
(Commoner et al., 1971 — reference [3] of the paper).  Since the token count
of a cycle is invariant under firing, deadlock is a purely structural
property of ``(F, M0)``: the system deadlocks iff the subgraph of
*token-free* places contains a cycle.  That check is linear time — no
simulation required — which is what makes the paper's analysis practical.
"""

from __future__ import annotations

from repro.errors import NotLiveError
from repro.tmg.event_graph import EventGraph, build_event_graph
from repro.tmg.graph import TimedMarkedGraph


def find_token_free_cycle(graph: EventGraph) -> list[str] | None:
    """Return a token-free cycle as a transition-name list, or ``None``.

    Runs a DFS over the subgraph of zero-token edges; the first back edge
    found closes the witness cycle.
    """
    zero_succ: dict[str, list[str]] = {n: [] for n in graph.nodes}
    for edge in graph.edges:
        if edge.tokens == 0:
            zero_succ[edge.source].append(edge.target)

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in graph.nodes}

    for root in graph.nodes:
        if color[root] != WHITE:
            continue
        # Iterative DFS keeping the gray path for cycle extraction.
        path: list[str] = []
        work: list[tuple[str, int]] = [(root, 0)]
        color[root] = GRAY
        path.append(root)
        while work:
            node, i = work[-1]
            if i < len(zero_succ[node]):
                work[-1] = (node, i + 1)
                child = zero_succ[node][i]
                if color[child] == GRAY:
                    start = path.index(child)
                    return path[start:]
                if color[child] == WHITE:
                    color[child] = GRAY
                    path.append(child)
                    work.append((child, 0))
            else:
                work.pop()
                path.pop()
                color[node] = BLACK
    return None


def is_live(tmg: TimedMarkedGraph) -> bool:
    """True iff no token-free cycle exists under the initial marking."""
    return find_token_free_cycle(build_event_graph(tmg)) is None


def assert_live(tmg: TimedMarkedGraph) -> None:
    """Raise :class:`~repro.errors.NotLiveError` with a witness cycle if the
    TMG can deadlock."""
    cycle = find_token_free_cycle(build_event_graph(tmg))
    if cycle is not None:
        raise NotLiveError(
            "timed marked graph is not live: token-free cycle through "
            + " -> ".join(cycle),
            cycle=cycle,
        )
