"""Timed Marked Graph engine: the paper's performance model (Section 3).

Provides the TMG data structure (Definition 1), the token game, liveness
checking, and three interchangeable cycle-time engines — Howard's policy
iteration (the paper's choice), Lawler's parametric search, and brute-force
cycle enumeration.
"""

from repro.tmg.analysis import (
    Engine,
    PerformanceReport,
    analyze,
    analyze_event_graph,
    cycle_time,
    deadlock_witness,
    is_deadlocked,
)
from repro.tmg.deadlock import assert_live, find_token_free_cycle, is_live
from repro.tmg.dot import tmg_to_dot
from repro.tmg.enumeration import (
    EnumeratedCycle,
    enumerate_cycles,
    maximum_cycle_ratio_enumerated,
)
from repro.tmg.event_graph import (
    Edge,
    EventGraph,
    build_event_graph,
    strongly_connected_components,
)
from repro.tmg.firing import (
    FiringRecord,
    earliest_firing_times,
    measured_cycle_time,
)
from repro.tmg.graph import Place, TimedMarkedGraph, Transition
from repro.tmg.howard import (
    CycleRatioResult,
    maximum_cycle_ratio,
    maximum_cycle_ratio_screened,
)
from repro.tmg.lawler import maximum_cycle_ratio_lawler

__all__ = [
    "CycleRatioResult",
    "Edge",
    "Engine",
    "EnumeratedCycle",
    "EventGraph",
    "FiringRecord",
    "PerformanceReport",
    "Place",
    "TimedMarkedGraph",
    "Transition",
    "analyze",
    "analyze_event_graph",
    "assert_live",
    "build_event_graph",
    "cycle_time",
    "deadlock_witness",
    "earliest_firing_times",
    "enumerate_cycles",
    "find_token_free_cycle",
    "is_deadlocked",
    "is_live",
    "maximum_cycle_ratio",
    "maximum_cycle_ratio_enumerated",
    "maximum_cycle_ratio_screened",
    "maximum_cycle_ratio_lawler",
    "measured_cycle_time",
    "strongly_connected_components",
    "tmg_to_dot",
]
