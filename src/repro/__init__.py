"""ERMES reproduction: compositional HLS of communication-centric SoCs.

A from-scratch Python implementation of Di Guglielmo, Pilato & Carloni,
*A Design Methodology for Compositional High-Level Synthesis of
Communication-Centric SoCs* (DAC 2014): the Timed-Marked-Graph performance
model, the deadlock-free channel-ordering algorithm, and the ERMES
design-space-exploration methodology, together with every substrate they
need (system model, discrete-event simulator, HLS micro-architecture
model, ILP solver, and the MPEG-2 encoder case study).

Typical use::

    from repro import (
        SystemBuilder, analyze_system, channel_ordering, explore,
    )

    system = (
        SystemBuilder("soc")
        .source("src").process("A", latency=5).process("B", latency=3)
        .sink("snk")
        .channel("i", "src", "A", latency=2)
        .channel("x", "A", "B", latency=1)
        .channel("o", "B", "snk", latency=1)
        .build()
    )
    ordering = channel_ordering(system)          # Algorithm 1
    performance = analyze_system(system, ordering)  # TMG + Howard
    print(performance.cycle_time, performance.critical_processes)
"""

from repro.core import (
    Channel,
    ChannelOrdering,
    Process,
    ProcessKind,
    SystemBuilder,
    SystemGraph,
    all_orderings,
    fork_join,
    load_ordering,
    load_system,
    motivating_deadlock_ordering,
    motivating_example,
    motivating_optimal_ordering,
    motivating_suboptimal_ordering,
    pipeline,
    save_ordering,
    save_system,
    synthetic_soc,
    system_to_dot,
    validate_system,
)
from repro.dse import (
    ExplorationResult,
    Explorer,
    SystemConfiguration,
    explore,
    iteration_table,
    summarize,
)
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    InfeasibleError,
    NotLiveError,
    ReproError,
    SimulationDeadlock,
    SimulationError,
    ValidationError,
)
from repro.diagnostics import Diagnostic, LintError, OrderingFix, Severity
from repro.hls import (
    ChannelPhysics,
    Implementation,
    ImplementationLibrary,
    KnobSpace,
    ParetoSet,
    pareto_filter,
    synthesize_pareto_set,
    transfer_latency,
)
from repro.lint import LintResult, lint_system, preflight
from repro.model import (
    SystemPerformance,
    analyze_system,
    build_nonblocking_tmg,
    build_tmg,
    deadlock_cycle,
    is_deadlock_free,
)
from repro.ordering import (
    channel_ordering,
    channel_ordering_with_labels,
    conservative_ordering,
    declaration_ordering,
    exhaustive_search,
    feedback_first,
    random_ordering,
)
from repro.sim import SimulationResult, Simulator, simulate
from repro.sizing import (
    SizingResult,
    cycle_time_with_capacities,
    minimize_buffers,
    size_buffers,
)
from repro.tmg import (
    Engine,
    PerformanceReport,
    TimedMarkedGraph,
    analyze,
    cycle_time,
    is_live,
    measured_cycle_time,
)

__version__ = "0.1.0"

__all__ = [
    "Channel",
    "ChannelOrdering",
    "ChannelPhysics",
    "ConfigurationError",
    "DeadlockError",
    "Diagnostic",
    "Engine",
    "ExplorationResult",
    "Explorer",
    "Implementation",
    "ImplementationLibrary",
    "InfeasibleError",
    "KnobSpace",
    "LintError",
    "LintResult",
    "NotLiveError",
    "OrderingFix",
    "ParetoSet",
    "PerformanceReport",
    "Process",
    "ProcessKind",
    "ReproError",
    "Severity",
    "SimulationDeadlock",
    "SimulationError",
    "SimulationResult",
    "Simulator",
    "SizingResult",
    "SystemBuilder",
    "SystemConfiguration",
    "SystemGraph",
    "SystemPerformance",
    "TimedMarkedGraph",
    "ValidationError",
    "all_orderings",
    "analyze",
    "analyze_system",
    "build_nonblocking_tmg",
    "build_tmg",
    "channel_ordering",
    "channel_ordering_with_labels",
    "conservative_ordering",
    "cycle_time",
    "cycle_time_with_capacities",
    "deadlock_cycle",
    "declaration_ordering",
    "exhaustive_search",
    "explore",
    "feedback_first",
    "fork_join",
    "is_deadlock_free",
    "is_live",
    "iteration_table",
    "lint_system",
    "load_ordering",
    "load_system",
    "measured_cycle_time",
    "minimize_buffers",
    "motivating_deadlock_ordering",
    "motivating_example",
    "motivating_optimal_ordering",
    "motivating_suboptimal_ordering",
    "pareto_filter",
    "pipeline",
    "preflight",
    "random_ordering",
    "save_ordering",
    "save_system",
    "simulate",
    "size_buffers",
    "summarize",
    "synthesize_pareto_set",
    "synthetic_soc",
    "system_to_dot",
    "transfer_latency",
    "validate_system",
]
