"""The ERMES exploration loop (Fig. 5).

Each iteration:

1. **System-level performance analysis** — build the TMG of the current
   configuration and compute the cycle time and critical cycle (Howard).
2. **IP optimization** — compute the slack ``sp = TCT − CT``; run *area
   recovery* when the constraint is met (``sp > 0``) or *timing
   optimization* otherwise, as ILPs over the Pareto sets, excluding
   already-visited selections via no-good cuts.
3. **Channel reordering** — rerun Algorithm 1 under the new process
   latencies ("as it generates a new implementation, the algorithm for
   channel reordering optimizes the performance").

The loop stops when an iteration changes neither the selection nor the
ordering, when the ILP is infeasible, or at ``max_iterations``.  The full
trajectory is recorded so the Fig. 6 exploration plots can be regenerated.
"""

from __future__ import annotations

import logging
from contextlib import nullcontext
from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, ContextManager, Union

from repro.core.system import ChannelOrdering
from repro.dse.config import SystemConfiguration
from repro.dse.problems import (
    area_recovery_problem,
    process_latency_caps,
    timing_optimization_problem,
)
from repro.errors import DeadlockError, InfeasibleError
from repro.ilp import branch_bound
from repro.model.performance import SystemPerformance, analyze_system
from repro.ordering.algorithm import channel_ordering
from repro.perf.cache import LruCache
from repro.perf.engine import PerformanceEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir import LoweredIR
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profile import DseProfiler
    from repro.store import ArtifactStore

Number = Union[Fraction, float]

_log = logging.getLogger(__name__)

#: Hashable identity of a :class:`ChannelOrdering` (which carries plain,
#: unhashable dicts): per-process get and put sequences, sorted by name.
OrderingFingerprint = tuple[
    tuple[tuple[str, tuple[str, ...]], ...],
    tuple[tuple[str, tuple[str, ...]], ...],
]


def _ordering_fingerprint(ordering: ChannelOrdering) -> OrderingFingerprint:
    return (
        tuple(sorted((p, tuple(seq)) for p, seq in ordering.gets.items())),
        tuple(sorted((p, tuple(seq)) for p, seq in ordering.puts.items())),
    )


@dataclass(frozen=True)
class IterationRecord:
    """One row of an exploration trajectory (one Fig. 6 point)."""

    iteration: int
    action: str  # "start" | "timing_optimization" | "area_recovery" | "none"
    cycle_time: Number
    area: float
    slack: Number
    meets_target: bool
    critical_processes: tuple[str, ...]
    selection_changes: tuple[tuple[str, str], ...]  # (process, new impl)
    reordered_processes: tuple[str, ...]


@dataclass
class ExplorationResult:
    """Outcome of one ERMES run.

    ``final`` is the configuration the tool returns: the best *feasible*
    one visited (meets the target cycle time, smallest area, then smallest
    CT), falling back to the last configuration when the target was never
    met.  ``history`` records the whole trajectory (the Fig. 6 series),
    including the iterations that overshoot or violate.
    """

    target_cycle_time: Number
    history: list[IterationRecord] = field(default_factory=list)
    final: SystemConfiguration | None = None
    final_index: int = -1
    stop_reason: str = ""
    cache_stats: dict[str, dict[str, int | float]] | None = None
    #: Simulated steady-state cycle time per history index, from the
    #: batched cross-validation pass (``batch=True`` /
    #: ``ERMES_SIM_BATCH``): every visited configuration replayed through
    #: one vectorized :class:`repro.sim.BatchSimulator` run per distinct
    #: ordering.  ``None`` values mark configurations whose simulation
    #: deadlocked; the attribute itself is ``None`` when batching is off.
    measured_cycle_times: dict[int, Number | None] | None = None

    @property
    def initial_record(self) -> IterationRecord:
        return self.history[0]

    @property
    def final_record(self) -> IterationRecord:
        return self.history[self.final_index]

    @property
    def speedup(self) -> float:
        """Initial CT over final CT.

        Degenerate zero-latency systems can reach a cycle time of 0 (e.g.
        a zero-latency sink behind a buffered channel dominates every
        cycle); a zero *final* CT means the run is infinitely faster —
        unless the initial CT was already 0, in which case nothing changed.
        """
        initial = float(self.initial_record.cycle_time)
        final = float(self.final_record.cycle_time)
        if final == 0:
            return 1.0 if initial == 0 else float("inf")
        return initial / final

    @property
    def area_change(self) -> float:
        """Relative area change, final vs initial (positive = overhead)."""
        initial = self.initial_record.area
        if initial == 0:
            return 0.0
        return (self.final_record.area - initial) / initial


class Explorer:
    """ERMES: iterative co-optimization of IP selection and channel order.

    Args:
        target_cycle_time: The designer's TCT constraint.
        max_iterations: Upper bound on optimization iterations.
        reorder: Rerun Algorithm 1 after each selection change (the paper's
            behaviour).  Disable to ablate the contribution of reordering.
        verify: Machine-check every ordering Algorithm 1 produces with the
            explicit-state checker (:func:`repro.verify.verify_ordering`)
            on small systems (``<= SMALL_SYSTEM_LIMIT`` processes +
            channels).  A confirmed deadlock raises — Algorithm 1 is
            proven safe, so a firing is an engine bug, not a design
            property — while a budget-exhausted check is quietly skipped
            (the structural guarantee still holds).  On by default; the
            cost is bounded by a small state/time budget.
        timing_area_budget: Optional area-increase cap per timing step
            (activates the dual formulation with area recovered from
            off-cycle processes).
        engine_exact: Exact rational arithmetic in the analysis engine.
        perf_engine: The :class:`~repro.perf.PerformanceEngine` serving
            the per-iteration analyses.  Defaults to a fresh engine per
            Explorer; pass a shared one to keep its caches warm across
            runs (see :func:`repro.dse.sweep.sweep_targets`).
        profiler: Optional :class:`repro.obs.DseProfiler`; when attached,
            every iteration leaves an
            :class:`~repro.obs.profile.IterationSnapshot` behind and the
            loop's phases report wall time / counters into the profiler's
            metrics registry under the stable ``dse.*`` names
            (``docs/OBSERVABILITY.md``).  No cost when ``None``.
        batch: Cross-validate the analytic trajectory by simulation: after
            the loop converges, replay every visited configuration through
            the vectorized :class:`repro.sim.BatchSimulator` — one
            lock-step run per distinct ordering, one lane per
            configuration — and attach the measured steady-state cycle
            times to :attr:`ExplorationResult.measured_cycle_times`.
            ``None`` (the default) defers to the ``ERMES_SIM_BATCH``
            environment knob.  The exploration trajectory itself is
            untouched: batching adds measurements, never decisions.
        batch_iterations: Iterations each batched lane runs for (the
            steady-state estimate uses the second half).
        workers: Worker processes for the cross-validation measurement
            pass.  ``> 1`` distributes the visited configurations over a
            :class:`~repro.service.ShardedRunner` pool (workers receive
            pickled IR work units) instead of the in-process batch
            engine; measurements are bit-identical either way — the
            scalar, batch, and sharded paths all execute the same
            compiled program (differential-tested in
            ``tests/dse/test_explorer_shard.py``).
        store: Optional persistent :class:`~repro.store.ArtifactStore`.
            Layered under the default performance engine's LRU (ignored
            when ``perf_engine`` is supplied — configure that engine's
            store directly) and shared with the sharded measurement
            workers, so analyses and simulations survive the process.
            Conclusive ordering verdicts are persisted too (kind
            ``"verify"``, keyed by the ordering's ``ir_hash``), so
            machine-checks survive process restarts; reuse is counted
            under ``dse.verify.store_hits``.
        sym_dedup: Dedup ordering *verifications* by orbit-canonical key
            (:mod:`repro.sym`): when Algorithm 1 produces an ordering
            whose lowered IR is isomorphic to one already machine-checked
            this run, the check is skipped — deadlock-freedom is
            invariant under IR automorphisms, and the skip count is both
            metered (``dse.sym.verify_deduped``) and logged, never
            silent.  The exploration *trajectory* is untouched: analyses,
            ILP cuts, and iteration decisions never consult the orbit.
        sym_seen: Optional shared set of already-verified canonical
            hashes.  :func:`repro.dse.sweep.sweep_targets` passes one
            set across its per-target explorers so symmetric neighbors
            are verified once per sweep, not once per target.
    """

    def __init__(
        self,
        target_cycle_time: Number,
        max_iterations: int = 16,
        reorder: bool = True,
        verify: bool = True,
        timing_area_budget: float | None = None,
        engine_exact: bool = True,
        perf_engine: PerformanceEngine | None = None,
        profiler: "DseProfiler | None" = None,
        batch: bool | None = None,
        batch_iterations: int = 32,
        workers: int = 1,
        store: "ArtifactStore | None" = None,
        sym_dedup: bool = True,
        sym_seen: set[str] | None = None,
    ):
        self.target_cycle_time = target_cycle_time
        self.max_iterations = max_iterations
        self.reorder = reorder
        self.verify = verify
        self.timing_area_budget = timing_area_budget
        self.engine_exact = engine_exact
        self.workers = workers
        self.store = store
        self.perf_engine = perf_engine or PerformanceEngine(store=store)
        self.profiler = profiler
        if batch is None:
            from repro.sim.batch import batch_enabled_by_env

            batch = batch_enabled_by_env()
        self.batch = batch
        self.batch_iterations = batch_iterations
        self.sym_dedup = sym_dedup
        self._sym_seen = sym_seen if sym_seen is not None else set()
        # Memoized Algorithm 1 results: sweeps revisit configurations, and
        # orderings are immutable values safe to share.
        self._ordering_cache = LruCache(maxsize=256)

    # ------------------------------------------------------------------

    def run(
        self,
        config: SystemConfiguration,
        workers: int | None = None,
    ) -> ExplorationResult:
        """Explore from ``config`` until convergence.

        Args:
            config: The starting configuration.
            workers: Per-run override of the constructor's ``workers``
                (the sharded measurement fan-out); ``None`` keeps it.

        Raises:
            LintError: When the structural pre-flight (``ERM1xx`` /
                ``ERM302``) rejects the specification; the exception
                carries the coded diagnostics.
        """
        from repro.lint import preflight

        preflight(config.system, config.ordering)
        profiler = self.profiler
        metrics = profiler.metrics if profiler is not None else None
        if profiler is not None:
            profiler.begin_run(self.perf_engine)

        def timed(name: str) -> ContextManager[object]:
            return metrics.timer(name) if metrics is not None else nullcontext()

        result = ExplorationResult(target_cycle_time=self.target_cycle_time)
        visited: set[tuple[tuple[str, str], ...]] = {config.selection_key()}
        verified_orderings: set[OrderingFingerprint] = set()
        sym_deduped = 0
        # Computed once, deliberately: the caps depend only on the target
        # and on each process's channel latencies/bufferings — structural
        # quantities that no exploration step (selection or reordering)
        # ever changes — so the initial caps remain valid for the whole
        # run.  See process_latency_caps for the serial-cycle bound.
        caps = process_latency_caps(config, float(self.target_cycle_time))
        incumbent: tuple[float, float, int, SystemConfiguration] | None = None
        fastest: tuple[float, float, int, SystemConfiguration] | None = None

        def consider(record: IterationRecord, cfg: SystemConfiguration) -> None:
            nonlocal incumbent, fastest
            speed_key = (float(record.cycle_time), record.area)
            if fastest is None or speed_key < fastest[:2]:
                fastest = (speed_key[0], speed_key[1], record.iteration, cfg)
            if not record.meets_target:
                return
            key = (record.area, float(record.cycle_time), record.iteration)
            if incumbent is None or key[:2] < incumbent[:2]:
                incumbent = (key[0], key[1], record.iteration, cfg)

        with timed("dse.analyze"):
            performance = self._analyze(config)
        start_record = self._record(0, "start", config, performance, (), ())
        result.history.append(start_record)
        # Visited configurations by history index, for the optional batched
        # simulation cross-validation after the loop.
        trail: list[tuple[int, SystemConfiguration]] = [(0, config)]
        consider(start_record, config)
        if profiler is not None:
            profiler.iteration(start_record, self.perf_engine)

        for iteration in range(1, self.max_iterations + 1):
            iteration_nodes = 0
            slack = self.target_cycle_time - performance.cycle_time
            critical = performance.critical_processes

            if slack > 0:
                problem = area_recovery_problem(
                    config, critical, float(slack), latency_caps=caps
                )
                action = "area_recovery"
            else:
                problem = timing_optimization_problem(
                    config,
                    critical,
                    area_budget=self.timing_area_budget,
                    latency_caps=caps,
                )
                action = "timing_optimization"

            try:
                with timed("dse.ilp"):
                    solution = branch_bound.solve(problem)
            except InfeasibleError:
                if metrics is not None:
                    metrics.counter("dse.ilp.infeasible").add(1)
                result.stop_reason = f"{action} infeasible"
                break
            iteration_nodes += solution.nodes
            if metrics is not None:
                metrics.counter("dse.ilp.solves").add(1)
                metrics.counter("dse.ilp.nodes").add(solution.nodes)

            changes = self._diff(config, solution.selection)
            candidate = config.with_selection(changes)

            if changes and candidate.selection_key() in visited:
                # The optimum revisits an explored configuration: re-solve
                # with no-good cuts over everything already optimized (the
                # paper's "constraints to discard the configurations
                # already optimized").
                group_names = [g.name for g in problem.groups]
                for key in visited:
                    full = dict(key)
                    problem.forbid({name: full[name] for name in group_names})
                try:
                    with timed("dse.ilp"):
                        solution = branch_bound.solve(problem)
                except InfeasibleError:
                    if metrics is not None:
                        metrics.counter("dse.ilp.infeasible").add(1)
                    result.stop_reason = "all candidate configurations visited"
                    break
                iteration_nodes += solution.nodes
                if metrics is not None:
                    metrics.counter("dse.ilp.solves").add(1)
                    metrics.counter("dse.ilp.nodes").add(solution.nodes)
                changes = self._diff(config, solution.selection)
                candidate = config.with_selection(changes)
                if changes and candidate.selection_key() in visited:
                    result.stop_reason = "exploration cycled"
                    break

            reordered: tuple[str, ...] = ()
            if self.reorder:
                with timed("dse.reorder"):
                    new_ordering = self._reorder(candidate)
                reordered = new_ordering.differs_from(candidate.ordering)
                if metrics is not None:
                    metrics.counter("dse.reorder.runs").add(1)
                    metrics.counter("dse.reorder.changed_processes").add(
                        len(reordered)
                    )
                if reordered:
                    candidate = candidate.with_ordering(new_ordering)
                # Even an unchanged result is an ordering Algorithm 1
                # produced — machine-check each distinct one once per run
                # and once per orbit: an ordering isomorphic to an
                # already-verified one shares its verdict.
                fingerprint = _ordering_fingerprint(new_ordering)
                if fingerprint not in verified_orderings:
                    verified_orderings.add(fingerprint)
                    canonical = (
                        self._canonical_key(candidate)
                        if self.sym_dedup
                        else None
                    )
                    if canonical is not None and canonical in self._sym_seen:
                        sym_deduped += 1
                        if metrics is not None:
                            metrics.counter("dse.sym.verify_deduped").add(1)
                    else:
                        with timed("dse.verify"):
                            self._verify_ordering(candidate, metrics)
                        if canonical is not None:
                            # Only a check that *returned* marks the
                            # orbit verified (a deadlock raises out).
                            self._sym_seen.add(canonical)

            if not changes and not reordered:
                none_record = self._record(
                    iteration, "none", config, performance, (), ()
                )
                result.history.append(none_record)
                trail.append((len(result.history) - 1, config))
                if profiler is not None:
                    profiler.iteration(
                        none_record, self.perf_engine, iteration_nodes
                    )
                result.stop_reason = "converged (no applicable changes)"
                break

            visited.add(candidate.selection_key())
            config = candidate
            with timed("dse.analyze"):
                performance = self._analyze(config)
            record = self._record(
                iteration,
                action,
                config,
                performance,
                tuple(sorted(changes.items())),
                reordered,
            )
            result.history.append(record)
            trail.append((len(result.history) - 1, config))
            consider(record, config)
            if profiler is not None:
                profiler.iteration(record, self.perf_engine, iteration_nodes)
        else:
            result.stop_reason = "iteration limit reached"

        if incumbent is not None:
            result.final = incumbent[3]
            result.final_index = incumbent[2]
        elif fastest is not None:
            # The target was never met: return the fastest configuration
            # seen (the closest approach), not whatever the loop ended on.
            result.final = fastest[3]
            result.final_index = fastest[2]
        else:
            result.final = config
            result.final_index = len(result.history) - 1
        if sym_deduped:
            _log.info(
                "dse.sym: skipped %d symmetric re-verification(s) for %r "
                "(orderings isomorphic to an already machine-checked one)",
                sym_deduped,
                config.system.name,
            )
        result.cache_stats = self.perf_engine.stats_dict()
        if self.batch:
            with timed("dse.batch"):
                result.measured_cycle_times = self._measure_batch(
                    trail,
                    metrics,
                    self.workers if workers is None else workers,
                )
        if profiler is not None:
            profiler.end_run(result, self.perf_engine)
            profiler.metrics.merge_cache_stats(
                {"ordering": self._ordering_cache.stats.as_dict()}
            )
        return result

    # ------------------------------------------------------------------

    @staticmethod
    def _diff(config: SystemConfiguration, selection) -> dict[str, str]:
        return {
            process: impl
            for process, impl in selection.items()
            if config.selection[process] != impl
        }

    def _analyze(self, config: SystemConfiguration) -> SystemPerformance:
        return analyze_system(
            config.system,
            config.ordering,
            process_latencies=config.process_latencies(),
            exact=self.engine_exact,
            perf_engine=self.perf_engine,
        )

    #: Per-reordering verification budget: generous for SMALL_SYSTEM_LIMIT
    #: state spaces, yet bounding the worst case to a blink per iteration.
    VERIFY_BUDGET_STATES = 50_000
    VERIFY_BUDGET_SECONDS = 1.0

    def _verify_ordering(
        self,
        config: SystemConfiguration,
        metrics: "MetricsRegistry | None",
    ) -> None:
        """Check Algorithm 1's output: static preflight, then BFS.

        The abstract-interpretation preflight (:mod:`repro.absint`) runs
        first at every scale.  A statically-proved deadlock (token-free
        cycle) prunes the candidate immediately by raising
        :class:`~repro.errors.DeadlockError` — no state-space search is
        ever spent on it.  A validated deadlock-freedom certificate is
        the *only* guarantee available above
        :data:`~repro.verify.checker.SMALL_SYSTEM_LIMIT`; on small
        systems the exhaustive BFS still runs as an independent
        cross-check of both the certificate and Algorithm 1.

        A :class:`~repro.errors.DeadlockError` propagates (a verified
        deadlock in a safe-by-construction ordering is an engine bug); a
        :class:`~repro.errors.BudgetExceeded` is swallowed — the
        structural liveness guarantee of Algorithm 1 stands on its own,
        and a deferred machine-check must not fail the exploration.
        """
        if not self.verify:
            return
        from repro.absint import analyze, check_certificate
        from repro.errors import BudgetExceeded
        from repro.verify.checker import is_small_system, verify_ordering

        if metrics is not None:
            metrics.counter("dse.absint.runs").add(1)
        static = analyze(config.system, config.ordering)
        if static.token_free_cycle is not None:
            if metrics is not None:
                metrics.counter("dse.absint.deadlock_pruned").add(1)
            cycle_text = " -> ".join(static.token_free_cycle)
            raise DeadlockError(
                f"static preflight pruned the ordering for "
                f"{config.system.name!r}: token-free cycle {cycle_text}",
                cycle=list(static.token_free_cycle),
            )
        certificate = static.certificate
        assert certificate is not None  # no cycle => certified
        if not is_small_system(config.system):
            # Beyond BFS scale the certificate *is* the verification:
            # re-validate it independently before accepting.
            check_certificate(self._lowered(config), certificate)
            if metrics is not None:
                metrics.counter("dse.absint.certified").add(1)
            return
        # Persisted verdict short-circuit: a conclusive DEADLOCK_FREE is
        # a proof, valid whatever budget this run would have used.  The
        # canonical hash is the second-chance key — deadlock-freedom is
        # invariant under IR automorphisms, so a symmetric sibling's
        # verdict transfers.
        ir: "LoweredIR | None" = None
        digest = None
        canonical = None
        if self.store is not None:
            from repro.store import params_digest

            ir = self._lowered(config)
            digest = params_digest({"op": "verify"})
            hit = self.store.get(ir.structural_hash, "verify", digest)
            if hit != "deadlock-free" and self.sym_dedup:
                canonical = self._canonical_key(config)
                if canonical is not None and canonical != ir.structural_hash:
                    hit = self.store.get(canonical, "verify", digest)
                    if hit == "deadlock-free" and metrics is not None:
                        metrics.counter("dse.sym.store_hits").add(1)
            if hit == "deadlock-free":
                if metrics is not None:
                    metrics.counter("dse.verify.store_hits").add(1)
                return
        if metrics is not None:
            metrics.counter("dse.absint.bfs_crosschecks").add(1)
            metrics.counter("dse.verify.runs").add(1)
        try:
            verify_ordering(
                config.system,
                config.ordering,
                budget_states=self.VERIFY_BUDGET_STATES,
                budget_seconds=self.VERIFY_BUDGET_SECONDS,
                metrics=metrics,
            )
        except BudgetExceeded:
            if metrics is not None:
                metrics.counter("dse.verify.inconclusive").add(1)
            return
        if self.store is not None and ir is not None and digest is not None:
            # Only the conclusive free verdict persists (a deadlock
            # raised out above; inconclusive runs returned early).
            self.store.put(ir.structural_hash, "verify", digest, "deadlock-free")
            if canonical is None and self.sym_dedup:
                canonical = self._canonical_key(config)
            if canonical is not None and canonical != ir.structural_hash:
                self.store.put(canonical, "verify", digest, "deadlock-free")

    def _canonical_key(self, config: SystemConfiguration) -> str | None:
        """Orbit-canonical hash of the candidate's lowered IR.

        ``None`` when the labeling hit its node budget — an incomplete
        canonical form must not serve as a dedup key (isomorphic inputs
        could disagree), so such candidates are verified concretely.
        Families declared by the composition layer seed the labeling, so
        a DSL-built replicated fabric pays table verification instead of
        a rediscovery descent.
        """
        from repro.sym import analyze_symmetry, declared_seeds

        ir = self._lowered(config)
        families = config.system.declared_families
        seeds = declared_seeds(ir, families) if families else ()
        analysis = analyze_symmetry(ir, seeds=seeds)
        return analysis.canonical_hash if analysis.complete else None

    @staticmethod
    def _lowered(config: SystemConfiguration) -> "LoweredIR":
        from repro.ir import lower

        return lower(config.system, config.ordering)

    def _measure_batch(
        self,
        trail: list[tuple[int, SystemConfiguration]],
        metrics: "MetricsRegistry | None",
        workers: int = 1,
    ) -> dict[int, Number | None]:
        """Simulate every visited configuration through the batch engine.

        Configurations sharing an ordering share a compiled structure, so
        they batch into one lock-step run with one lane per configuration
        — their selections differ only in process latencies, exactly what
        a :class:`~repro.sim.BatchLane` overrides.  A lane whose
        simulation deadlocks yields ``None`` (the analytic loop may walk
        through orderings simulation rejects; that disagreement is the
        point of cross-validation).

        With ``workers > 1`` the same measurements are distributed over a
        sharded worker pool instead — per-configuration scalar runs of
        the same compiled program, so the two paths agree bit for bit
        (the batch engine's SIMD guarantee composes with the shard
        backend's sequential-identity guarantee).
        """
        from repro.errors import SimulationDeadlock
        from repro.sim.batch import BatchLane, BatchSimulator

        measured: dict[int, Number | None] = {}
        groups: dict[
            OrderingFingerprint, list[tuple[int, SystemConfiguration]]
        ] = {}
        for index, cfg in trail:
            groups.setdefault(
                _ordering_fingerprint(cfg.ordering), []
            ).append((index, cfg))
        if workers > 1:
            return self._measure_sharded(groups, metrics, workers)
        for entries in groups.values():
            first = entries[0][1]
            sinks = first.system.sinks()
            watch = (
                sinks[0].name if sinks else first.system.process_names[0]
            )
            lanes = [
                BatchLane(process_latencies=cfg.process_latencies())
                for _, cfg in entries
            ]
            outcomes = BatchSimulator(
                first.system, first.ordering, lanes=lanes, metrics=metrics
            ).run(iterations=self.batch_iterations, on_deadlock="capture")
            for (index, _), outcome in zip(entries, outcomes):
                measured[index] = (
                    None
                    if isinstance(outcome, SimulationDeadlock)
                    else outcome.measured_cycle_time(watch)
                )
        if metrics is not None:
            metrics.counter("dse.batch.measured").add(len(measured))
        return measured

    def _measure_sharded(
        self,
        groups: dict[
            OrderingFingerprint, list[tuple[int, SystemConfiguration]]
        ],
        metrics: "MetricsRegistry | None",
        workers: int,
    ) -> dict[int, Number | None]:
        """Distribute the measurement pass over a worker pool.

        One pool serves every ordering group; each configuration becomes
        a latency-only work unit against its group's base design, and
        the shared store (when attached) makes repeated trajectories —
        sweeps warm-starting from neighbouring targets, re-runs of the
        same design — cross-process cache hits.
        """
        from repro.service.shard import ShardedRunner
        from repro.service.units import Candidate, WorkUnit

        measured: dict[int, Number | None] = {}
        with ShardedRunner(
            workers=workers, store=self.store, metrics=metrics
        ) as runner:
            for entries in groups.values():
                first = entries[0][1]
                units = [
                    WorkUnit(
                        index=lane,
                        candidate=Candidate.of(cfg.process_latencies()),
                        iterations=self.batch_iterations,
                    )
                    for lane, (_, cfg) in enumerate(entries)
                ]
                outcomes = runner.run(first.system, first.ordering, units)
                for (index, _), outcome in zip(entries, outcomes):
                    measured[index] = outcome.measured_cycle_time
        if metrics is not None:
            metrics.counter("dse.batch.measured").add(len(measured))
        return measured

    def _reorder(self, config: SystemConfiguration) -> ChannelOrdering:
        system = config.system.with_process_latencies(config.process_latencies())
        try:
            return channel_ordering(
                system,
                initial_ordering=config.ordering,
                cache=self._ordering_cache,
            )
        except DeadlockError:
            # Structurally dead systems were rejected earlier; a failure
            # here means the topology lacks sources/sinks for the
            # traversal, so keep the current (valid) ordering.
            return config.ordering

    def _record(
        self,
        iteration: int,
        action: str,
        config: SystemConfiguration,
        performance: SystemPerformance,
        changes: tuple[tuple[str, str], ...],
        reordered: tuple[str, ...],
    ) -> IterationRecord:
        ct = performance.cycle_time
        return IterationRecord(
            iteration=iteration,
            action=action,
            cycle_time=ct,
            area=config.total_area(),
            slack=self.target_cycle_time - ct,
            meets_target=ct <= self.target_cycle_time,
            critical_processes=performance.critical_processes,
            selection_changes=changes,
            reordered_processes=reordered,
        )


def explore(
    config: SystemConfiguration,
    target_cycle_time: Number,
    **kwargs,
) -> ExplorationResult:
    """One-call convenience wrapper around :class:`Explorer`."""
    return Explorer(target_cycle_time, **kwargs).run(config)
