"""Reporting helpers: Fig. 6-style exploration tables and summaries."""

from __future__ import annotations

import io
from typing import Iterable

from repro.dse.explorer import ExplorationResult, IterationRecord


def iteration_table(
    result: ExplorationResult,
    cycle_time_unit: float = 1.0,
    area_unit: float = 1.0,
) -> str:
    """Render the trajectory as a fixed-width table (one Fig. 6 series).

    ``cycle_time_unit``/``area_unit`` rescale raw numbers (e.g. 1000.0 to
    print KCycles, 1e6 to print mm² from µm²).
    """
    out = io.StringIO()
    out.write(
        f"{'iter':>4}  {'action':<20} {'cycle time':>12} {'area':>10} "
        f"{'slack':>12}  {'meets':>5}  changes\n"
    )
    for row in result.history:
        ct = float(row.cycle_time) / cycle_time_unit
        area = row.area / area_unit
        slack = float(row.slack) / cycle_time_unit
        changed = ", ".join(f"{p}->{i}" for p, i in row.selection_changes)
        if row.reordered_processes:
            reordered = ",".join(row.reordered_processes)
            changed = (changed + "; " if changed else "") + f"reorder[{reordered}]"
        out.write(
            f"{row.iteration:>4}  {row.action:<20} {ct:>12.3f} {area:>10.3f} "
            f"{slack:>12.3f}  {str(row.meets_target):>5}  {changed}\n"
        )
    out.write(f"stop: {result.stop_reason}\n")
    return out.getvalue()


def series(
    result: ExplorationResult,
    cycle_time_unit: float = 1.0,
    area_unit: float = 1.0,
) -> list[dict]:
    """The (iteration, cycle time, area) series behind a Fig. 6 panel."""
    return [
        {
            "iteration": row.iteration,
            "action": row.action,
            "cycle_time": float(row.cycle_time) / cycle_time_unit,
            "area": row.area / area_unit,
            "meets_target": row.meets_target,
        }
        for row in result.history
    ]


def to_csv(records: Iterable[IterationRecord]) -> str:
    """CSV export of a trajectory."""
    lines = ["iteration,action,cycle_time,area,slack,meets_target"]
    for row in records:
        lines.append(
            f"{row.iteration},{row.action},{float(row.cycle_time)},"
            f"{row.area},{float(row.slack)},{row.meets_target}"
        )
    return "\n".join(lines) + "\n"


def summarize(result: ExplorationResult) -> str:
    """One-paragraph summary in the style of the paper's Section 6 prose."""
    first = result.initial_record
    last = result.final_record
    speed = result.speedup
    area = result.area_change
    direction = "overhead" if area >= 0 else "reduction"
    return (
        f"exploration: CT {float(first.cycle_time):.0f} -> "
        f"{float(last.cycle_time):.0f} cycles "
        f"({speed:.2f}x speed-up), area {first.area:.3f} -> {last.area:.3f} "
        f"({abs(area) * 100:.2f}% {direction}), "
        f"{len(result.history) - 1} iterations, stop: {result.stop_reason}"
    )
