"""Target sweeps: system-level Pareto frontiers out of ERMES runs.

Section 6 positions ERMES as enabling "richer design-space explorations".
One natural richer exploration is sweeping the target cycle time over a
range and collecting the best feasible configuration per target — yielding
the system-level latency/area Pareto frontier the compositional flow of
Liu & Carloni produces, but with reordering in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence, Union

from repro.dse.config import SystemConfiguration
from repro.dse.explorer import ExplorationResult, Explorer
from repro.perf.engine import PerformanceEngine

Number = Union[Fraction, float]


@dataclass(frozen=True)
class SweepPoint:
    """One target's outcome in a sweep."""

    target_cycle_time: Number
    cycle_time: Number
    area: float
    feasible: bool
    iterations: int
    result: ExplorationResult


def sweep_targets(
    config: SystemConfiguration,
    targets: Sequence[Number],
    **explorer_kwargs,
) -> list[SweepPoint]:
    """Run one exploration per target cycle time (descending order).

    Each exploration starts from the *previous* target's final
    configuration, mirroring how a designer tightens constraints
    incrementally; this also warm-starts the search.

    All targets share one :class:`~repro.perf.PerformanceEngine` (unless
    ``explorer_kwargs`` provides one): neighbouring targets revisit many of
    the same configurations, so the warm cache serves them directly.

    Pass ``profiler=DseProfiler()`` (see :mod:`repro.obs.profile`) to
    collect per-iteration snapshots across the whole sweep: the profiler
    is shared by every per-target Explorer, its ``sweep.*`` counters and
    timers cover the sweep loop itself, and ``snapshot.iteration`` resets
    per target while the snapshot list keeps accumulating.
    """
    from repro.ir import lower
    from repro.lint import preflight

    # One structural pre-flight and one lowering up front, hoisted out of
    # the per-target loop: failing here reports the codes before any ILP
    # work, the pre-flight success memo turns every per-target re-check
    # inside Explorer.run into a hash lookup, and the warm lowering memo
    # hands each target's first analysis its compiled program for free.
    preflight(config.system, config.ordering)
    lower(config.system, config.ordering)
    explorer_kwargs.setdefault("perf_engine", PerformanceEngine())
    profiler = explorer_kwargs.get("profiler")
    points: list[SweepPoint] = []
    current = config
    for target in sorted(targets, reverse=True):
        if profiler is not None:
            profiler.metrics.counter("sweep.targets").add(1)
            with profiler.metrics.timer("sweep.explore"):
                result = Explorer(
                    target_cycle_time=target, **explorer_kwargs
                ).run(current)
        else:
            result = Explorer(target_cycle_time=target, **explorer_kwargs).run(
                current
            )
        record = result.final_record
        points.append(
            SweepPoint(
                target_cycle_time=target,
                cycle_time=record.cycle_time,
                area=record.area,
                feasible=record.meets_target,
                iterations=len(result.history) - 1,
                result=result,
            )
        )
        if result.final is not None:
            current = result.final
    return points


def pareto_points(points: Iterable[SweepPoint]) -> list[SweepPoint]:
    """The non-dominated (cycle time, area) subset of a sweep's feasible
    outcomes, sorted by ascending cycle time."""
    feasible = sorted(
        (p for p in points if p.feasible),
        key=lambda p: (float(p.cycle_time), p.area),
    )
    frontier: list[SweepPoint] = []
    best_area = float("inf")
    for point in feasible:
        if point.area < best_area:
            if frontier and float(frontier[-1].cycle_time) == float(
                point.cycle_time
            ):
                continue
            frontier.append(point)
            best_area = point.area
    return frontier


def sweep_table(points: Iterable[SweepPoint], area_unit: float = 1.0,
                cycle_time_unit: float = 1.0) -> str:
    """Fixed-width rendering of a sweep."""
    lines = [
        f"{'target':>12} {'achieved':>12} {'area':>12} "
        f"{'feasible':>8} {'iters':>6}"
    ]
    for p in points:
        lines.append(
            f"{float(p.target_cycle_time) / cycle_time_unit:>12.1f} "
            f"{float(p.cycle_time) / cycle_time_unit:>12.1f} "
            f"{p.area / area_unit:>12.3f} "
            f"{str(p.feasible):>8} {p.iterations:>6}"
        )
    return "\n".join(lines) + "\n"
