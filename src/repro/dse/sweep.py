"""Target sweeps: system-level Pareto frontiers out of ERMES runs.

Section 6 positions ERMES as enabling "richer design-space explorations".
One natural richer exploration is sweeping the target cycle time over a
range and collecting the best feasible configuration per target — yielding
the system-level latency/area Pareto frontier the compositional flow of
Liu & Carloni produces, but with reordering in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence, Union

from typing import TYPE_CHECKING

from repro.dse.config import SystemConfiguration
from repro.dse.explorer import ExplorationResult, Explorer
from repro.perf.engine import PerformanceEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import ArtifactStore

Number = Union[Fraction, float]


@dataclass(frozen=True)
class SweepPoint:
    """One target's outcome in a sweep."""

    target_cycle_time: Number
    cycle_time: Number
    area: float
    feasible: bool
    iterations: int
    result: ExplorationResult
    #: Simulated steady-state cycle time of the final configuration, from
    #: the sweep-level batched cross-validation (``batch=True`` /
    #: ``ERMES_SIM_BATCH``); ``None`` when batching is off or the lane
    #: deadlocked.
    measured_cycle_time: Number | None = None


def sweep_targets(
    config: SystemConfiguration,
    targets: Sequence[Number],
    batch: bool | None = None,
    batch_iterations: int = 32,
    workers: int = 1,
    store: "ArtifactStore | None" = None,
    **explorer_kwargs,
) -> list[SweepPoint]:
    """Run one exploration per target cycle time (descending order).

    Each exploration starts from the *previous* target's final
    configuration, mirroring how a designer tightens constraints
    incrementally; this also warm-starts the search.

    All targets share one :class:`~repro.perf.PerformanceEngine` (unless
    ``explorer_kwargs`` provides one): neighbouring targets revisit many of
    the same configurations, so the warm cache serves them directly.

    Pass ``profiler=DseProfiler()`` (see :mod:`repro.obs.profile`) to
    collect per-iteration snapshots across the whole sweep: the profiler
    is shared by every per-target Explorer, its ``sweep.*`` counters and
    timers cover the sweep loop itself, and ``snapshot.iteration`` resets
    per target while the snapshot list keeps accumulating.

    With ``batch=True`` (default: the ``ERMES_SIM_BATCH`` environment
    knob) the sweep cross-validates its frontier by simulation after the
    loop: the per-target final configurations are grouped by ordering —
    they share one compiled structure per group — and replayed through
    one vectorized :class:`repro.sim.BatchSimulator` run per group, one
    lane per target.  Each point's
    :attr:`SweepPoint.measured_cycle_time` carries the simulated
    steady-state period (``None`` for a deadlocking lane).  Exploration
    outcomes are unchanged; batching only measures.

    With ``workers > 1`` the measurement pass fans out over a
    :class:`~repro.service.ShardedRunner` worker pool instead of the
    in-process batch engine — measurements are bit-identical either way
    — and a ``store`` makes every analysis and simulation artifact
    persistent: a re-run of the same sweep (in this process or any
    other) is served from disk.  The sweep's Pareto frontier itself is
    filed in the store too (kind ``"pareto"``, keyed by the starting
    design's IR hash and the target list).
    """
    from repro.ir import lower
    from repro.lint import preflight

    # One structural pre-flight and one lowering up front, hoisted out of
    # the per-target loop: failing here reports the codes before any ILP
    # work, the pre-flight success memo turns every per-target re-check
    # inside Explorer.run into a hash lookup, and the warm lowering memo
    # hands each target's first analysis its compiled program for free.
    preflight(config.system, config.ordering)
    base_ir_hash = lower(config.system, config.ordering).structural_hash
    explorer_kwargs.setdefault("perf_engine", PerformanceEngine(store=store))
    # One orbit-canonical verified set across all per-target explorers:
    # symmetric orderings are machine-checked once per sweep, not once
    # per target (the per-explorer dedup still reports per-run counts).
    explorer_kwargs.setdefault("sym_seen", set())
    profiler = explorer_kwargs.get("profiler")
    points: list[SweepPoint] = []
    current = config
    for target in sorted(targets, reverse=True):
        if profiler is not None:
            profiler.metrics.counter("sweep.targets").add(1)
            with profiler.metrics.timer("sweep.explore"):
                result = Explorer(
                    target_cycle_time=target,
                    workers=workers,
                    store=store,
                    **explorer_kwargs,
                ).run(current)
        else:
            result = Explorer(
                target_cycle_time=target,
                workers=workers,
                store=store,
                **explorer_kwargs,
            ).run(current)
        record = result.final_record
        points.append(
            SweepPoint(
                target_cycle_time=target,
                cycle_time=record.cycle_time,
                area=record.area,
                feasible=record.meets_target,
                iterations=len(result.history) - 1,
                result=result,
            )
        )
        if result.final is not None:
            current = result.final
    if batch is None:
        from repro.sim.batch import batch_enabled_by_env

        batch = batch_enabled_by_env()
    if batch and points:
        points = _measure_points(
            points, batch_iterations, profiler, workers=workers, store=store
        )
    if store is not None and points:
        _store_frontier(store, base_ir_hash, targets, points)
    return points


def _store_frontier(store, base_ir_hash, targets, points):
    """File the sweep's Pareto frontier in the artifact store.

    The payload is a compact summary (targets in, frontier out), not the
    full per-target exploration results — the store holds *answers*, and
    the answer of a sweep is its frontier.
    """
    from repro.store import params_digest

    digest = params_digest(
        {
            "op": "pareto",
            "targets": tuple(str(t) for t in sorted(targets)),
        }
    )
    frontier = pareto_points(points)
    payload = tuple(
        {
            "target_cycle_time": p.target_cycle_time,
            "cycle_time": p.cycle_time,
            "area": p.area,
            "feasible": p.feasible,
            "measured_cycle_time": p.measured_cycle_time,
        }
        for p in frontier
    )
    store.put(base_ir_hash, "pareto", digest, payload)


def _measure_points(points, batch_iterations, profiler, workers=1, store=None):
    """Replay each point's final configuration through the batch engine.

    Points whose finals share an ordering share a compiled structure and
    batch into one lock-step run (their selections are latency-only lane
    overrides).  Returns new :class:`SweepPoint` instances with
    ``measured_cycle_time`` attached.  ``workers > 1`` distributes the
    same measurements over a sharded pool (bit-identical results).
    """
    from dataclasses import replace

    from repro.dse.explorer import _ordering_fingerprint
    from repro.errors import SimulationDeadlock
    from repro.sim.batch import BatchLane, BatchSimulator

    groups: dict = {}
    for i, point in enumerate(points):
        cfg = point.result.final
        if cfg is None:
            continue
        groups.setdefault(
            _ordering_fingerprint(cfg.ordering), []
        ).append((i, cfg))
    metrics = profiler.metrics if profiler is not None else None
    measured: dict[int, Number | None] = {}
    if workers > 1:
        from repro.service.shard import ShardedRunner
        from repro.service.units import Candidate, WorkUnit

        with ShardedRunner(
            workers=workers, store=store, metrics=metrics
        ) as runner:
            for entries in groups.values():
                first = entries[0][1]
                units = [
                    WorkUnit(
                        index=lane,
                        candidate=Candidate.of(cfg.process_latencies()),
                        iterations=batch_iterations,
                    )
                    for lane, (_, cfg) in enumerate(entries)
                ]
                outcomes = runner.run(first.system, first.ordering, units)
                for (i, _), outcome in zip(entries, outcomes):
                    measured[i] = outcome.measured_cycle_time
        return [
            replace(point, measured_cycle_time=measured[i])
            if i in measured else point
            for i, point in enumerate(points)
        ]
    for entries in groups.values():
        first = entries[0][1]
        sinks = first.system.sinks()
        watch = sinks[0].name if sinks else first.system.process_names[0]
        lanes = [
            BatchLane(process_latencies=cfg.process_latencies())
            for _, cfg in entries
        ]
        outcomes = BatchSimulator(
            first.system, first.ordering, lanes=lanes, metrics=metrics
        ).run(iterations=batch_iterations, on_deadlock="capture")
        for (i, _), outcome in zip(entries, outcomes):
            measured[i] = (
                None
                if isinstance(outcome, SimulationDeadlock)
                else outcome.measured_cycle_time(watch)
            )
    return [
        replace(point, measured_cycle_time=measured[i])
        if i in measured else point
        for i, point in enumerate(points)
    ]


def pareto_points(points: Iterable[SweepPoint]) -> list[SweepPoint]:
    """The non-dominated (cycle time, area) subset of a sweep's feasible
    outcomes, sorted by ascending cycle time.

    Cycle times are compared **exactly**: the analysis engine produces
    :class:`fractions.Fraction` values, and Python compares ``Fraction``
    with ``Fraction``/``float`` without rounding.  Collapsing through
    ``float()`` here used to merge distinct cycle times that collide in
    double precision, silently dropping genuine frontier points
    (regression-tested in ``tests/dse/test_sweep.py``).
    """
    feasible = sorted(
        (p for p in points if p.feasible),
        key=lambda p: (p.cycle_time, p.area),
    )
    frontier: list[SweepPoint] = []
    best_area = float("inf")
    for point in feasible:
        if point.area < best_area:
            if frontier and frontier[-1].cycle_time == point.cycle_time:
                continue
            frontier.append(point)
            best_area = point.area
    return frontier


def sweep_table(points: Iterable[SweepPoint], area_unit: float = 1.0,
                cycle_time_unit: float = 1.0) -> str:
    """Fixed-width rendering of a sweep."""
    lines = [
        f"{'target':>12} {'achieved':>12} {'area':>12} "
        f"{'feasible':>8} {'iters':>6}"
    ]
    for p in points:
        lines.append(
            f"{float(p.target_cycle_time) / cycle_time_unit:>12.1f} "
            f"{float(p.cycle_time) / cycle_time_unit:>12.1f} "
            f"{p.area / area_unit:>12.3f} "
            f"{str(p.feasible):>8} {p.iterations:>6}"
        )
    return "\n".join(lines) + "\n"
