"""Design configurations: implementation selection + channel ordering.

A :class:`SystemConfiguration` is one point of the design space the ERMES
methodology explores: which Pareto implementation each process uses (hence
its latency and area) and in which order each process touches its
channels.  Configurations are immutable values; exploration steps derive
new ones with :meth:`with_selection` / :meth:`with_ordering`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.core.system import ChannelOrdering, SystemGraph
from repro.errors import ConfigurationError
from repro.hls.pareto import ImplementationLibrary


@dataclass(frozen=True)
class SystemConfiguration:
    """One design point.

    Attributes:
        system: The topology (its stored process latencies serve only as
            defaults for processes without a Pareto set — typically the
            testbench).
        library: Pareto sets per process.
        selection: ``process -> implementation name`` for every process in
            the library.
        ordering: The channel ordering in force.
    """

    system: SystemGraph
    library: ImplementationLibrary
    selection: Mapping[str, str]
    ordering: ChannelOrdering

    def __post_init__(self) -> None:
        for process in self.library.processes():
            if process not in self.selection:
                raise ConfigurationError(
                    f"no implementation selected for process {process!r}"
                )
        for process, impl in self.selection.items():
            self.library.of(process).by_name(impl)  # raises if unknown

    # ------------------------------------------------------------------

    @staticmethod
    def initial(
        system: SystemGraph,
        library: ImplementationLibrary,
        selection: Mapping[str, str] | None = None,
        ordering: ChannelOrdering | None = None,
        pick: str = "fastest",
    ) -> "SystemConfiguration":
        """Build a starting configuration.

        Args:
            selection: Explicit choices; unspecified processes use ``pick``.
            ordering: Defaults to declaration order.
            pick: ``"fastest"`` (the paper's M1-style start) or
                ``"smallest"`` (M2-style).
        """
        if pick not in ("fastest", "smallest"):
            raise ConfigurationError(f"unknown pick policy {pick!r}")
        chosen = dict(selection or {})
        for process in library.processes():
            if process not in chosen:
                pareto = library.of(process)
                chosen[process] = (
                    pareto.fastest.name if pick == "fastest" else pareto.smallest.name
                )
        return SystemConfiguration(
            system=system,
            library=library,
            selection=chosen,
            ordering=ordering or ChannelOrdering.declaration_order(system),
        )

    # ------------------------------------------------------------------

    def implementation(self, process: str):
        """The selected :class:`~repro.hls.implementation.Implementation`."""
        return self.library.of(process).by_name(self.selection[process])

    def process_latencies(self) -> dict[str, int]:
        """Latency of every process under this selection (library processes
        from their implementation, others from the system defaults)."""
        latencies = self.system.process_latencies()
        for process in self.library.processes():
            latencies[process] = self.implementation(process).latency
        return latencies

    def total_area(self) -> float:
        """Total area over the processes with Pareto sets."""
        return sum(
            self.implementation(process).area
            for process in self.library.processes()
        )

    def with_selection(
        self, changes: Mapping[str, str]
    ) -> "SystemConfiguration":
        merged = dict(self.selection)
        merged.update(changes)
        return replace(self, selection=merged)

    def with_ordering(self, ordering: ChannelOrdering) -> "SystemConfiguration":
        return replace(self, ordering=ordering)

    def selection_key(self) -> tuple[tuple[str, str], ...]:
        """Hashable identity of the selection (for visited-set cuts)."""
        return tuple(sorted(self.selection.items()))
