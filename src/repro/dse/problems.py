"""The two ILP formulations of Section 5.

Given the performance slack ``sp = TCT − CT``:

* **Area recovery** (``sp > 0``): choose implementations maximizing the
  cumulative area gain ``Σ x_{i,p}·a_{i,p}`` subject to
  ``Σ x_{i,p}·(−l_{i,p}) ≤ sp`` over the processes on the critical cycle —
  i.e. the critical cycle may slow down by at most the slack.  Every
  process is a candidate for shrinking; only critical-cycle processes are
  latency-constrained (slowing others can surface a *new* critical cycle,
  which is precisely the violation/recovery dynamic of Fig. 6 and is
  handled by the next iterations).
* **Timing optimization** (``sp <= 0``): choose implementations for the
  critical-cycle processes maximizing the cumulative latency gain
  ``Σ x_{i,p}·l_{i,p}``.  The optional ``area_budget`` activates the dual
  form the paper omits for space: all processes become candidates and the
  net area increase is capped, which lets the solver pay for speed on the
  critical cycle with area recovered elsewhere.

Latency/area gains are computed against the *current* selection, matching
the paper's definition ("the differences introduced by selecting
implementation i instead of the current one").
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.dse.config import SystemConfiguration
from repro.ilp.model import Choice, MultiChoiceProblem

#: Constraint names used by the formulations.
LATENCY_BUDGET = "latency_loss"
AREA_BUDGET = "area_increase"


def _choices_for(
    config: SystemConfiguration,
    process: str,
    latency_constrained: bool,
    objective: str,
    latency_cap: int | None = None,
) -> list[Choice]:
    """Build the choice list of one process group.

    ``objective`` is ``"area"`` (area gain) or ``"latency"`` (latency
    gain); the complementary quantity goes into constraint uses.
    ``latency_cap`` drops implementations whose latency would push the
    process's own serial cycle past the target cycle time (the current
    implementation is always kept so the group stays feasible).
    """
    current = config.implementation(process)
    choices = []
    for impl in config.library.of(process):
        if (
            latency_cap is not None
            and impl.latency > latency_cap
            and impl.name != current.name
        ):
            continue
        l_gain = current.latency - impl.latency
        a_gain = current.area - impl.area
        uses: dict[str, float] = {}
        if latency_constrained:
            uses[LATENCY_BUDGET] = float(-l_gain)  # latency *loss*
        uses[AREA_BUDGET] = float(-a_gain)  # area *increase*
        choices.append(
            Choice(
                name=impl.name,
                objective=float(a_gain if objective == "area" else l_gain),
                uses=uses,
            )
        )
    return choices


def area_recovery_problem(
    config: SystemConfiguration,
    critical_processes: Iterable[str],
    slack: float,
    latency_caps: Mapping[str, int] | None = None,
) -> MultiChoiceProblem:
    """Maximize area gain, keeping the critical cycle within the slack.

    ``latency_caps`` optionally bounds each process's candidate latency
    (see :func:`process_latency_caps`), implementing the "maintaining
    CT < TCT" side of the problem statement for the cycles the coupling
    constraint does not see.
    """
    critical = {p for p in critical_processes if config.library.has(p)}
    caps = latency_caps or {}
    problem = MultiChoiceProblem(maximize=True)
    problem.add_constraint(LATENCY_BUDGET, "<=", float(slack))
    for process in config.library.processes():
        problem.add_group(
            process,
            _choices_for(
                config,
                process,
                latency_constrained=process in critical,
                objective="area",
                latency_cap=caps.get(process),
            ),
        )
    return problem


def process_latency_caps(
    config: SystemConfiguration, target_cycle_time: float
) -> dict[str, int]:
    """Largest admissible latency per process under the target cycle time.

    Every process ``p`` induces the serial cycle *gets → compute → puts* in
    the TMG, carrying one token, so the system cycle time is at least the
    sum of the delays on that chain: ``latency(p)`` plus the transition
    delay of each statement.  A rendezvous channel contributes its transfer
    latency on both sides; a *buffered* channel splits into a put
    transition carrying the latency and a zero-delay get transition
    (see :mod:`repro.model.build`), so it contributes its latency to the
    **producer's** chain only — the consumer dequeues instantly.  Summing
    the raw latency of every adjacent channel would overstate the bound for
    consumers behind FIFOs and wrongly exclude feasible implementations.

    Any implementation pushing the bound past the target can never appear
    in a configuration meeting it — dropping such choices up front keeps
    area recovery from wandering into hopeless regions (inter-process
    cycles can still cause the occasional, small violation the Fig. 6
    narrative shows).

    The caps depend only on the target and on channel latencies/bufferings;
    neither implementation selection nor channel reordering changes them,
    so one computation is valid for an entire exploration run.
    """
    caps: dict[str, int] = {}
    system = config.system
    for process in config.library.processes():
        io_latency = sum(
            0 if system.channel(c).is_buffered else system.channel(c).latency
            for c in system.input_channels(process)
        ) + sum(
            system.channel(c).latency for c in system.output_channels(process)
        )
        caps[process] = max(0, int(target_cycle_time) - io_latency)
    return caps


def timing_optimization_problem(
    config: SystemConfiguration,
    critical_processes: Iterable[str],
    area_budget: float | None = None,
    latency_caps: Mapping[str, int] | None = None,
) -> MultiChoiceProblem:
    """Maximize the latency gain of the critical-cycle processes.

    Without ``area_budget``, only critical-cycle processes are decision
    groups (others keep their current implementation).  With a budget, all
    processes participate and the net area increase is capped.
    """
    critical = [p for p in critical_processes if config.library.has(p)]
    caps = latency_caps or {}
    problem = MultiChoiceProblem(maximize=True)
    if area_budget is not None:
        problem.add_constraint(AREA_BUDGET, "<=", float(area_budget))
        groups = list(config.library.processes())
    else:
        groups = critical
    critical_set = set(critical)
    for process in groups:
        choices = _choices_for(
            config,
            process,
            latency_constrained=False,
            objective="latency",
            latency_cap=caps.get(process),
        )
        if process not in critical_set:
            # Off-cycle latency changes do not help the objective; their
            # role is purely to free area.  Zero their objective (with a
            # tiny preference for keeping the current implementation so
            # the solver does not churn them gratuitously) — they move
            # only when the area budget requires it.
            current = config.selection[process]
            choices = [
                Choice(c.name, 0.0 if c.name == current else -1e-6, c.uses)
                for c in choices
            ]
        problem.add_group(process, choices)
    return problem
