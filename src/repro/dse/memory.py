"""Memory co-optimization: the paper's stated future work.

"Future work will involve the co-optimization of the memory elements."
Channel buffers are the memory elements of a communication-centric SoC:
every FIFO slot costs storage proportional to the channel's data volume.
This module closes the loop the paper leaves open — it co-optimizes the
computation micro-architectures (ERMES), the channel ordering (Algorithm
1), and the channel buffer depths (``repro.sizing``) under one combined
logic + memory area account:

1. run the ERMES exploration at the target cycle time;
2. if the target is still missed, buy the remaining performance with FIFO
   slots on the capacity-limited critical cycles, charging their memory
   area;
3. if (or once) the target is met, trim buffer slots that the target does
   not need, recovering memory area.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Mapping, Union

from repro.core.system import Channel, SystemGraph
from repro.dse.config import SystemConfiguration
from repro.errors import ReproError
from repro.dse.explorer import ExplorationResult, Explorer
from repro.sizing.capacity import (
    cycle_time_with_capacities,
    minimize_buffers,
    size_buffers,
)

Number = Union[Fraction, float]

#: Memory-area model: µm² per buffer slot of a given channel.
SlotArea = Callable[[Channel], float]


def volume_proportional_slot_area(
    area_per_latency_cycle: float = 40.0,
    min_slot_area: float | None = None,
) -> SlotArea:
    """Default memory model: a slot stores one data item, whose size is
    proportional to the channel's transfer latency (latency = data volume
    over the channel's physical width, so latency × width ∝ volume; with
    width folded into the constant this is the right first-order model).

    The per-slot cost is floored at ``min_slot_area`` (default: one
    latency cycle's worth, ``area_per_latency_cycle``): even a
    zero-volume item occupies a physical register, so no slot is ever
    free — without the floor, ``co_optimize`` would buy unlimited slots
    on zero-latency buffered channels at zero charge.
    """
    if min_slot_area is None:
        min_slot_area = area_per_latency_cycle

    def slot_area(channel: Channel) -> float:
        return max(area_per_latency_cycle * channel.latency, min_slot_area)

    return slot_area


@dataclass(frozen=True)
class CoOptimizationResult:
    """Outcome of a logic + memory co-optimization."""

    configuration: SystemConfiguration
    capacities: Mapping[str, int]
    cycle_time: Number
    logic_area: float
    memory_area: float
    feasible: bool
    exploration: ExplorationResult
    sized_channels: tuple[str, ...] = field(default_factory=tuple)

    @property
    def total_area(self) -> float:
        return self.logic_area + self.memory_area


def memory_area(
    system: SystemGraph,
    capacities: Mapping[str, int],
    slot_area: SlotArea,
) -> float:
    """Total buffer storage area for the given capacities.

    Rendezvous channels (capacity 0 in ``capacities`` or absent) cost
    nothing; each slot of a buffered channel costs ``slot_area(channel)``.
    """
    total = 0.0
    for name, slots in capacities.items():
        if slots > 0:
            total += slots * slot_area(system.channel(name))
    return total


def _escalate_with_buffers(
    config: SystemConfiguration,
    target_cycle_time: Number,
    max_capacity: int,
):
    """Fastest implementations + buffer sizing, then greedy logic recovery.

    Returns ``(configuration, latency-applied system, sizing result)``.
    The configuration steps back toward slower/smaller implementations
    wherever the sized system's cycle time allows, so the escalation pays
    only for the logic the target actually needs.
    """
    from repro.ordering.algorithm import channel_ordering

    fastest = {
        p: config.library.of(p).fastest.name
        for p in config.library.processes()
    }
    candidate = config.with_selection(fastest)
    system = candidate.system.with_process_latencies(
        candidate.process_latencies()
    )
    try:
        ordering = channel_ordering(system, initial_ordering=candidate.ordering)
        candidate = candidate.with_ordering(ordering)
        system = candidate.system.with_process_latencies(
            candidate.process_latencies()
        )
    except ReproError:
        # Only the domain failures (deadlock, infeasibility, validation)
        # keep the current valid ordering; programming errors propagate.
        pass

    sized = size_buffers(
        system, target_cycle_time, ordering=candidate.ordering,
        max_capacity=max_capacity,
    )
    if not sized.feasible:
        return candidate, system, sized

    # Logic recovery: walk each process toward smaller implementations
    # while the sized system still meets the target (largest area first).
    capacities = dict(sized.capacities)
    for process in sorted(
        config.library.processes(),
        key=lambda p: -candidate.implementation(p).area,
    ):
        pareto = config.library.of(process)
        for implementation in pareto:  # fastest-first; walk to slower
            trial = candidate.with_selection({process: implementation.name})
            trial_system = trial.system.with_process_latencies(
                trial.process_latencies()
            )
            ct = cycle_time_with_capacities(
                trial_system, capacities, trial.ordering
            )
            if ct <= target_cycle_time:
                candidate = trial
                system = trial_system
        # keep the slowest implementation that still met the target; the
        # loop above already left `candidate` at it.

    sized = size_buffers(
        system, target_cycle_time, ordering=candidate.ordering,
        max_capacity=max_capacity,
    )
    return candidate, system, sized


def co_optimize(
    config: SystemConfiguration,
    target_cycle_time: Number,
    slot_area: SlotArea | None = None,
    max_capacity: int = 16,
    **explorer_kwargs,
) -> CoOptimizationResult:
    """Co-optimize implementations, ordering, and buffer depths.

    Args:
        config: Starting configuration (all channels as declared —
            typically rendezvous).
        target_cycle_time: The TCT constraint.
        slot_area: Memory model (default
            :func:`volume_proportional_slot_area`).
        max_capacity: Per-channel buffer ceiling.
        explorer_kwargs: Forwarded to :class:`~repro.dse.explorer.Explorer`.
    """
    slot_area = slot_area or volume_proportional_slot_area()

    # Phase 1: logic exploration (ERMES proper).
    exploration = Explorer(
        target_cycle_time=target_cycle_time, **explorer_kwargs
    ).run(config)
    final = exploration.final if exploration.final is not None else config
    latencies = final.process_latencies()
    system = final.system.with_process_latencies(latencies)
    record = exploration.final_record

    base_capacities = {
        c.name: max(c.capacity, c.initial_tokens) for c in system.channels
    }

    if record.meets_target:
        # Phase 3 directly: trim any declared buffering the target does not
        # need (keeps pre-loaded floors).
        trimmed = minimize_buffers(
            system, target_cycle_time, ordering=final.ordering,
            max_capacity=max_capacity,
        ) if any(base_capacities.values()) else None
        capacities = (
            dict(trimmed.capacities) if trimmed is not None and trimmed.feasible
            else dict(base_capacities)
        )
        cycle_time = (
            trimmed.cycle_time if trimmed is not None and trimmed.feasible
            else record.cycle_time
        )
        return CoOptimizationResult(
            configuration=final,
            capacities=capacities,
            cycle_time=cycle_time,
            logic_area=final.total_area(),
            memory_area=memory_area(system, capacities, slot_area),
            feasible=True,
            exploration=exploration,
            sized_channels=(),
        )

    # Phase 2: logic alone missed the target — buy the rest with buffers.
    # Sub-floor targets need both levers at once: the ERMES latency caps
    # (correct for logic-only optimization) forbid implementations whose
    # serial rendezvous cycle exceeds the target, yet with buffers those
    # cycles shorten.  So escalate to the fastest implementations before
    # sizing, then claw logic area back under the sized system.
    sized = size_buffers(
        system, target_cycle_time, ordering=final.ordering,
        max_capacity=max_capacity,
    )
    if not sized.feasible:
        final, system, sized = _escalate_with_buffers(
            final, target_cycle_time, max_capacity
        )
    if sized.feasible:
        trimmed = minimize_buffers(
            system, target_cycle_time, ordering=final.ordering,
            max_capacity=max_capacity,
        )
        capacities = dict(trimmed.capacities)
        # Buffer sizing's floor is one slot per channel; channels whose
        # slot the target does not actually need should fall back to the
        # free rendezvous protocol — most expensive slots first.
        for name in sorted(
            capacities,
            key=lambda n: -slot_area(system.channel(n)),
        ):
            if capacities[name] != 1 or system.channel(name).initial_tokens:
                continue
            capacities[name] = 0
            if (
                cycle_time_with_capacities(system, capacities, final.ordering)
                > target_cycle_time
            ):
                capacities[name] = 1
        cycle_time = cycle_time_with_capacities(
            system, capacities, final.ordering
        )
        feasible = True
    else:
        capacities = dict(sized.capacities)
        cycle_time = sized.cycle_time
        feasible = False

    grown = tuple(
        sorted(
            name
            for name, slots in capacities.items()
            if slots > base_capacities.get(name, 0)
        )
    )
    return CoOptimizationResult(
        configuration=final,
        capacities=capacities,
        cycle_time=cycle_time,
        logic_area=final.total_area(),
        memory_area=memory_area(system, capacities, slot_area),
        feasible=feasible,
        exploration=exploration,
        sized_channels=grown,
    )
