"""ERMES design-space exploration (Section 5): configurations, the two ILP
formulations, the iterative explorer, and reporting."""

from repro.dse.config import SystemConfiguration
from repro.dse.explorer import (
    ExplorationResult,
    Explorer,
    IterationRecord,
    explore,
)
from repro.dse.problems import (
    AREA_BUDGET,
    LATENCY_BUDGET,
    area_recovery_problem,
    timing_optimization_problem,
)
from repro.dse.memory import (
    CoOptimizationResult,
    co_optimize,
    memory_area,
    volume_proportional_slot_area,
)
from repro.dse.report import iteration_table, series, summarize, to_csv
from repro.dse.sweep import SweepPoint, pareto_points, sweep_table, sweep_targets

__all__ = [
    "AREA_BUDGET",
    "CoOptimizationResult",
    "ExplorationResult",
    "Explorer",
    "IterationRecord",
    "LATENCY_BUDGET",
    "SweepPoint",
    "SystemConfiguration",
    "area_recovery_problem",
    "co_optimize",
    "explore",
    "iteration_table",
    "memory_area",
    "pareto_points",
    "series",
    "summarize",
    "sweep_table",
    "sweep_targets",
    "timing_optimization_problem",
    "to_csv",
    "volume_proportional_slot_area",
]
