"""Terminal plotting for exploration trajectories (the Fig. 6 panels).

Pure-text rendering — no plotting dependency — of the two series the paper
plots per exploration: cycle time and area against the iteration index,
with the target-cycle-time constraint line.
"""

from __future__ import annotations

from typing import Sequence

from repro.dse.explorer import ExplorationResult


def _scale(value: float, lo: float, hi: float, width: int) -> int:
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    return max(0, min(width - 1, round(position * (width - 1))))


def ascii_series(
    values: Sequence[float],
    width: int = 48,
    height: int = 10,
    marker: str = "o",
    hline: float | None = None,
) -> str:
    """Plot one series as ASCII, optionally with a horizontal rule."""
    if not values:
        return "(empty series)\n"
    extent = list(values) + ([hline] if hline is not None else [])
    lo = min(extent)
    hi = max(extent)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]

    if hline is not None:
        row = height - 1 - _scale(hline, lo, hi, height)
        for col in range(width):
            grid[row][col] = "-"

    n = len(values)
    for index, value in enumerate(values):
        col = _scale(index, 0, max(1, n - 1), width)
        row = height - 1 - _scale(value, lo, hi, height)
        grid[row][col] = marker

    lines = []
    for row_index, row in enumerate(grid):
        level = hi - (hi - lo) * row_index / (height - 1)
        lines.append(f"{level:>12.1f} |" + "".join(row))
    lines.append(" " * 13 + "+" + "-" * width)
    lines.append(" " * 14 + f"0 .. {n - 1} (iterations)")
    return "\n".join(lines) + "\n"


def plot_exploration(
    result: ExplorationResult,
    cycle_time_unit: float = 1.0,
    area_unit: float = 1.0,
    width: int = 48,
) -> str:
    """Render one exploration as the paper's two stacked panels."""
    cycle_times = [float(r.cycle_time) / cycle_time_unit for r in result.history]
    areas = [r.area / area_unit for r in result.history]
    target = float(result.target_cycle_time) / cycle_time_unit

    out = ["cycle time (constraint marked '-'):"]
    out.append(ascii_series(cycle_times, width=width, hline=target))
    out.append("area:")
    out.append(ascii_series(areas, width=width, marker="x"))
    return "\n".join(out)
