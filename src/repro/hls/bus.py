"""Bus-width optimization for channels.

Channel latencies are not free parameters: they follow from the data
volume and the physical width the HLS tool gives the channel
(:mod:`repro.hls.characterize`).  Widening a bus shortens the transfer at
a wiring-area cost — a per-channel knob exactly analogous to the
per-process implementation choice of Section 5.  This module optimizes
those widths against a target cycle time: greedy widening of the
best-value critical channel, then a narrowing trim pass, mirroring the
structure of :mod:`repro.sizing`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence, Union

from repro.core.system import Channel, ChannelOrdering, SystemGraph
from repro.errors import ValidationError
from repro.hls.characterize import ChannelPhysics, transfer_latency
from repro.model.performance import analyze_system

Number = Union[Fraction, float]


@dataclass(frozen=True)
class WidthResult:
    """Outcome of a bus-width optimization.

    Attributes:
        widths: Chosen elements-per-cycle per sized channel.
        latencies: Resulting transfer latencies.
        cycle_time: Achieved cycle time.
        wire_area: Total wiring cost (``area_per_lane × Σ widths``).
        feasible: Whether the target was met.
    """

    widths: Mapping[str, int]
    latencies: Mapping[str, int]
    cycle_time: Number
    wire_area: float
    feasible: bool


def _apply_widths(
    system: SystemGraph,
    volumes: Mapping[str, int],
    widths: Mapping[str, int],
) -> SystemGraph:
    clone = system.copy()
    for name, width in widths.items():
        channel = clone.channel(name)
        latency = transfer_latency(
            volumes[name], ChannelPhysics(elements_per_cycle=width)
        )
        clone._channels[name] = Channel(
            channel.name, channel.producer, channel.consumer,
            latency=latency, capacity=channel.capacity,
            initial_tokens=channel.initial_tokens,
        )
    return clone


def optimize_widths(
    system: SystemGraph,
    volumes: Mapping[str, int],
    target_cycle_time: Number,
    widths: Sequence[int] = (8, 16, 32, 64),
    area_per_lane: float = 1.0,
    ordering: ChannelOrdering | None = None,
    process_latencies: Mapping[str, int] | None = None,
) -> WidthResult:
    """Choose per-channel bus widths meeting a target cycle time cheaply.

    Args:
        system: The system; channels named in ``volumes`` are sized, the
            rest keep their declared latencies.
        volumes: Data elements per logical transfer, per sized channel.
        target_cycle_time: The TCT constraint.
        widths: The width menu the flow may pick from (ascending).
        area_per_lane: Wiring cost per element lane.
        ordering: Statement orders (default declaration).
        process_latencies: Optional implementation-selection overrides.
    """
    if not volumes:
        raise ValidationError("no channels to size (volumes is empty)")
    menu = sorted(set(widths))
    if not menu or menu[0] < 1:
        raise ValidationError("widths must be positive")
    for name in volumes:
        system.channel(name)  # raises on unknown channels

    current = {name: menu[0] for name in volumes}

    def evaluate(assignment: Mapping[str, int]):
        sized = _apply_widths(system, volumes, assignment)
        return analyze_system(
            sized, ordering, process_latencies=process_latencies
        )

    # Greedy widening of the best delay-per-area critical channel.
    for _ in range(len(volumes) * len(menu) + 1):
        performance = evaluate(current)
        if performance.cycle_time <= target_cycle_time:
            break
        best_name = None
        best_value = 0.0
        for name in performance.critical_channels:
            if name not in volumes:
                continue
            width = current[name]
            index = menu.index(width)
            if index + 1 == len(menu):
                continue
            next_width = menu[index + 1]
            gain = transfer_latency(
                volumes[name], ChannelPhysics(elements_per_cycle=width)
            ) - transfer_latency(
                volumes[name], ChannelPhysics(elements_per_cycle=next_width)
            )
            cost = area_per_lane * (next_width - width)
            value = gain / cost if cost > 0 else float("inf")
            if best_name is None or value > best_value:
                best_name, best_value = name, value
        if best_name is None:
            # Critical cycle not width-limited (or menu exhausted there).
            return _result(system, volumes, current, performance,
                           area_per_lane, feasible=False)
        current[best_name] = menu[menu.index(current[best_name]) + 1]
    else:
        performance = evaluate(current)
        if performance.cycle_time > target_cycle_time:
            return _result(system, volumes, current, performance,
                           area_per_lane, feasible=False)

    # Trim pass: narrow the widest channels while the target holds.
    for name in sorted(current, key=lambda n: -current[n]):
        while current[name] > menu[0]:
            narrower = menu[menu.index(current[name]) - 1]
            trial = dict(current)
            trial[name] = narrower
            if evaluate(trial).cycle_time <= target_cycle_time:
                current[name] = narrower
            else:
                break
    performance = evaluate(current)
    return _result(system, volumes, current, performance, area_per_lane,
                   feasible=True)


def _result(system, volumes, widths, performance, area_per_lane, feasible):
    latencies = {
        name: transfer_latency(
            volumes[name], ChannelPhysics(elements_per_cycle=width)
        )
        for name, width in widths.items()
    }
    return WidthResult(
        widths=dict(widths),
        latencies=latencies,
        cycle_time=performance.cycle_time,
        wire_area=area_per_lane * sum(widths.values()),
        feasible=feasible,
    )
