"""Micro-architecture implementations: the unit of HLS design choice.

Running HLS on one process with different knob settings (loop unrolling,
loop pipelining, resource sharing, ...) yields alternative implementations
that trade computation latency against area.  The methodology consumes only
the ``(latency, area)`` pairs of the Pareto-optimal ones (Section 5); the
knobs are retained for provenance and reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ValidationError


@dataclass(frozen=True)
class Implementation:
    """One synthesized micro-architecture of a process.

    Attributes:
        name: Identifier unique within the process's implementation set.
        latency: Computation-phase latency in clock cycles.
        area: Area occupation in µm² (the unit only matters relatively;
            the MPEG-2 case study reports mm² = 1e6 µm²).
        knobs: The HLS knob settings that produced this point.
    """

    name: str
    latency: int
    area: float
    knobs: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValidationError(
                f"implementation {self.name!r}: latency must be >= 0"
            )
        if self.area < 0:
            raise ValidationError(f"implementation {self.name!r}: area must be >= 0")

    def dominates(self, other: "Implementation") -> bool:
        """Pareto dominance: no worse on both axes, better on at least one."""
        if self.latency > other.latency or self.area > other.area:
            return False
        return self.latency < other.latency or self.area < other.area


def latency_gain(current: Implementation, candidate: Implementation) -> int:
    """``l_{i,p}``: positive when the candidate is faster than the current."""
    return current.latency - candidate.latency


def area_gain(current: Implementation, candidate: Implementation) -> float:
    """``a_{i,p}``: positive when the candidate is smaller than the current."""
    return current.area - candidate.area
