"""HLS knob model: generating latency/area design points.

The paper derives alternative micro-architectures per process by sweeping
HLS knobs — "loop unrolling, loop pipelining, resource sharing, etc." —
and keeps the Pareto-optimal ones.  Without a commercial HLS tool, this
module provides a calibrated synthetic equivalent: a multiplicative
performance/cost model over knob settings that produces realistic convex
frontiers (speedups with diminishing returns, super-linear area for
aggressive parallelism), deterministic for a given seed.

The absolute numbers are synthetic; what matters for the methodology is
the *structure* of the frontier (monotone latency/area trade-off, a few to
a dozen points per process), which this model reproduces.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from repro.hls.implementation import Implementation
from repro.hls.pareto import ParetoSet, pareto_filter


@dataclass(frozen=True)
class KnobSpace:
    """The knob settings swept for one process.

    Attributes:
        unroll_factors: Loop unrolling factors (1 = off).
        pipeline: Loop pipelining initiation intervals; ``0`` disables
            pipelining, smaller positive II is faster and larger.
        sharing_levels: Resource-sharing aggressiveness (0 = none — fast
            and large; higher levels shrink area but serialize operators).
    """

    unroll_factors: Sequence[int] = (1, 2, 4, 8)
    pipeline: Sequence[int] = (0, 2, 1)
    sharing_levels: Sequence[int] = (0, 1, 2)


# Calibration of the synthetic cost model.
_UNROLL_SPEEDUP_EXP = 0.85  # speedup = u ** exp (sub-linear)
_UNROLL_AREA_EXP = 0.72  # area multiplier = u ** exp
_PIPELINE_SPEEDUP = {0: 1.0, 1: 2.4, 2: 1.7}
_PIPELINE_AREA = {0: 1.0, 1: 1.55, 2: 1.25}
_SHARING_SLOWDOWN = {0: 1.0, 1: 1.2, 2: 1.45}
_SHARING_AREA = {0: 1.0, 1: 0.78, 2: 0.62}


def synthesize_points(
    process: str,
    base_latency: int,
    base_area: float,
    knobs: KnobSpace | None = None,
    seed: int = 0,
    jitter: float = 0.05,
) -> list[Implementation]:
    """Generate the design points of one process across a knob space.

    ``base_latency``/``base_area`` describe the un-optimized
    implementation (no unrolling, no pipelining, no sharing).  A small
    deterministic jitter decorrelates processes so frontiers are not all
    scalar multiples of each other.
    """
    knobs = knobs or KnobSpace()
    rng = random.Random((hash(process) ^ seed) & 0xFFFFFFFF)
    points = []
    index = 0
    for unroll in knobs.unroll_factors:
        for pipeline in knobs.pipeline:
            for sharing in knobs.sharing_levels:
                speedup = (
                    unroll**_UNROLL_SPEEDUP_EXP
                    * _PIPELINE_SPEEDUP[pipeline]
                    / _SHARING_SLOWDOWN[sharing]
                )
                area_mult = (
                    unroll**_UNROLL_AREA_EXP
                    * _PIPELINE_AREA[pipeline]
                    * _SHARING_AREA[sharing]
                )
                noise = 1.0 + rng.uniform(-jitter, jitter)
                latency = max(1, round(base_latency / speedup * noise))
                area = base_area * area_mult * (2.0 - noise)
                points.append(
                    Implementation(
                        name=f"{process}.v{index}",
                        latency=latency,
                        area=round(area, 2),
                        knobs={
                            "unroll": unroll,
                            "pipeline_ii": pipeline,
                            "sharing": sharing,
                        },
                    )
                )
                index += 1
    return points


def synthesize_pareto_set(
    process: str,
    base_latency: int,
    base_area: float,
    knobs: KnobSpace | None = None,
    seed: int = 0,
    max_points: int | None = None,
) -> ParetoSet:
    """Generate and Pareto-filter the implementation set of one process.

    ``max_points`` optionally thins the frontier to its ``n`` most spread
    points (always keeping the fastest and the smallest), modelling design
    teams that characterize only a handful of alternatives.
    """
    points = pareto_filter(
        synthesize_points(process, base_latency, base_area, knobs, seed)
    )
    if max_points is not None and len(points) > max_points >= 2:
        # Keep endpoints, subsample the middle evenly (dedup by name: the
        # floor-stepped indices can repeat when the middle is short).
        chosen = [points[0]]
        middle = points[1:-1]
        need = max_points - 2
        if need > 0 and middle:
            step = len(middle) / need
            for i in range(need):
                candidate = middle[min(len(middle) - 1, math.floor(i * step))]
                if candidate.name != chosen[-1].name:
                    chosen.append(candidate)
        chosen.append(points[-1])
        points = pareto_filter(chosen)
    return ParetoSet.from_points(process, points, filter_dominated=False)
