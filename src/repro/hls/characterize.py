"""Channel latency characterization.

Section 6: "We performed the characterization of the channel latencies
based on the quantity of the data to be transferred and the physical
constraints imposed by the HLS tool for the channels.  These latencies
range from 1 to 5,280 clock cycles and do not depend on channel ordering
or the process implementations."

A data item (e.g. a frame, a macroblock, a coefficient block) is
decomposed into packets moved at the channel's physical rate; the
*minimum* latency to complete one logical transfer is the packet count
(footnote 4 of the paper).  For the MPEG-2 image size the paper's maximum,
5,280 cycles, is exactly one 352×240 luma frame moved 16 pixels per cycle
— the calibration this module defaults to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True)
class ChannelPhysics:
    """Physical constraints the HLS tool imposes on a channel.

    Attributes:
        elements_per_cycle: Data elements (pixels, coefficients, bytes...)
            the channel moves per clock cycle.
        setup_cycles: Fixed handshake overhead per logical transfer.
    """

    elements_per_cycle: int = 16
    setup_cycles: int = 0

    def __post_init__(self) -> None:
        if self.elements_per_cycle < 1:
            raise ValidationError("elements_per_cycle must be >= 1")
        if self.setup_cycles < 0:
            raise ValidationError("setup_cycles must be >= 0")


def transfer_latency(
    elements: int, physics: ChannelPhysics | None = None
) -> int:
    """Minimum cycles to complete one logical transfer of ``elements``
    data elements (at least 1 even for empty control tokens)."""
    if elements < 0:
        raise ValidationError("elements must be >= 0")
    physics = physics or ChannelPhysics()
    packets = math.ceil(elements / physics.elements_per_cycle)
    return max(1, physics.setup_cycles + packets)


# Convenience volumes for the MPEG-2 case study at 352x240 (SIF).
FRAME_WIDTH = 352
FRAME_HEIGHT = 240
LUMA_FRAME_ELEMENTS = FRAME_WIDTH * FRAME_HEIGHT  # 84,480 pixels
CHROMA_FRAME_ELEMENTS = LUMA_FRAME_ELEMENTS // 4  # 4:2:0 per chroma plane
MACROBLOCK_ELEMENTS = 16 * 16  # one luma macroblock
BLOCK_ELEMENTS = 8 * 8  # one coefficient block
MOTION_VECTOR_ELEMENTS = 2  # (dx, dy)


def frame_latency(physics: ChannelPhysics | None = None) -> int:
    """Latency of a full luma frame transfer (the paper's 5,280 maximum
    with the default 16 elements/cycle)."""
    return transfer_latency(LUMA_FRAME_ELEMENTS, physics)
