"""Pareto sets of implementations per process.

A :class:`ParetoSet` holds the latency/area frontier of one process.  The
methodology assumes frontiers are Pareto-optimal ("since the
implementations are Pareto optimal, moving towards a positive area gain
corresponds to a negative latency gain and vice versa"), so construction
filters dominated points and sorts by latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import ConfigurationError, ValidationError
from repro.hls.implementation import Implementation


def pareto_filter(points: Iterable[Implementation]) -> list[Implementation]:
    """Keep only non-dominated implementations, sorted by ascending latency.

    Ties on both axes keep the first-seen point (stable); among equal
    latencies only the smallest area survives.
    """
    by_latency = sorted(points, key=lambda i: (i.latency, i.area))
    frontier: list[Implementation] = []
    best_area = float("inf")
    for point in by_latency:
        if point.area < best_area:
            # Equal-latency, larger-area points are dominated; equal-area,
            # larger-latency points too (list is latency-sorted).
            if frontier and frontier[-1].latency == point.latency:
                continue
            frontier.append(point)
            best_area = point.area
    return frontier


@dataclass(frozen=True)
class ParetoSet:
    """The Pareto-optimal implementations of one process.

    Points are stored by ascending latency, hence descending area: index 0
    is the fastest/largest point, index -1 the slowest/smallest.
    """

    process: str
    points: tuple[Implementation, ...]

    @staticmethod
    def from_points(
        process: str, points: Iterable[Implementation], filter_dominated: bool = True
    ) -> "ParetoSet":
        candidates = list(points)
        if not candidates:
            raise ValidationError(f"process {process!r}: empty implementation set")
        names = [p.name for p in candidates]
        if len(set(names)) != len(names):
            raise ValidationError(
                f"process {process!r}: duplicate implementation names"
            )
        if filter_dominated:
            candidates = pareto_filter(candidates)
        else:
            candidates = sorted(candidates, key=lambda i: (i.latency, i.area))
            for earlier, later in zip(candidates, candidates[1:]):
                if earlier.dominates(later) or later.dominates(earlier):
                    raise ValidationError(
                        f"process {process!r}: points {earlier.name!r} and "
                        f"{later.name!r} are not Pareto-independent"
                    )
        return ParetoSet(process=process, points=tuple(candidates))

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[Implementation]:
        return iter(self.points)

    def by_name(self, name: str) -> Implementation:
        for point in self.points:
            if point.name == name:
                return point
        raise ConfigurationError(
            f"process {self.process!r} has no implementation {name!r}"
        )

    @property
    def fastest(self) -> Implementation:
        return self.points[0]

    @property
    def smallest(self) -> Implementation:
        return self.points[-1]

    def faster_than(self, latency: int) -> tuple[Implementation, ...]:
        """Points strictly faster than ``latency``."""
        return tuple(p for p in self.points if p.latency < latency)

    def at_most_area(self, area: float) -> tuple[Implementation, ...]:
        """Points with area at most ``area``."""
        return tuple(p for p in self.points if p.area <= area)


class ImplementationLibrary:
    """The Pareto sets of every process in a system.

    The library is the "Pareto-optimal Implementations" input of Fig. 5,
    produced by the compositional HLS pre-characterization (Liu & Carloni
    in the paper; :mod:`repro.hls.knobs` here).
    """

    def __init__(self, sets: Iterable[ParetoSet] = ()):
        self._sets: dict[str, ParetoSet] = {}
        for pareto in sets:
            self.add(pareto)

    def add(self, pareto: ParetoSet) -> None:
        if pareto.process in self._sets:
            raise ValidationError(
                f"duplicate Pareto set for process {pareto.process!r}"
            )
        self._sets[pareto.process] = pareto

    def processes(self) -> tuple[str, ...]:
        return tuple(self._sets)

    def of(self, process: str) -> ParetoSet:
        try:
            return self._sets[process]
        except KeyError:
            raise ConfigurationError(
                f"no Pareto set for process {process!r}"
            ) from None

    def has(self, process: str) -> bool:
        return process in self._sets

    def total_points(self) -> int:
        """Total Pareto points across processes (Table 1 reports 171)."""
        return sum(len(s) for s in self._sets.values())

    def __len__(self) -> int:
        return len(self._sets)

    def __iter__(self) -> Iterator[ParetoSet]:
        return iter(self._sets.values())
