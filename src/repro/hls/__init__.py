"""HLS micro-architecture substrate: implementations, Pareto sets, knobs,
and channel-latency characterization."""

from repro.hls.characterize import (
    BLOCK_ELEMENTS,
    CHROMA_FRAME_ELEMENTS,
    FRAME_HEIGHT,
    FRAME_WIDTH,
    LUMA_FRAME_ELEMENTS,
    MACROBLOCK_ELEMENTS,
    MOTION_VECTOR_ELEMENTS,
    ChannelPhysics,
    frame_latency,
    transfer_latency,
)
from repro.hls.bus import WidthResult, optimize_widths
from repro.hls.implementation import Implementation, area_gain, latency_gain
from repro.hls.knobs import KnobSpace, synthesize_pareto_set, synthesize_points
from repro.hls.pareto import ImplementationLibrary, ParetoSet, pareto_filter

__all__ = [
    "BLOCK_ELEMENTS",
    "CHROMA_FRAME_ELEMENTS",
    "ChannelPhysics",
    "FRAME_HEIGHT",
    "FRAME_WIDTH",
    "Implementation",
    "ImplementationLibrary",
    "KnobSpace",
    "LUMA_FRAME_ELEMENTS",
    "MACROBLOCK_ELEMENTS",
    "MOTION_VECTOR_ELEMENTS",
    "ParetoSet",
    "WidthResult",
    "area_gain",
    "frame_latency",
    "latency_gain",
    "optimize_widths",
    "pareto_filter",
    "synthesize_pareto_set",
    "synthesize_points",
    "transfer_latency",
]
