"""The worker side of the sharded execution backend.

A worker process receives a pickled :class:`ShardTask` — the lowered IR
as bytes, the base latency table, a chunk of work units, the store root,
and the store generation in force — and answers with pickled
:class:`~repro.service.units.UnitOutcome`\\ s.  Workers never receive
live ``SystemGraph``/engine objects: the IR is the complete work
description (``repro.ir.reconstruct`` inverts it), which keeps the
protocol stable under fork *and* spawn start methods and keeps the
parent's mutable state out of the children.

Per-process state (memo, preflight cache, lowering cache, default
engine) is warm across chunks — that is the throughput lever — but it is
guarded by the store's *generation stamp*: every task carries the
generation the parent observed at submit time, and a worker that sees
the stamp move drops all of its process-local memos before touching the
chunk.  Without the stamp, a ``store.clear()`` /
``clear_preflight_cache()`` in the parent would leave every worker
happily serving memos for artifacts the parent just invalidated (the
regression pinned by ``tests/service/test_generation.py``).

``execute_task`` is also the *sequential* execution path: the parent
runs it inline for ``workers <= 1``, so sharded and sequential runs
execute literally the same code and differ only in which process runs
it — the cheapest possible bit-identity argument.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass

from repro.core.system import ChannelOrdering, SystemGraph
from repro.errors import SimulationDeadlock
from repro.ir import (
    LoweredIR,
    clear_lowering_cache,
    lower,
    ordering_from_ir,
    system_from_ir,
)
from repro.perf.cache import MISS, LruCache
from repro.perf.engine import reset_default_engine
from repro.service.units import (
    SOURCE_COMPUTED,
    SOURCE_MEMORY,
    SOURCE_STORE,
    SimArtifact,
    UnitOutcome,
    WorkUnit,
)
from repro.sim.engine import Simulator
from repro.store import ArtifactStore, params_digest


@dataclass(frozen=True)
class ShardTask:
    """One chunk of work shipped to a worker, fully self-describing.

    Attributes:
        ir_blob: The pickled base :class:`~repro.ir.LoweredIR`.
        base_latencies: The system's own process latencies (the IR is
            latency-free by design, so they travel separately), as
            name-sorted pairs.
        units: The work units of this chunk.
        generation: Store generation the parent observed at submit time.
        store_root: Root of the shared :class:`ArtifactStore`, or
            ``None`` to run store-less.
    """

    ir_blob: bytes
    base_latencies: tuple[tuple[str, int], ...]
    units: tuple[WorkUnit, ...]
    generation: int
    store_root: str | None


#: Process-local memo of unit artifacts, keyed ``(ir_hash, digest)``.
_MEMO: LruCache = LruCache(4096)
#: The store generation the memos above were built under.
_MEMO_GENERATION: int | None = None


def invalidate_worker_state() -> None:
    """Drop every process-local memo this module (or its callees) holds.

    Called when the store generation moves — and callable directly by
    tests and by embedders that mutate designs in place.
    """
    from repro.lint import clear_preflight_cache

    _MEMO.clear()
    clear_preflight_cache()
    clear_lowering_cache()
    reset_default_engine()


def reset_worker_state() -> None:
    """Pool initializer: start the worker with *empty* process-local state.

    A forked child inherits the parent's warm memos; letting it serve
    them would blur the provenance story (a "cold" pool answering from
    memory) and would couple worker behaviour to whatever the parent
    happened to compute before forking.  Resetting on pool start makes
    the contract simple: worker warmth comes from the shared store and
    from the worker's own lifetime, never from the parent.
    """
    global _MEMO_GENERATION
    invalidate_worker_state()
    _MEMO_GENERATION = None


def _sync_generation(generation: int) -> None:
    global _MEMO_GENERATION
    if _MEMO_GENERATION is None:
        _MEMO_GENERATION = generation
        return
    if generation != _MEMO_GENERATION:
        invalidate_worker_state()
        _MEMO_GENERATION = generation


def unit_params(unit: WorkUnit, watch: str) -> dict[str, object]:
    """The non-structural parameters that shape one unit's artifact.

    Capacity overrides are deliberately absent: they are structural and
    therefore already part of the (overridden) IR hash the artifact is
    filed under.
    """
    return {
        "op": "sim",
        "iterations": unit.iterations,
        "watch": watch,
        "latencies": unit.candidate.process_latencies,
    }


def execute_task(
    task: ShardTask, store: ArtifactStore | None = None
) -> list[UnitOutcome]:
    """Run every unit of a task in submission order.

    The layered lookup per unit is memo → store → simulate; computed
    artifacts are written back to the store so the *next* process (or
    the next cold run) starts warm.  A runtime deadlock is an answer,
    not an error — it is captured on the outcome exactly as the batch
    simulator's ``on_deadlock="capture"`` mode does.

    ``store`` lets an in-process caller (the ``workers <= 1`` path of
    :class:`~repro.service.shard.ShardedRunner`) share its own store
    instance so hit/miss counters accumulate where the caller can read
    them; workers open their own instance from ``task.store_root``.
    """
    _sync_generation(task.generation)
    base_ir = pickle.loads(task.ir_blob)
    if not isinstance(base_ir, LoweredIR):
        raise TypeError(f"ShardTask.ir_blob is not a LoweredIR: {type(base_ir)!r}")
    if store is None:
        store = ArtifactStore(task.store_root) if task.store_root else None
    base_latencies = dict(task.base_latencies)
    system = system_from_ir(base_ir, base_latencies)
    ordering = ordering_from_ir(base_ir)
    sinks = system.sinks()
    default_watch = sinks[0].name if sinks else system.process_names[0]
    pid = os.getpid()

    outcomes: list[UnitOutcome] = []
    for unit in task.units:
        capacities = unit.candidate.capacity_map()
        if capacities:
            unit_system = system.with_channel_capacities(capacities)
            ir_hash = lower(unit_system, ordering).structural_hash
        else:
            unit_system = system
            ir_hash = base_ir.structural_hash
        watch = unit.watch or default_watch
        digest = params_digest(unit_params(unit, watch))
        memo_key = f"{ir_hash}:{digest}"

        artifact = _MEMO.get(memo_key)
        source = SOURCE_MEMORY
        if artifact is MISS and store is not None:
            stored = store.get(ir_hash, "sim", digest)
            if stored is not MISS and isinstance(stored, SimArtifact):
                artifact = stored
                source = SOURCE_STORE
                _MEMO.put(memo_key, artifact)
        if artifact is MISS or not isinstance(artifact, SimArtifact):
            artifact = _simulate(unit, unit_system, ordering, watch)
            source = SOURCE_COMPUTED
            _MEMO.put(memo_key, artifact)
            if store is not None:
                store.put(ir_hash, "sim", digest, artifact)

        outcomes.append(
            UnitOutcome(
                index=unit.index,
                ir_hash=ir_hash,
                params_digest=digest,
                measured_cycle_time=artifact.measured_cycle_time,
                deadlocked=artifact.deadlocked,
                deadlock_cycle=artifact.deadlock_cycle,
                result=artifact.result,
                source=source,
                worker_pid=pid,
                generation=task.generation,
            )
        )
    return outcomes


def _simulate(
    unit: WorkUnit,
    system: SystemGraph,
    ordering: ChannelOrdering,
    watch: str,
) -> SimArtifact:
    simulator = Simulator(
        system,
        ordering,
        process_latencies=unit.candidate.latency_map(),
    )
    try:
        result = simulator.run(iterations=unit.iterations, watch=watch)
    except SimulationDeadlock as deadlock:
        return SimArtifact(
            measured_cycle_time=None,
            deadlocked=True,
            deadlock_cycle=tuple(deadlock.cycle or ()),
            result=None,
        )
    return SimArtifact(
        measured_cycle_time=result.measured_cycle_time(watch),
        deadlocked=False,
        deadlock_cycle=(),
        result=result,
    )


def run_chunk(blob: bytes) -> bytes:
    """Pool entry point: pickled :class:`ShardTask` in, outcomes out.

    The pickle round-trip at both edges is deliberate — it keeps the
    pool protocol identical whether the pool forks or spawns, and it is
    the same bytes the inline (``workers=1``) path produces, so the
    differential tests cover the wire format too.
    """
    task = pickle.loads(blob)
    if not isinstance(task, ShardTask):
        raise TypeError(f"expected a ShardTask, got {type(task)!r}")
    return pickle.dumps(
        execute_task(task), protocol=pickle.HIGHEST_PROTOCOL
    )
