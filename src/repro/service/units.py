"""Work-unit vocabulary of the sharded execution backend.

A *candidate* is one point of the sweep — a process-latency selection
plus an optional channel-capacity override.  A *work unit* binds a
candidate to simulation parameters (iterations, watch process) and an
index in the submission order; a *unit outcome* is the worker's answer,
carrying both the measurement and its provenance (computed fresh, served
from the worker's in-process memo, or read from the shared on-disk
store).

Everything here is a frozen dataclass of primitives and tuples — the
whole point is that these values cross process boundaries by pickle, so
they must not drag live ``SystemGraph``/engine objects along
(``docs/ARCHITECTURE.md``: *pickle the IR, not live objects*).

Determinism note: two runs of the same units produce outcomes whose
**measurements** (``measured_cycle_time``, ``result``, ``deadlocked``,
``deadlock_cycle``) are bit-identical regardless of worker count or
cache temperature; the **provenance** fields (``source``,
``worker_pid``) naturally differ and are excluded from
:meth:`UnitOutcome.measurement` — the projection the differential tests
and the benchmark compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import SimulationResult

#: Provenance tokens of a :class:`UnitOutcome`.
SOURCE_COMPUTED = "computed"
SOURCE_MEMORY = "memory"
SOURCE_STORE = "store"


@dataclass(frozen=True)
class Candidate:
    """One sweep point: latency selection + optional capacity override.

    Both maps are stored as name-sorted tuples of pairs so candidates
    are hashable, comparable, and digest deterministically.  Use
    :meth:`of` to build one from plain mappings.
    """

    process_latencies: tuple[tuple[str, int], ...] = ()
    channel_capacities: tuple[tuple[str, int], ...] = ()

    @staticmethod
    def of(
        process_latencies: Mapping[str, int] | None = None,
        channel_capacities: Mapping[str, int] | None = None,
    ) -> "Candidate":
        return Candidate(
            process_latencies=tuple(sorted((process_latencies or {}).items())),
            channel_capacities=tuple(sorted((channel_capacities or {}).items())),
        )

    def latency_map(self) -> dict[str, int]:
        return dict(self.process_latencies)

    def capacity_map(self) -> dict[str, int]:
        return dict(self.channel_capacities)

    @property
    def is_structural(self) -> bool:
        """Whether this candidate changes the structure (needs relowering)."""
        return bool(self.channel_capacities)


@dataclass(frozen=True)
class WorkUnit:
    """One candidate bound to its simulation parameters and submit index."""

    index: int
    candidate: Candidate
    iterations: int = 64
    watch: str | None = None


@dataclass(frozen=True)
class SimArtifact:
    """The store payload of one simulated unit (kind ``"sim"``).

    Index-free — the same candidate simulated from any submission slot
    (or any process) produces the same artifact, which is what makes the
    store content-addressed rather than run-scoped.
    """

    measured_cycle_time: Fraction | None
    deadlocked: bool
    deadlock_cycle: tuple[str, ...]
    result: "SimulationResult | None"


@dataclass(frozen=True)
class UnitOutcome:
    """A worker's answer for one :class:`WorkUnit`.

    ``measurement()`` projects out the deterministic payload; ``source``
    and ``worker_pid`` describe where the answer came from and are
    intentionally not part of that projection.
    """

    index: int
    ir_hash: str
    params_digest: str
    measured_cycle_time: Fraction | None
    deadlocked: bool
    deadlock_cycle: tuple[str, ...]
    result: "SimulationResult | None"
    source: str
    worker_pid: int
    generation: int

    def measurement(self) -> tuple[Any, ...]:
        """The provenance-free projection two equivalent runs must agree on."""
        return (
            self.index,
            self.ir_hash,
            self.params_digest,
            self.measured_cycle_time,
            self.deadlocked,
            self.deadlock_cycle,
            self.result,
        )

    def artifact(self) -> SimArtifact:
        return SimArtifact(
            measured_cycle_time=self.measured_cycle_time,
            deadlocked=self.deadlocked,
            deadlock_cycle=self.deadlock_cycle,
            result=self.result,
        )
