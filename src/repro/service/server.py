"""``ermes serve`` — the long-running batch endpoint.

A deliberately small stdlib-only HTTP service (``http.server`` +
executor threads) wrapping the analysis stack: clients submit a design
as JSON (the same schema ``repro.core.serialization`` reads from disk),
poll the job until it is done, and fetch the result.  Heavy sweeps fan
out through the service's :class:`~repro.service.shard.ShardedRunner`,
and every computed artifact lands in the service's
:class:`~repro.store.ArtifactStore`, so repeated traffic on the same
designs is served from the store rather than recomputed.

API (all JSON; see ``docs/SERVICE.md`` for a walkthrough):

==========================  =================================================
``GET  /v1/health``         Liveness + configuration.
``GET  /v1/metrics``        The service's metrics-registry snapshot.
``POST /v1/jobs``           Submit ``{"op", "system", ["ordering"],
                            ["params"]}``; answers ``202`` with the job id.
``GET  /v1/jobs``           List every job (id, op, status).
``GET  /v1/jobs/<id>``      One job's status (``queued`` → ``running`` →
                            ``done`` | ``failed``).
``GET  /v1/jobs/<id>/result``  The result; ``409`` while not done,
                            ``404`` for unknown ids.
==========================  =================================================

Operations: ``analyze`` (TMG cycle time + critical resources), ``order``
(Algorithm 1), ``simulate`` (one cycle-accurate run), ``sweep``
(candidate latency/capacity selections over the worker pool).
"""

from __future__ import annotations

import json
import queue
import threading
from dataclasses import dataclass, field
from fractions import Fraction
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from repro.core.serialization import ordering_from_dict, system_from_dict
from repro.core.system import ChannelOrdering, SystemGraph
from repro.errors import DeadlockError, ReproError
from repro.obs.metrics import MetricsRegistry
from repro.ordering import channel_ordering
from repro.perf.engine import PerformanceEngine
from repro.service.shard import ShardedRunner
from repro.service.units import Candidate, WorkUnit
from repro.store import ArtifactStore

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Operations a job may request.
OPERATIONS = ("analyze", "order", "simulate", "sweep")


def _jsonable(value: Any) -> Any:
    """Recursively make a result JSON-serializable (Fractions → floats,
    with the exact ``"p/q"`` rendering preserved alongside)."""
    if isinstance(value, Fraction):
        return {"value": float(value), "exact": str(value)}
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclass
class Job:
    """One submitted request and (eventually) its result."""

    id: str
    op: str
    status: str = QUEUED
    result: dict[str, Any] | None = None
    error: str | None = None
    system: SystemGraph | None = field(default=None, repr=False)
    ordering: ChannelOrdering | None = field(default=None, repr=False)
    params: dict[str, Any] = field(default_factory=dict, repr=False)

    def summary(self) -> dict[str, Any]:
        out: dict[str, Any] = {"id": self.id, "op": self.op, "status": self.status}
        if self.error is not None:
            out["error"] = self.error
        return out


class JobManager:
    """Owns the job table, the executor threads, and the shared backend."""

    def __init__(
        self,
        workers: int = 1,
        store: ArtifactStore | None = None,
        threads: int = 2,
        metrics: MetricsRegistry | None = None,
    ):
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.store = store
        self.engine = PerformanceEngine(store=store)
        self.runner = ShardedRunner(
            workers=workers, store=store, metrics=self.metrics
        )
        self._runner_lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._counter = 0
        self._queue: "queue.Queue[Job | None]" = queue.Queue()
        self._threads = [
            threading.Thread(target=self._work, daemon=True, name=f"ermes-job-{i}")
            for i in range(threads)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission and lookup
    # ------------------------------------------------------------------

    def submit(self, body: dict[str, Any]) -> Job:
        """Validate one request body and enqueue the job.

        Raises :class:`~repro.errors.ReproError` (typically a
        ``ValidationError`` from the serialization layer) on a malformed
        body — reported as a 400, not as a failed job.
        """
        op = body.get("op")
        if op not in OPERATIONS:
            raise ReproError(
                f"unknown op {op!r}; expected one of {', '.join(OPERATIONS)}"
            )
        system = system_from_dict(body.get("system") or {})
        ordering = None
        if body.get("ordering") is not None:
            ordering = ordering_from_dict(body["ordering"])
            ordering.validate(system)
        params = body.get("params") or {}
        if not isinstance(params, dict):
            raise ReproError("params must be a JSON object")
        with self._jobs_lock:
            self._counter += 1
            job = Job(
                id=f"job-{self._counter}",
                op=op,
                system=system,
                ordering=ordering,
                params=params,
            )
            self._jobs[job.id] = job
        self.metrics.counter("service.jobs.submitted").add()
        self._queue.put(job)
        return job

    def job(self, job_id: str) -> Job | None:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._jobs_lock:
            return list(self._jobs.values())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _work(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            job.status = RUNNING
            try:
                job.result = self._execute(job)
                job.status = DONE
                self.metrics.counter("service.jobs.completed").add()
            except ReproError as error:
                job.error = str(error)
                job.status = FAILED
                self.metrics.counter("service.jobs.failed").add()
            except Exception as error:  # pragma: no cover - defensive
                job.error = f"internal error: {error}"
                job.status = FAILED
                self.metrics.counter("service.jobs.failed").add()

    def _execute(self, job: Job) -> dict[str, Any]:
        assert job.system is not None
        with self.metrics.timer(f"service.op.{job.op}"):
            if job.op == "analyze":
                return self._op_analyze(job.system, job.ordering)
            if job.op == "order":
                return self._op_order(job.system)
            if job.op == "simulate":
                return self._op_simulate(job.system, job.ordering, job.params)
            return self._op_sweep(job.system, job.ordering, job.params)

    def _op_analyze(
        self, system: SystemGraph, ordering: ChannelOrdering | None
    ) -> dict[str, Any]:
        try:
            performance = self.engine.analyze(system, ordering)
        except DeadlockError as error:
            return {
                "deadlocked": True,
                "cycle": list(error.cycle or ()),
                "message": str(error),
            }
        return {
            "deadlocked": False,
            "cycle_time": _jsonable(performance.cycle_time),
            "critical_processes": list(performance.critical_processes),
            "critical_channels": list(performance.critical_channels),
        }

    def _op_order(self, system: SystemGraph) -> dict[str, Any]:
        from repro.core.serialization import ordering_to_dict

        ordering = channel_ordering(system, metrics=self.metrics)
        return {"ordering": ordering_to_dict(ordering)}

    def _op_simulate(
        self,
        system: SystemGraph,
        ordering: ChannelOrdering | None,
        params: dict[str, Any],
    ) -> dict[str, Any]:
        outcomes = self._run_units(
            system,
            ordering,
            [
                WorkUnit(
                    index=0,
                    candidate=Candidate.of(),
                    iterations=int(params.get("iterations", 64)),
                    watch=params.get("watch"),
                )
            ],
        )
        outcome = outcomes[0]
        return {
            "deadlocked": outcome.deadlocked,
            "deadlock_cycle": list(outcome.deadlock_cycle),
            "measured_cycle_time": _jsonable(outcome.measured_cycle_time),
            "source": outcome.source,
        }

    def _op_sweep(
        self,
        system: SystemGraph,
        ordering: ChannelOrdering | None,
        params: dict[str, Any],
    ) -> dict[str, Any]:
        raw = params.get("candidates")
        if not isinstance(raw, list) or not raw:
            raise ReproError("sweep params require a non-empty candidates list")
        candidates = []
        for item in raw:
            if not isinstance(item, dict):
                raise ReproError("each candidate must be a JSON object")
            latencies = item.get("process_latencies") or {}
            capacities = item.get("channel_capacities") or {}
            # A misspelled name would otherwise silently no-op (overrides
            # resolve with .get) *and* mint a spurious store key.
            for name in latencies:
                system.process(name)
            for name in capacities:
                system.channel(name)
            candidates.append(Candidate.of(latencies, capacities))
        iterations = int(params.get("iterations", 64))
        watch = params.get("watch")
        units = [
            WorkUnit(index=i, candidate=c, iterations=iterations, watch=watch)
            for i, c in enumerate(candidates)
        ]
        outcomes = self._run_units(system, ordering, units)
        return {
            "candidates": [
                {
                    "index": o.index,
                    "deadlocked": o.deadlocked,
                    "deadlock_cycle": list(o.deadlock_cycle),
                    "measured_cycle_time": _jsonable(o.measured_cycle_time),
                    "source": o.source,
                }
                for o in outcomes
            ]
        }

    def _run_units(
        self,
        system: SystemGraph,
        ordering: ChannelOrdering | None,
        units: list[WorkUnit],
    ) -> list[Any]:
        with self._runner_lock:
            return self.runner.run(system, ordering, units)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def stop(self) -> None:
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5)
        self.runner.close()


class ErmesService:
    """The HTTP front of a :class:`JobManager`.

    Binds on construction parameters at :meth:`start` (``port=0`` picks
    a free port — the test- and docs-friendly default), serves from a
    daemon thread, and tears everything down in :meth:`stop`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        store: ArtifactStore | None = None,
        threads: int = 2,
        metrics: MetricsRegistry | None = None,
    ):
        self.host = host
        self._requested_port = port
        self.workers = workers
        self.manager = JobManager(
            workers=workers, store=store, threads=threads, metrics=metrics
        )
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("service is not started")
        return int(self._server.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ErmesService":
        if self._server is not None:
            raise RuntimeError("service is already started")
        manager = self.manager

        class Handler(BaseHTTPRequestHandler):
            # Quiet by default: the service reports through metrics, not
            # through per-request stderr lines.
            def log_message(self, format: str, *args: Any) -> None:
                pass

            def _reply(
                self, status: int, body: dict[str, Any]
            ) -> None:
                payload = json.dumps(body).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self) -> None:
                parts = [p for p in self.path.split("/") if p]
                if parts == ["v1", "health"]:
                    self._reply(
                        200,
                        {
                            "status": "ok",
                            "workers": manager.runner.workers,
                            "store": (
                                str(manager.store.root)
                                if manager.store is not None
                                else None
                            ),
                            "jobs": len(manager.jobs()),
                        },
                    )
                    return
                if parts == ["v1", "metrics"]:
                    self._reply(200, manager.metrics.snapshot())
                    return
                if parts == ["v1", "jobs"]:
                    self._reply(
                        200, {"jobs": [j.summary() for j in manager.jobs()]}
                    )
                    return
                if len(parts) >= 3 and parts[:2] == ["v1", "jobs"]:
                    job = manager.job(parts[2])
                    if job is None:
                        self._reply(404, {"error": f"unknown job {parts[2]!r}"})
                        return
                    if len(parts) == 3:
                        self._reply(200, job.summary())
                        return
                    if len(parts) == 4 and parts[3] == "result":
                        if job.status == DONE and job.result is not None:
                            self._reply(
                                200, {"id": job.id, "result": job.result}
                            )
                        elif job.status == FAILED:
                            self._reply(
                                410, {"id": job.id, "error": job.error}
                            )
                        else:
                            self._reply(
                                409,
                                {
                                    "id": job.id,
                                    "status": job.status,
                                    "error": "job is not done yet",
                                },
                            )
                        return
                self._reply(404, {"error": f"no route for {self.path!r}"})

            def do_POST(self) -> None:
                if [p for p in self.path.split("/") if p] != ["v1", "jobs"]:
                    self._reply(404, {"error": f"no route for {self.path!r}"})
                    return
                try:
                    length = int(self.headers.get("Content-Length") or 0)
                    body = json.loads(self.rfile.read(length) or b"{}")
                    if not isinstance(body, dict):
                        raise ReproError("request body must be a JSON object")
                    job = manager.submit(body)
                except ReproError as error:
                    self._reply(400, {"error": str(error)})
                    return
                except json.JSONDecodeError as error:
                    self._reply(400, {"error": f"invalid JSON: {error}"})
                    return
                self._reply(202, job.summary())

        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            daemon=True,
            name="ermes-serve",
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.manager.stop()

    def __enter__(self) -> "ErmesService":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
