"""Sharded execution backend and the ``ermes serve`` endpoint.

Public surface of the ``repro.service`` layer: work-unit vocabulary
(:class:`Candidate`, :class:`WorkUnit`, :class:`UnitOutcome`), the
:class:`ShardedRunner` worker pool, the :func:`evaluate_candidates`
one-shot sweep, and the :class:`ErmesService` HTTP endpoint.  Workers
communicate exclusively through pickled
:class:`~repro.ir.LoweredIR`-based tasks and the shared
:class:`~repro.store.ArtifactStore`; see ``docs/SERVICE.md``.
"""

from repro.service.server import ErmesService, JobManager
from repro.service.shard import ShardedRunner, evaluate_candidates
from repro.service.units import (
    SOURCE_COMPUTED,
    SOURCE_MEMORY,
    SOURCE_STORE,
    Candidate,
    SimArtifact,
    UnitOutcome,
    WorkUnit,
)
from repro.service.worker import (
    ShardTask,
    execute_task,
    invalidate_worker_state,
    reset_worker_state,
)

__all__ = [
    "SOURCE_COMPUTED",
    "SOURCE_MEMORY",
    "SOURCE_STORE",
    "Candidate",
    "ErmesService",
    "JobManager",
    "ShardTask",
    "ShardedRunner",
    "SimArtifact",
    "UnitOutcome",
    "WorkUnit",
    "evaluate_candidates",
    "execute_task",
    "invalidate_worker_state",
    "reset_worker_state",
]
