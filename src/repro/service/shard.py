"""The parent side of the sharded execution backend.

:class:`ShardedRunner` distributes work units over a
``multiprocessing`` pool, ships each worker a pickled IR chunk
(:class:`~repro.service.worker.ShardTask`), and merges the answers back
into submission order.  The merge is deterministic by construction —
outcomes carry their unit index and are sorted on it — and the workers
execute the *same* ``execute_task`` code the inline path runs, so a
sharded sweep is bit-identical to a sequential one in everything but
wall-clock and provenance (enforced by ``tests/service/test_shard.py``
and ``benchmarks/test_bench_shard.py``).

Observability: with a :class:`~repro.obs.metrics.MetricsRegistry`
attached, a run reports under the stable ``dse.shard.*`` names
(catalogued in ``docs/OBSERVABILITY.md``) and merges the parent-side
store counters under ``store.<kind>.*``.
"""

from __future__ import annotations

import math
import pickle
from multiprocessing import get_context
from multiprocessing.pool import Pool
from types import TracebackType
from typing import TYPE_CHECKING, Sequence

from repro.core.system import ChannelOrdering, SystemGraph
from repro.ir import lower
from repro.service.units import (
    SOURCE_COMPUTED,
    SOURCE_MEMORY,
    SOURCE_STORE,
    Candidate,
    UnitOutcome,
    WorkUnit,
)
from repro.service.worker import (
    ShardTask,
    execute_task,
    reset_worker_state,
    run_chunk,
)
from repro.store import ArtifactStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


class ShardedRunner:
    """Distributes work units over a worker pool, or runs them inline.

    Args:
        workers: Pool size.  ``<= 1`` runs every chunk inline in this
            process (same code path, no pool) — the sequential baseline
            the differential tests compare against.
        store: Shared :class:`ArtifactStore`; workers read *and* write
            it, so a warm store serves any number of future processes.
        metrics: Optional registry receiving ``dse.shard.*``.
        chunk_size: Units per task.  Default: enough chunks for ~4 tasks
            per worker, a balance between scheduling slack and pickle
            overhead.

    Use as a context manager (or call :meth:`close`) to release the
    pool; the pool is created lazily on the first sharded :meth:`run`,
    so a ``workers=1`` runner never forks.
    """

    def __init__(
        self,
        workers: int = 1,
        store: ArtifactStore | None = None,
        metrics: "MetricsRegistry | None" = None,
        chunk_size: int | None = None,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self.store = store
        self.metrics = metrics
        self.chunk_size = chunk_size
        self._pool: Pool | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _ensure_pool(self) -> Pool:
        if self._pool is None:
            self._pool = get_context("fork").Pool(
                self.workers, initializer=reset_worker_state
            )
        return self._pool

    def close(self) -> None:
        """Terminate the pool (if one was ever created)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ShardedRunner":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        system: SystemGraph,
        ordering: ChannelOrdering | None = None,
        units: Sequence[WorkUnit] = (),
    ) -> list[UnitOutcome]:
        """Execute every unit against one base design; merged in order.

        The system is lowered once; workers receive the pickled IR plus
        the base latency table and rebuild what they need
        (``repro.ir.reconstruct``).  Returns one outcome per unit,
        sorted by unit index regardless of which worker answered when.
        """
        if ordering is None:
            ordering = ChannelOrdering.declaration_order(system)
        units = list(units)
        if not units:
            return []
        ir = lower(system, ordering)
        generation = self.store.generation() if self.store is not None else 0
        store_root = str(self.store.root) if self.store is not None else None
        task_proto = ShardTask(
            ir_blob=pickle.dumps(ir, protocol=pickle.HIGHEST_PROTOCOL),
            base_latencies=tuple(sorted(system.process_latencies().items())),
            units=(),
            generation=generation,
            store_root=store_root,
        )

        chunks = self._chunk(units)
        timer = (
            self.metrics.timer("dse.shard.run")
            if self.metrics is not None
            else None
        )
        if timer is not None:
            timer.__enter__()
        try:
            if self.workers <= 1:
                answers = [
                    execute_task(
                        ShardTask(
                            ir_blob=task_proto.ir_blob,
                            base_latencies=task_proto.base_latencies,
                            units=tuple(chunk),
                            generation=generation,
                            store_root=store_root,
                        ),
                        store=self.store,
                    )
                    for chunk in chunks
                ]
            else:
                pool = self._ensure_pool()
                blobs = [
                    pickle.dumps(
                        ShardTask(
                            ir_blob=task_proto.ir_blob,
                            base_latencies=task_proto.base_latencies,
                            units=tuple(chunk),
                            generation=generation,
                            store_root=store_root,
                        ),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    for chunk in chunks
                ]
                answers = [
                    pickle.loads(answer)
                    for answer in pool.map(run_chunk, blobs)
                ]
        finally:
            if timer is not None:
                timer.__exit__(None, None, None)

        outcomes = [outcome for chunk_answers in answers for outcome in chunk_answers]
        outcomes.sort(key=lambda o: o.index)
        if self.metrics is not None:
            self._record_metrics(outcomes, n_chunks=len(chunks))
        return outcomes

    def _chunk(self, units: Sequence[WorkUnit]) -> list[list[WorkUnit]]:
        size = self.chunk_size
        if size is None:
            lanes = max(1, self.workers) * 4
            size = max(1, math.ceil(len(units) / lanes))
        return [
            list(units[i : i + size]) for i in range(0, len(units), size)
        ]

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _record_metrics(
        self, outcomes: Sequence[UnitOutcome], n_chunks: int
    ) -> None:
        assert self.metrics is not None
        metrics = self.metrics
        metrics.counter("dse.shard.units").add(len(outcomes))
        metrics.counter("dse.shard.chunks").add(n_chunks)
        by_source = {SOURCE_COMPUTED: 0, SOURCE_MEMORY: 0, SOURCE_STORE: 0}
        per_worker: dict[int, int] = {}
        for outcome in outcomes:
            by_source[outcome.source] = by_source.get(outcome.source, 0) + 1
            per_worker[outcome.worker_pid] = (
                per_worker.get(outcome.worker_pid, 0) + 1
            )
        metrics.counter("dse.shard.computed").add(by_source[SOURCE_COMPUTED])
        metrics.counter("dse.shard.memo_hits").add(by_source[SOURCE_MEMORY])
        metrics.counter("dse.shard.store_hits").add(by_source[SOURCE_STORE])
        metrics.counter("dse.shard.deadlocks").add(
            sum(1 for o in outcomes if o.deadlocked)
        )
        histogram = metrics.histogram("dse.shard.units_per_worker")
        for count in per_worker.values():
            histogram.observe(count)
        if self.store is not None:
            metrics.merge_cache_stats(self.store.stats_dict(), prefix="store")


def evaluate_candidates(
    system: SystemGraph,
    ordering: ChannelOrdering | None = None,
    candidates: Sequence[Candidate] = (),
    *,
    iterations: int = 64,
    watch: str | None = None,
    workers: int = 1,
    store: ArtifactStore | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> list[UnitOutcome]:
    """One-shot sweep: simulate every candidate of one design.

    Convenience wrapper owning a :class:`ShardedRunner` for the duration
    of a single call; long-lived callers (the explorer, the service)
    keep their own runner so the pool survives across sweeps.
    """
    units = [
        WorkUnit(index=i, candidate=c, iterations=iterations, watch=watch)
        for i, c in enumerate(candidates)
    ]
    with ShardedRunner(
        workers=workers, store=store, metrics=metrics
    ) as runner:
        return runner.run(system, ordering, units)
