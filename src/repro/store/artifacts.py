"""The on-disk content-addressed artifact store.

An :class:`ArtifactStore` persists derived analysis artifacts — simulation
results, TMG analyses, verification verdicts, deadlock-freedom
certificates, Pareto fronts — under content-addressed keys so they survive
the process that computed them and are shared by a fleet of workers
(``docs/SERVICE.md`` documents the schema and the service built on top).

Keys are ``(ir_hash, kind, params_digest)`` triples:

* ``ir_hash`` — the :attr:`repro.ir.LoweredIR.structural_hash` of the
  design the artifact describes (the same digest the in-memory ``perf``
  caches, the lint context, and the lowering memo use, so every layer
  agrees on what "same structure" means);
* ``kind`` — a short lowercase token naming the artifact family (see
  :data:`ARTIFACT_KINDS` for the conventional ones; any
  ``[a-z0-9_]+`` token is accepted so new layers can add kinds without
  touching this module);
* ``params_digest`` — a digest of every non-structural input that can
  change the artifact (latencies, iteration counts, engine modes …),
  canonically rendered by :func:`params_digest`.

Design constraints, in order of importance:

1. **Never crash on a bad entry.**  Reads tolerate truncated files,
   garbage bytes, schema-version mismatches, and key collisions from
   older layouts: every such condition is a *miss* (and the offending
   file is removed best-effort).  A store is a cache, not a database.
2. **Atomic writes.**  Entries are written to a temporary file in the
   destination directory and published with :func:`os.replace`, so a
   reader never observes a half-written entry and concurrent writers of
   the same key race benignly (last writer wins, both wrote the same
   content-addressed value).
3. **Explicit invalidation.**  The store carries a *generation* stamp
   (a small integer in ``GENERATION`` at the root).  :meth:`clear` bumps
   it; long-lived worker processes compare the stamp they last saw with
   the one in force and drop their process-local memos when it moved —
   this is how a cache clear in one process propagates to a fleet
   (see :mod:`repro.service.worker`).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import uuid
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.perf.cache import MISS, CacheStats

#: Version of the on-disk entry envelope.  Bump on any incompatible
#: change; readers treat every other version as a miss, so mixed-version
#: fleets degrade to recomputation instead of crashing.
SCHEMA_VERSION = 1

#: Conventional artifact kinds.  The store accepts any ``[a-z0-9_]+``
#: token; these are the ones the shipped layers read and write.
ARTIFACT_KINDS: tuple[str, ...] = (
    "sim",          # SimulationResult (or its deadlock diagnosis)
    "analysis",     # SystemPerformance / memoized deadlock (repro.perf)
    "verify",       # VerificationResult verdicts
    "certificate",  # absint DeadlockFreedomCertificate
    "pareto",       # sweep Pareto fronts
)

#: Environment variable naming the default store root.
STORE_ENV_VAR = "ERMES_STORE"

_KIND_RE = re.compile(r"^[a-z0-9_]+$")
_HASH_RE = re.compile(r"^[0-9a-f]{8,}$")
_GENERATION_FILE = "GENERATION"
_ENTRY_SUFFIX = ".art"


def params_digest(params: Mapping[str, object]) -> str:
    """Canonical digest of an artifact's non-structural parameters.

    Parameters are rendered as sorted-key compact JSON (non-JSON values
    fall back to ``repr``, which is stable for the value types used as
    parameters: ints, strings, tuples of pairs, Fractions) and hashed
    with SHA-256.  Two mappings with the same items digest identically
    regardless of insertion order.
    """
    rendered = json.dumps(
        dict(params), sort_keys=True, separators=(",", ":"), default=repr
    )
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


class ArtifactStore:
    """A persistent, corruption-tolerant, content-addressed artifact cache.

    Args:
        root: Directory holding the store.  Created on first write; a
            missing root reads as empty, never as an error.

    Layout (one file per entry)::

        <root>/GENERATION                      # invalidation stamp
        <root>/<kind>/<hh>/<ir_hash>.<params_digest>.art

    where ``hh`` is the first two hex digits of ``ir_hash`` (a fan-out
    level keeping directories small at fleet scale).  Entry files are
    pickled envelopes ``{"schema", "kind", "ir_hash", "params_digest",
    "payload"}``; the redundant key fields are verified on read so a
    renamed or cross-linked file can never serve the wrong artifact.
    """

    def __init__(self, root: str | Path):
        self._root = Path(root)
        self._stats: dict[str, CacheStats] = {}
        self._writes: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------

    @property
    def root(self) -> Path:
        return self._root

    @staticmethod
    def _check_key(ir_hash: str, kind: str, digest: str) -> None:
        if not _KIND_RE.match(kind):
            raise ValueError(f"invalid artifact kind {kind!r}")
        if not _HASH_RE.match(ir_hash):
            raise ValueError(f"invalid ir_hash {ir_hash!r}")
        if not _HASH_RE.match(digest):
            raise ValueError(f"invalid params digest {digest!r}")

    def path_of(self, ir_hash: str, kind: str, digest: str) -> Path:
        """The on-disk path of one entry (whether or not it exists)."""
        self._check_key(ir_hash, kind, digest)
        return (
            self._root / kind / ir_hash[:2]
            / f"{ir_hash}.{digest}{_ENTRY_SUFFIX}"
        )

    def _kind_stats(self, kind: str) -> CacheStats:
        try:
            return self._stats[kind]
        except KeyError:
            made = self._stats[kind] = CacheStats()
            return made

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def get(self, ir_hash: str, kind: str, digest: str) -> Any:
        """The stored payload, or :data:`repro.perf.cache.MISS`.

        Any defect — missing file, truncated or garbage bytes, a schema
        version other than :data:`SCHEMA_VERSION`, an envelope whose key
        fields disagree with the request — is a miss, never an
        exception; defective files are removed best-effort so the next
        write repairs them.
        """
        path = self.path_of(ir_hash, kind, digest)
        stats = self._kind_stats(kind)
        try:
            blob = path.read_bytes()
        except OSError:
            stats.misses += 1
            return MISS
        try:
            envelope = pickle.loads(blob)
            if (
                not isinstance(envelope, dict)
                or envelope.get("schema") != SCHEMA_VERSION
                or envelope.get("kind") != kind
                or envelope.get("ir_hash") != ir_hash
                or envelope.get("params_digest") != digest
            ):
                raise ValueError("bad envelope")
            payload = envelope["payload"]
        except Exception:
            # Corrupt, truncated, or mismatched entry: drop it (best
            # effort — a concurrent reader may already have) and miss.
            try:
                path.unlink()
            except OSError:
                pass
            stats.misses += 1
            return MISS
        stats.hits += 1
        return payload

    def put(self, ir_hash: str, kind: str, digest: str, payload: Any) -> None:
        """Persist one artifact atomically (tmp file + rename).

        Concurrent writers of the same key are safe: each writes its own
        temporary file and the final :func:`os.replace` is atomic, so
        readers only ever see complete entries.  An unwritable store is
        reported (OSError propagates) — a service must know its cache is
        not persisting.
        """
        path = self.path_of(ir_hash, kind, digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "ir_hash": ir_hash,
            "params_digest": digest,
            "payload": payload,
        }
        blob = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        tmp = path.parent / f".tmp-{os.getpid()}-{uuid.uuid4().hex}"
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass
        self._writes[kind] = self._writes.get(kind, 0) + 1

    def contains(self, ir_hash: str, kind: str, digest: str) -> bool:
        """Whether an entry file exists (without validating its bytes)."""
        return self.path_of(ir_hash, kind, digest).is_file()

    # ------------------------------------------------------------------
    # Generation stamp (cross-process invalidation)
    # ------------------------------------------------------------------

    def generation(self) -> int:
        """The store's invalidation stamp (0 for a fresh/unstamped root).

        Long-lived workers remember the stamp under which they built
        their process-local memos; a moved stamp means those memos may
        describe cleared artifacts and must be dropped.  An unreadable
        or corrupt stamp file reads as 0 — consistent with "the store is
        a cache": the worst case is recomputation.
        """
        try:
            return int(
                (self._root / _GENERATION_FILE).read_text().strip() or "0"
            )
        except (OSError, ValueError):
            return 0

    def bump_generation(self) -> int:
        """Advance the stamp (atomically) and return the new value."""
        new = self.generation() + 1
        self._root.mkdir(parents=True, exist_ok=True)
        tmp = self._root / f".tmp-gen-{os.getpid()}-{uuid.uuid4().hex}"
        tmp.write_text(f"{new}\n")
        os.replace(tmp, self._root / _GENERATION_FILE)
        return new

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def entries(self, kind: str | None = None) -> Iterator[Path]:
        """Every entry file currently on disk (one kind, or all)."""
        kinds: Iterator[Path]
        if kind is not None:
            self._check_key("0" * 8, kind, "0" * 8)
            kinds = iter([self._root / kind])
        elif self._root.is_dir():
            kinds = (p for p in self._root.iterdir() if p.is_dir())
        else:
            kinds = iter(())
        for kind_dir in kinds:
            if not kind_dir.is_dir():
                continue
            yield from sorted(kind_dir.glob(f"*/*{_ENTRY_SUFFIX}"))

    def count(self, kind: str | None = None) -> int:
        """Number of entries on disk (one kind, or all)."""
        return sum(1 for _ in self.entries(kind))

    def clear(self) -> int:
        """Remove every entry and bump the generation stamp.

        Returns the number of entries removed.  The bump is what makes a
        clear *propagate*: worker processes holding warm in-memory memos
        observe the moved stamp on their next work unit and drop them
        (the pre-stamp behaviour — workers happily serving memos for
        artifacts the parent just cleared — is pinned as a regression
        test in ``tests/service/test_generation.py``).
        """
        removed = 0
        for path in list(self.entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.bump_generation()
        return removed

    def prune(self, max_entries: int) -> int:
        """Evict oldest entries (by mtime) down to ``max_entries``.

        The store is append-mostly; a long-lived service calls this
        periodically to bound disk use.  Eviction is safe at any time —
        an evicted artifact is recomputed on the next request.  Returns
        the number of entries removed.
        """
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        all_entries = list(self.entries())
        if len(all_entries) <= max_entries:
            return 0

        def mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0

        all_entries.sort(key=lambda p: (mtime(p), str(p)))
        removed = 0
        for path in all_entries[: len(all_entries) - max_entries]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats_dict(self) -> dict[str, dict[str, int | float]]:
        """Per-kind hit/miss/write counters of *this process's* handle."""
        out: dict[str, dict[str, int | float]] = {}
        for kind in sorted(set(self._stats) | set(self._writes)):
            stats = self._kind_stats(kind)
            entry = stats.as_dict()
            entry["writes"] = self._writes.get(kind, 0)
            out[kind] = entry
        return out

    def format_stats(self) -> str:
        """Human-readable one-line-per-kind counter report."""
        lines = []
        for kind, entry in self.stats_dict().items():
            lines.append(
                f"{kind:>12}: hits={entry['hits']} misses={entry['misses']} "
                f"writes={entry['writes']}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self._root)!r})"


def store_from_env(environ: Mapping[str, str] | None = None) -> ArtifactStore | None:
    """The store named by ``ERMES_STORE``, or ``None`` when unset/empty."""
    env = os.environ if environ is None else environ
    root = env.get(STORE_ENV_VAR, "").strip()
    if not root:
        return None
    return ArtifactStore(root)
