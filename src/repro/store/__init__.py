"""Persistent content-addressed artifact store.

Public surface of the ``repro.store`` layer: an on-disk cache of derived
artifacts keyed by ``(ir_hash, kind, params_digest)``, shared across
processes and survives them.  See ``docs/SERVICE.md`` for the on-disk
schema and the service layers built on top.
"""

from repro.store.artifacts import (
    ARTIFACT_KINDS,
    SCHEMA_VERSION,
    STORE_ENV_VAR,
    ArtifactStore,
    params_digest,
    store_from_env,
)

__all__ = [
    "ARTIFACT_KINDS",
    "SCHEMA_VERSION",
    "STORE_ENV_VAR",
    "ArtifactStore",
    "params_digest",
    "store_from_env",
]
