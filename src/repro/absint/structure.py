"""The structural marked-graph view the static analyses reason over.

:func:`marked_places` flattens a :class:`~repro.ir.LoweredIR` into the
exact place structure :func:`repro.model.build.build_tmg` generates —
channel data/credit places for buffered channels, one cyclic chain of
statement places per process, one initial token per chain — but without
constructing a :class:`~repro.tmg.graph.TimedMarkedGraph` (the static
analyses never need delays, only the *token topology*).  Transition and
place names follow the systematic scheme of :mod:`repro.model.build`
(``ch:a``, ``ch:a.put``/``ch:a.get``, ``proc:P2``, ``P2/put:b``), so
every certificate and invariant maps back to the performance model by
name; ``tests/absint/test_structure.py`` pins the two constructions
place-for-place against each other.

Soundness hinges on this view being *exactly* the blocking-protocol TMG:
the token count of every directed cycle of a marked graph is invariant
under firing, and (Commoner's theorem for marked graphs) the graph is
live if and only if no cycle is token-free.  Both the occupancy
tightening pass (:mod:`repro.absint.invariants`) and the
deadlock-freedom certificate (:mod:`repro.absint.certificate`) are
corollaries of those two facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.ir import OP_COMPUTE, OP_GET, LoweredIR

#: Name scheme shared with :mod:`repro.model.build` (pinned by test).
_CHANNEL_PREFIX = "ch:"
_PROCESS_PREFIX = "proc:"
_PUT_SUFFIX = ".put"
_GET_SUFFIX = ".get"


def channel_transition(channel: str) -> str:
    """Transition name of a (rendezvous) channel."""
    return _CHANNEL_PREFIX + channel


def buffered_put_transition(channel: str) -> str:
    """Producer-side transition name of a buffered channel."""
    return _CHANNEL_PREFIX + channel + _PUT_SUFFIX


def buffered_get_transition(channel: str) -> str:
    """Consumer-side transition name of a buffered channel."""
    return _CHANNEL_PREFIX + channel + _GET_SUFFIX


def process_transition(process: str) -> str:
    """Transition name of a process's computation phase."""
    return _PROCESS_PREFIX + process


def data_place(channel: str) -> str:
    """The FIFO place holding a buffered channel's queued items."""
    return f"{channel}/data"


def credit_place(channel: str) -> str:
    """The FIFO place holding a buffered channel's free slots."""
    return f"{channel}/credit"


@dataclass(frozen=True)
class MarkedPlace:
    """One place of the structural marked graph.

    Attributes:
        name: The systematic place name (``P2/put:b``, ``c/data``, ...).
        source: The transition producing into this place.
        target: The transition consuming from this place.
        tokens: The initial marking.
    """

    name: str
    source: str
    target: str
    tokens: int


def marked_places(ir: LoweredIR) -> tuple[MarkedPlace, ...]:
    """The full place set of the blocking-protocol marked graph of ``ir``.

    Deterministic: places come out in the IR's declaration order (channel
    data/credit pairs first, then each process's chain), so two IRs with
    the same structural hash yield the same place sequence name-for-name.
    """
    return tuple(_iter_places(ir))


def _iter_places(ir: LoweredIR) -> Iterator[MarkedPlace]:
    for cid, channel in enumerate(ir.channels):
        if not ir.buffered[cid]:
            continue
        initial = ir.initial_tokens[cid]
        put_t = buffered_put_transition(channel)
        get_t = buffered_get_transition(channel)
        yield MarkedPlace(data_place(channel), put_t, get_t, initial)
        yield MarkedPlace(
            credit_place(channel),
            get_t,
            put_t,
            ir.effective_capacities[cid] - initial,
        )
    for pid, process in enumerate(ir.processes):
        kinds = ir.op_kinds[pid]
        args = ir.op_args[pid]
        transitions: list[str] = []
        names: list[str] = []
        for op, arg in zip(kinds, args):
            if op == OP_COMPUTE:
                transitions.append(process_transition(process))
                names.append(f"{process}/comp")
                continue
            channel = ir.channels[arg]
            if not ir.buffered[arg]:
                transitions.append(channel_transition(channel))
            elif op == OP_GET:
                transitions.append(buffered_get_transition(channel))
            else:
                transitions.append(buffered_put_transition(channel))
            kind = "get" if op == OP_GET else "put"
            names.append(f"{process}/{kind}:{channel}")
        first_marked = ir.first_marked[pid]
        n = len(kinds)
        for i in range(n):
            yield MarkedPlace(
                names[i],
                transitions[(i - 1) % n],
                transitions[i],
                1 if i == first_marked else 0,
            )
