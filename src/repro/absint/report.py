"""Text and JSON renderings of an :class:`~repro.absint.engine.AbsIntResult`.

Backs ``ermes analyze``: :func:`format_result` is the human-readable
report, :func:`result_to_dict` the JSON document (stable key order,
plain types only).  Both are pure functions of the result, so two IRs
with the same structural hash render byte-identically.
"""

from __future__ import annotations

from repro.absint.engine import AbsIntResult


def format_result(result: AbsIntResult) -> str:
    """The multi-line ``ermes analyze`` static-analysis report."""
    lines = [
        f"static analysis of {result.system_name!r} "
        f"(ir {result.ir_hash[:12]}..., {result.rounds} rounds)",
    ]
    if result.bounds:
        lines.append("  occupancy bounds:")
        for bound in result.bounds:
            provisioning = ""
            if bound.hi < bound.declared_capacity:
                provisioning = (
                    f"  <- over-provisioned (declared "
                    f"{bound.declared_capacity})"
                )
            lines.append(
                f"    {bound.channel}: {bound.format()} of "
                f"{bound.effective_capacity}{provisioning}"
            )
    else:
        lines.append("  occupancy bounds: none (no buffered channels)")
    if result.invariants:
        lines.append("  invariants:")
        process_cycles = [
            inv for inv in result.invariants if inv.kind == "process-cycle"
        ]
        if process_cycles:
            lines.append(
                f"    [process-cycle] {len(process_cycles)} process "
                "chain(s), each carrying exactly one token under every "
                "firing sequence"
            )
        for invariant in result.invariants:
            if invariant.kind == "process-cycle":
                continue
            lines.append(
                f"    [{invariant.kind}] {invariant.subject}: "
                f"{invariant.detail}"
            )
    if result.dead_channels:
        lines.append(
            "  dead channels: " + ", ".join(result.dead_channels)
        )
    if result.unreachable_ops:
        lines.append("  unreachable statements:")
        for op in result.unreachable_ops:
            subject = f" {op.channel}" if op.channel else ""
            lines.append(
                f"    {op.process}[{op.index}]: {op.kind}{subject}"
            )
    if result.certificate is not None:
        lines.append(
            "  deadlock-freedom: CERTIFIED "
            f"(method {result.certificate.method}, "
            f"{len(result.certificate.ranks)} ranked transitions)"
        )
    else:
        cycle = " -> ".join(result.token_free_cycle or ())
        lines.append(
            f"  deadlock-freedom: REFUTED (token-free cycle: {cycle})"
        )
    return "\n".join(lines) + "\n"


def result_to_dict(result: AbsIntResult) -> dict[str, object]:
    """The JSON-safe document of ``ermes analyze --format json``."""
    return {
        "system": result.system_name,
        "ir_hash": result.ir_hash,
        "rounds": result.rounds,
        "deadlock_free": result.deadlock_free,
        "bounds": [
            {
                "channel": bound.channel,
                "declared_capacity": bound.declared_capacity,
                "effective_capacity": bound.effective_capacity,
                "initial_tokens": bound.initial_tokens,
                "lo": bound.lo,
                "hi": bound.hi,
            }
            for bound in result.bounds
        ],
        "invariants": [
            {
                "kind": invariant.kind,
                "subject": invariant.subject,
                "tokens": invariant.tokens,
                "detail": invariant.detail,
            }
            for invariant in result.invariants
        ],
        "dead_channels": list(result.dead_channels),
        "unreachable_ops": [
            {
                "process": op.process,
                "index": op.index,
                "kind": op.kind,
                "channel": op.channel,
            }
            for op in result.unreachable_ops
        ],
        "certificate": (
            result.certificate.to_dict()
            if result.certificate is not None
            else None
        ),
        "token_free_cycle": (
            list(result.token_free_cycle)
            if result.token_free_cycle is not None
            else None
        ),
    }
