"""The occupancy-interval fixpoint over the lowered IR.

Program points are the per-process *communication slots* of the
:class:`~repro.ir.LoweredIR` (indices into
:attr:`~repro.ir.LoweredIR.comm_indices` — the same untimed projection
the exhaustive verifier of :mod:`repro.verify.semantics` explores).  The
abstract state is Cartesian:

* per process, the **set of reachable communication slots**;
* per buffered channel, one occupancy :class:`~repro.absint.domain.Interval`
  joined over every interleaving.

Abstract enabledness mirrors the concrete rules — a put needs its slot
reachable and ``lo < capacity`` (some covered state has a free slot), a
get needs ``hi > 0``, a rendezvous needs both endpoint slots — and
effects are lattice joins, so chaotic iteration reaches a fixpoint that
**over-approximates every reachable concrete state** (the soundness
contract; ``tests/absint/test_soundness.py`` hammers it with random
systems).  All three enabledness conditions are monotone in the abstract
order (slot sets only grow, ``lo`` only falls, ``hi`` only rises), so
the set of actions enabled *at* the fixpoint equals the set enabled at
any point during iteration — dead-channel and unreachable-op facts read
off the final state are exact with respect to the abstraction.

The Cartesian product forgets cross-channel correlations, so on feedback
loops the raw fixpoint drifts to full capacity; the cycle-invariant pass
(:mod:`repro.absint.invariants`) restores the lost bound by intersecting
with the minimum token count over directed cycles through each channel.
Results are cached under the IR's content address with the same
:class:`~repro.perf.cache.LruCache` semantics every other analysis uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import cast

from repro.absint.certificate import (
    DeadlockFreedomCertificate,
    find_token_free_cycle,
    issue_certificate,
)
from repro.absint.domain import Interval
from repro.absint.invariants import (
    TokenInvariant,
    min_cycle_occupancy_bounds,
    token_invariants,
)
from repro.absint.structure import marked_places
from repro.core.system import ChannelOrdering, SystemGraph
from repro.ir import OP_COMPUTE, OP_GET, OP_NAMES, OP_PUT, LoweredIR, lower
from repro.perf.cache import MISS, CacheStats, LruCache

#: Interval bumps tolerated per channel before widening jumps straight to
#: the capacity bound (keeps fixpoint rounds independent of FIFO depth).
WIDENING_BUMPS = 8


@dataclass(frozen=True)
class OccupancyBound:
    """The proved occupancy range of one buffered channel.

    ``lo``/``hi`` over-approximate the occupancies *any* interleaving can
    exhibit; ``hi < declared_capacity`` means the declared depth is
    provably over-provisioned (rule ERM601).
    """

    channel: str
    declared_capacity: int
    effective_capacity: int
    initial_tokens: int
    lo: int
    hi: int

    def format(self) -> str:
        return f"[{self.lo}, {self.hi}]"


@dataclass(frozen=True)
class UnreachableOp:
    """One statically-unreachable statement of a process program.

    Attributes:
        process: The owning process.
        index: Statement index in the full cyclic program (the same
            numbering lint witnesses and verifier traces use).
        kind: ``"get"``, ``"compute"``, or ``"put"``.
        channel: The channel of a communication statement, ``None`` for
            a compute.
    """

    process: str
    index: int
    kind: str
    channel: str | None


@dataclass(frozen=True)
class AbsIntResult:
    """Everything the abstract interpreter proves about one IR.

    Attributes:
        ir_hash: Content address of the analyzed IR.
        system_name: The analyzed system's name.
        rounds: Chaotic-iteration passes until the fixpoint.
        bounds: Per buffered channel (name-sorted), the occupancy range.
        invariants: The token-conservation catalog.
        dead_channels: Channels (name-sorted) on which no action is ever
            abstractly enabled — they provably never transfer.
        unreachable_ops: Statements no interleaving ever executes.
        certificate: The deadlock-freedom certificate, when one exists.
        token_free_cycle: The witness cycle when one does not (exactly
            one of the two is set for any IR).
    """

    ir_hash: str
    system_name: str
    rounds: int
    bounds: tuple[OccupancyBound, ...]
    invariants: tuple[TokenInvariant, ...]
    dead_channels: tuple[str, ...]
    unreachable_ops: tuple[UnreachableOp, ...]
    certificate: DeadlockFreedomCertificate | None
    token_free_cycle: tuple[str, ...] | None

    @property
    def deadlock_free(self) -> bool:
        """True when a certificate proves no deadlock is reachable."""
        return self.certificate is not None

    def bound_of(self, channel: str) -> OccupancyBound | None:
        """The occupancy bound of ``channel`` (``None`` if rendezvous)."""
        for bound in self.bounds:
            if bound.channel == channel:
                return bound
        return None


#: Analysis results keyed by IR content address (perf/ LRU semantics).
_CACHE = LruCache(maxsize=256)


def analyze(
    system: SystemGraph, ordering: ChannelOrdering | None = None
) -> AbsIntResult:
    """Analyze a ``(system, ordering)`` pair (lowers, then delegates)."""
    resolved = ordering or ChannelOrdering.declaration_order(system)
    return analyze_ir(lower(system, resolved))


def analyze_ir(ir: LoweredIR) -> AbsIntResult:
    """The cached full analysis of one lowered configuration."""
    cached = _CACHE.get(ir.structural_hash)
    if cached is not MISS:
        return cast(AbsIntResult, cached)
    result = _analyze_uncached(ir)
    _CACHE.put(ir.structural_hash, result)
    return result


def clear_analysis_cache() -> None:
    """Drop every cached result (tests and benchmarks)."""
    _CACHE.clear()


def analysis_cache_info() -> CacheStats:
    """Lifetime hit/miss/eviction counters of the analysis cache."""
    return _CACHE.stats


# ----------------------------------------------------------------------
# The fixpoint
# ----------------------------------------------------------------------


class _Fixpoint:
    """Mutable working state of one chaotic-iteration run."""

    def __init__(self, ir: LoweredIR):
        self.ir = ir
        #: Reachable communication slots per pid (empty chain => empty).
        self.pos: list[set[int]] = [
            {0} if ir.comm_indices[pid] else set()
            for pid in range(ir.n_processes)
        ]
        #: Occupancy interval per cid (``None`` for rendezvous channels).
        self.occ: list[Interval | None] = [
            Interval(ir.initial_tokens[cid], ir.initial_tokens[cid])
            if ir.buffered[cid]
            else None
            for cid in range(ir.n_channels)
        ]
        self.hi_bumps = [0] * ir.n_channels
        self.lo_drops = [0] * ir.n_channels
        #: Producer put slots / consumer get slots per cid.
        self.put_slots: list[list[int]] = [[] for _ in range(ir.n_channels)]
        self.get_slots: list[list[int]] = [[] for _ in range(ir.n_channels)]
        for pid in range(ir.n_processes):
            kinds = ir.op_kinds[pid]
            args = ir.op_args[pid]
            for slot, op_index in enumerate(ir.comm_indices[pid]):
                cid = args[op_index]
                if kinds[op_index] == OP_PUT:
                    self.put_slots[cid].append(slot)
                else:
                    self.get_slots[cid].append(slot)

    # -- enabledness (monotone in the abstract order) -------------------

    def _ready(self, pid: int, slots: list[int]) -> list[int]:
        return [s for s in slots if s in self.pos[pid]]

    def enabled_put_slots(self, cid: int) -> list[int]:
        """Producer slots from which a put/rendezvous on cid can fire."""
        ready = self._ready(self.ir.producers[cid], self.put_slots[cid])
        if not ready:
            return []
        interval = self.occ[cid]
        if interval is None:  # rendezvous: need a matching consumer
            if not self._ready(self.ir.consumers[cid], self.get_slots[cid]):
                return []
            return ready
        if interval.lo >= self.ir.effective_capacities[cid]:
            return []
        return ready

    def enabled_get_slots(self, cid: int) -> list[int]:
        """Consumer slots from which a get/rendezvous on cid can fire."""
        ready = self._ready(self.ir.consumers[cid], self.get_slots[cid])
        if not ready:
            return []
        interval = self.occ[cid]
        if interval is None:
            if not self._ready(self.ir.producers[cid], self.put_slots[cid]):
                return []
            return ready
        if interval.hi <= 0:
            return []
        return ready

    # -- effects (lattice joins) ----------------------------------------

    def _advance(self, pid: int, slots: list[int]) -> bool:
        n = len(self.ir.comm_indices[pid])
        changed = False
        for slot in slots:
            successor = (slot + 1) % n
            if successor not in self.pos[pid]:
                self.pos[pid].add(successor)
                changed = True
        return changed

    def _bump_hi(self, cid: int) -> bool:
        interval = self.occ[cid]
        assert interval is not None
        capacity = self.ir.effective_capacities[cid]
        if interval.hi >= capacity:
            return False
        self.hi_bumps[cid] += 1
        hi = (
            capacity
            if self.hi_bumps[cid] >= WIDENING_BUMPS
            else interval.hi + 1
        )
        self.occ[cid] = Interval(interval.lo, hi)
        return True

    def _drop_lo(self, cid: int) -> bool:
        interval = self.occ[cid]
        assert interval is not None
        if interval.lo <= 0:
            return False
        self.lo_drops[cid] += 1
        lo = (
            0
            if self.lo_drops[cid] >= WIDENING_BUMPS
            else interval.lo - 1
        )
        self.occ[cid] = Interval(lo, interval.hi)
        return True

    def step(self, cid: int) -> bool:
        """Apply every enabled action on ``cid`` once; True on change."""
        changed = False
        puts = self.enabled_put_slots(cid)
        if puts:
            if self._advance(self.ir.producers[cid], puts):
                changed = True
            if self.occ[cid] is not None and self._bump_hi(cid):
                changed = True
        gets = self.enabled_get_slots(cid)
        if gets:
            if self._advance(self.ir.consumers[cid], gets):
                changed = True
            if self.occ[cid] is not None and self._drop_lo(cid):
                changed = True
        return changed

    def run(self) -> int:
        """Iterate to the fixpoint; returns the number of full passes."""
        rounds = 0
        changed = True
        while changed:
            changed = False
            rounds += 1
            for cid in range(self.ir.n_channels):
                if self.step(cid):
                    changed = True
        return rounds


def _analyze_uncached(ir: LoweredIR) -> AbsIntResult:
    fixpoint = _Fixpoint(ir)
    rounds = fixpoint.run()

    places = marked_places(ir)
    cycle_bounds = min_cycle_occupancy_bounds(ir, places)
    invariants = token_invariants(ir, cycle_bounds)

    bounds: list[OccupancyBound] = []
    for cid in sorted(range(ir.n_channels), key=lambda c: ir.channels[c]):
        interval = fixpoint.occ[cid]
        if interval is None:
            continue
        hi = interval.hi
        cycle_bound = cycle_bounds.get(cid)
        if cycle_bound is not None and cycle_bound < hi:
            hi = cycle_bound
        lo = min(interval.lo, hi)
        bounds.append(
            OccupancyBound(
                channel=ir.channels[cid],
                declared_capacity=ir.capacities[cid],
                effective_capacity=ir.effective_capacities[cid],
                initial_tokens=ir.initial_tokens[cid],
                lo=lo,
                hi=hi,
            )
        )

    dead_channels = _dead_channels(ir, fixpoint)
    unreachable = _unreachable_ops(ir, fixpoint)
    certificate = issue_certificate(ir)
    cycle = None if certificate is not None else find_token_free_cycle(ir)
    return AbsIntResult(
        ir_hash=ir.structural_hash,
        system_name=ir.system_name,
        rounds=rounds,
        bounds=tuple(bounds),
        invariants=invariants,
        dead_channels=dead_channels,
        unreachable_ops=unreachable,
        certificate=certificate,
        token_free_cycle=cycle,
    )


def _dead_channels(ir: LoweredIR, fixpoint: _Fixpoint) -> tuple[str, ...]:
    """Channels with no abstractly-enabled action at the fixpoint.

    Monotonicity makes this exact for the abstraction: an action never
    enabled at the fixpoint was never enabled at any earlier point, so a
    dead channel provably never transfers in any interleaving.
    """
    dead: list[str] = []
    for cid in range(ir.n_channels):
        if fixpoint.enabled_put_slots(cid) or fixpoint.enabled_get_slots(cid):
            continue
        dead.append(ir.channels[cid])
    return tuple(sorted(dead))


def _unreachable_ops(
    ir: LoweredIR, fixpoint: _Fixpoint
) -> tuple[UnreachableOp, ...]:
    """Statements no interleaving ever executes.

    A communication statement executes iff its action is abstractly
    enabled with its slot reachable; a compute executes when the process
    advances past the cyclically-preceding communication statement (the
    untimed projection folds computes into that advance — see
    :mod:`repro.verify.semantics`).  Compute statements of channel-less
    processes always run (the process free-runs).
    """
    fired_slots: list[set[int]] = [set() for _ in range(ir.n_processes)]
    for cid in range(ir.n_channels):
        fired_slots[ir.producers[cid]].update(fixpoint.enabled_put_slots(cid))
        fired_slots[ir.consumers[cid]].update(fixpoint.enabled_get_slots(cid))

    unreachable: list[UnreachableOp] = []
    order = sorted(range(ir.n_processes), key=lambda p: ir.processes[p])
    for pid in order:
        kinds = ir.op_kinds[pid]
        args = ir.op_args[pid]
        comm = ir.comm_indices[pid]
        slot_of = {op_index: slot for slot, op_index in enumerate(comm)}
        preceding = 0  # comm statements seen before the current index
        for index, kind in enumerate(kinds):
            if kind == OP_COMPUTE:
                if comm:
                    slot = (preceding - 1) % len(comm)
                    if slot not in fired_slots[pid]:
                        unreachable.append(
                            UnreachableOp(
                                process=ir.processes[pid],
                                index=index,
                                kind=OP_NAMES[OP_COMPUTE],
                                channel=None,
                            )
                        )
                continue
            if slot_of[index] not in fired_slots[pid]:
                unreachable.append(
                    UnreachableOp(
                        process=ir.processes[pid],
                        index=index,
                        kind=OP_NAMES[OP_GET] if kind == OP_GET else OP_NAMES[OP_PUT],
                        channel=ir.channels[args[index]],
                    )
                )
            preceding += 1
    return tuple(unreachable)
