"""``repro.absint`` — abstract interpretation over the lowered IR.

A fixpoint dataflow engine whose program points are the communication
slots of a :class:`~repro.ir.LoweredIR` and whose domain is per-channel
occupancy intervals joined over all interleavings
(:mod:`repro.absint.engine`), a token-conservation/cycle-invariant pass
(:mod:`repro.absint.invariants`), and a siphon-style emptiness check
issuing machine-checkable deadlock-freedom certificates
(:mod:`repro.absint.certificate`).  Soundness is the contract: every
published bound over-approximates anything any simulation trace ever
exhibits, and a certificate is accepted only after independent
re-validation against the IR it names.

Consumers: the ERM6xx lint rules (:mod:`repro.lint.rules.absint`), the
explicit-state verifier's certificate fast path
(:mod:`repro.verify.checker`), the Explorer's static preflight
(:mod:`repro.dse.explorer`), and the ``ermes analyze`` subcommand.
"""

from repro.absint.certificate import (
    CERTIFICATE_VERSION,
    METHOD_SIPHON_RANKING,
    CertificateError,
    DeadlockFreedomCertificate,
    check_certificate,
    find_token_free_cycle,
    issue_certificate,
)
from repro.absint.domain import Interval
from repro.absint.engine import (
    WIDENING_BUMPS,
    AbsIntResult,
    OccupancyBound,
    UnreachableOp,
    analysis_cache_info,
    analyze,
    analyze_ir,
    clear_analysis_cache,
)
from repro.absint.invariants import (
    TokenInvariant,
    min_cycle_occupancy_bounds,
    token_invariants,
)
from repro.absint.report import format_result, result_to_dict
from repro.absint.structure import MarkedPlace, marked_places

__all__ = [
    "CERTIFICATE_VERSION",
    "METHOD_SIPHON_RANKING",
    "WIDENING_BUMPS",
    "AbsIntResult",
    "CertificateError",
    "DeadlockFreedomCertificate",
    "Interval",
    "MarkedPlace",
    "OccupancyBound",
    "TokenInvariant",
    "UnreachableOp",
    "analysis_cache_info",
    "analyze",
    "analyze_ir",
    "check_certificate",
    "clear_analysis_cache",
    "find_token_free_cycle",
    "format_result",
    "issue_certificate",
    "marked_places",
    "min_cycle_occupancy_bounds",
    "result_to_dict",
    "token_invariants",
]
