"""The interval abstract domain of channel occupancies.

A buffered channel's occupancy is a bounded integer; the abstract
interpreter tracks one closed interval ``[lo, hi]`` per channel and joins
over every interleaving.  The domain is a complete lattice under interval
inclusion (bottom is represented implicitly — a channel always has at
least its initial occupancy, so analysis starts from the singleton
``[m0, m0]`` and only ever widens).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` with ``lo <= hi``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValidationError(
                f"empty interval [{self.lo}, {self.hi}]"
            )

    def join(self, other: "Interval") -> "Interval":
        """The smallest interval containing both operands (lattice join)."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def format(self) -> str:
        return f"[{self.lo}, {self.hi}]"
