"""Token-conservation invariants and cycle-based occupancy bounds.

Firing a marked-graph transition consumes one token from each input
place and produces one into each output place, so for any directed cycle
exactly one consumed and one produced place lie on the cycle: **the
token count of every directed cycle is a firing invariant**.  Three
families of invariants follow for the structural marked graph of a
configuration (:mod:`repro.absint.structure`):

* **process-cycle** — each process's cyclic statement chain carries
  exactly one token forever (the serial-execution discipline);
* **channel-conservation** — for a buffered channel, the data place and
  the credit place form a two-place cycle, so ``occupancy + free slots``
  equals the effective capacity at all times;
* **min-token-cycle** — the occupancy of a buffered channel is the token
  count of its data place, and a place on a directed cycle can never
  hold more tokens than the whole cycle carries; the *minimum* token
  count over all cycles through the data place is therefore a sound
  occupancy upper bound.  On feedback loops this is dramatically tighter
  than the capacity (a loop circulating one token bounds every member
  FIFO at one item regardless of declared depth) — exactly the
  correlation the interval fixpoint of :mod:`repro.absint.engine` loses,
  recovered here by a token-weighted shortest-path search.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.absint.structure import (
    MarkedPlace,
    buffered_get_transition,
    buffered_put_transition,
)
from repro.ir import LoweredIR


@dataclass(frozen=True)
class TokenInvariant:
    """One proved token-conservation fact.

    Attributes:
        kind: ``"process-cycle"``, ``"channel-conservation"``, or
            ``"min-token-cycle"``.
        subject: The process or channel the invariant is about.
        tokens: The invariant token total (for ``min-token-cycle``, the
            occupancy bound it implies).
        detail: Human-readable statement of the invariant.
    """

    kind: str
    subject: str
    tokens: int
    detail: str


def token_invariants(
    ir: LoweredIR, cycle_bounds: dict[int, int]
) -> tuple[TokenInvariant, ...]:
    """The invariant catalog of ``ir`` (deterministic, name-sorted).

    ``cycle_bounds`` is the :func:`min_cycle_occupancy_bounds` result;
    a ``min-token-cycle`` invariant is emitted only where it improves on
    the trivial capacity bound.
    """
    invariants: list[TokenInvariant] = []
    for pid in sorted(
        range(ir.n_processes), key=lambda p: ir.processes[p]
    ):
        if not ir.comm_indices[pid]:
            continue
        name = ir.processes[pid]
        invariants.append(
            TokenInvariant(
                kind="process-cycle",
                subject=name,
                tokens=1,
                detail=(
                    f"the cyclic statement chain of {name!r} carries "
                    "exactly one token under every firing sequence "
                    "(serial execution)"
                ),
            )
        )
    for cid in sorted(
        range(ir.n_channels), key=lambda c: ir.channels[c]
    ):
        if not ir.buffered[cid]:
            continue
        name = ir.channels[cid]
        capacity = ir.effective_capacities[cid]
        invariants.append(
            TokenInvariant(
                kind="channel-conservation",
                subject=name,
                tokens=capacity,
                detail=(
                    f"occupancy({name}) + free slots({name}) = "
                    f"{capacity} at all times (data/credit conservation)"
                ),
            )
        )
        bound = cycle_bounds.get(cid)
        if bound is not None and bound < capacity:
            invariants.append(
                TokenInvariant(
                    kind="min-token-cycle",
                    subject=name,
                    tokens=bound,
                    detail=(
                        f"a directed cycle through {name!r} carries only "
                        f"{bound} token(s), so its occupancy can never "
                        f"exceed {bound} (declared depth {capacity})"
                    ),
                )
            )
    return tuple(invariants)


def min_cycle_occupancy_bounds(
    ir: LoweredIR, places: tuple[MarkedPlace, ...]
) -> dict[int, int]:
    """Per buffered cid, the minimum cycle token count through its data
    place — *when it beats the trivial capacity bound*.

    The data place of channel ``c`` runs ``put(c) -> get(c)`` and holds
    ``m0`` tokens; any directed cycle through it closes with a path
    ``get(c) -> ... -> put(c)``, so the cycle total is ``m0`` plus the
    token-weighted shortest path back.  The credit place alone closes a
    two-place cycle of exactly the effective capacity, so the search is
    bounded: paths of weight ``>= capacity - m0`` cannot improve on it
    and are pruned (which keeps the pass near-linear on feedback-free
    designs, where no better path exists at all).

    Channels without an entry provably have no cycle tighter than their
    capacity.
    """
    adjacency: dict[str, list[tuple[str, int]]] = {}
    for place in places:
        adjacency.setdefault(place.source, []).append(
            (place.target, place.tokens)
        )
        adjacency.setdefault(place.target, [])
    bounds: dict[int, int] = {}
    for cid in range(ir.n_channels):
        if not ir.buffered[cid]:
            continue
        channel = ir.channels[cid]
        initial = ir.initial_tokens[cid]
        threshold = ir.effective_capacities[cid] - initial
        if threshold <= 0:
            continue  # the credit cycle is already optimal
        distance = _bounded_shortest_path(
            adjacency,
            start=buffered_get_transition(channel),
            goal=buffered_put_transition(channel),
            threshold=threshold,
            skip_first=credit_edge_of(channel),
        )
        if distance is not None:
            bounds[cid] = initial + distance
    return bounds


def credit_edge_of(channel: str) -> tuple[str, str]:
    """The ``get -> put`` edge contributed by a channel's credit place
    (excluded from its own search so the trivial bound never shadows a
    genuinely tighter cycle of equal first-hop weight)."""
    return (
        buffered_get_transition(channel),
        buffered_put_transition(channel),
    )


def _bounded_shortest_path(
    adjacency: dict[str, list[tuple[str, int]]],
    start: str,
    goal: str,
    threshold: int,
    skip_first: tuple[str, str],
) -> int | None:
    """Dijkstra from ``start`` to ``goal`` over token weights, pruning
    every path of weight ``>= threshold``; ``None`` when no cheaper path
    exists.  ``skip_first`` suppresses one direct edge (the channel's own
    credit place) — longer routes through it remain admissible because
    its weight already exceeds any returned distance."""
    best: dict[str, int] = {start: 0}
    heap: list[tuple[int, str]] = [(0, start)]
    while heap:
        distance, node = heapq.heappop(heap)
        if distance > best.get(node, threshold):
            continue
        if node == goal:
            return distance
        for successor, weight in adjacency.get(node, ()):
            if node == skip_first[0] and successor == skip_first[1]:
                if node == start:
                    continue
            candidate = distance + weight
            if candidate >= threshold:
                continue
            if candidate < best.get(successor, threshold):
                best[successor] = candidate
                heapq.heappush(heap, (candidate, successor))
    return None
