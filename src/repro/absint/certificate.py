"""Machine-checkable deadlock-freedom certificates.

A blocking-protocol configuration deadlocks if and only if its structural
marked graph (:mod:`repro.absint.structure`) has a token-free directed
cycle — Commoner's liveness condition for marked graphs, the same
argument :mod:`repro.tmg.deadlock` applies and
``tests/verify/test_agreement.py`` cross-checks against exhaustive
search.  A :class:`DeadlockFreedomCertificate` is the *positive witness*
of that condition: a ranking of transitions that strictly increases
along every token-free place.  If such a ranking exists, no token-free
cycle can (a cycle cannot strictly increase), so the configuration is
live; conversely, whenever no token-free cycle exists a topological
order of the token-free subgraph yields a ranking.

The point of issuing an explicit certificate instead of a boolean is
*checkability*: :func:`check_certificate` re-derives the place structure
from the IR and validates the ranking in one linear pass — no fixpoint,
no search — so a consumer (the explicit-state verifier, a CI job, a
reviewer) can accept the guarantee without trusting the issuer.  The
certificate is bound to the configuration by the IR's content address
(:attr:`~repro.ir.LoweredIR.structural_hash`); a certificate can never
be replayed against a different design.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.absint.structure import MarkedPlace, marked_places
from repro.errors import VerificationError
from repro.ir import LoweredIR

#: Format tag carried by every certificate (bump on layout changes).
CERTIFICATE_VERSION = "cert:v1"

#: The one issuing method this module implements.
METHOD_SIPHON_RANKING = "siphon-ranking"


class CertificateError(VerificationError):
    """A deadlock-freedom certificate failed validation.

    Raised by :func:`check_certificate` when a certificate does not match
    the configuration it is presented for (hash mismatch) or its ranking
    does not actually increase along every token-free place.  A failing
    check means the certificate must be rejected — it never says anything
    about the design itself.
    """


@dataclass(frozen=True)
class DeadlockFreedomCertificate:
    """A verifiable proof that one configuration cannot deadlock.

    Attributes:
        ir_hash: Content address of the certified
            :class:`~repro.ir.LoweredIR` (the binding; checked first).
        system_name: The certified system's name (for error messages).
        method: The issuing argument (:data:`METHOD_SIPHON_RANKING`).
        version: Certificate format tag (:data:`CERTIFICATE_VERSION`).
        ranks: Name-sorted ``(transition, rank)`` pairs such that every
            token-free place ``u -> v`` satisfies ``rank(u) < rank(v)``.
    """

    ir_hash: str
    system_name: str
    method: str
    version: str
    ranks: tuple[tuple[str, int], ...]

    def rank_map(self) -> dict[str, int]:
        """The ranking as a dictionary."""
        return dict(self.ranks)

    def to_dict(self) -> dict[str, object]:
        """A JSON-safe rendering (``ermes analyze --format json``)."""
        return {
            "ir_hash": self.ir_hash,
            "system": self.system_name,
            "method": self.method,
            "version": self.version,
            "ranks": {name: rank for name, rank in self.ranks},
        }

    @classmethod
    def from_dict(cls, doc: dict[str, object]) -> "DeadlockFreedomCertificate":
        """Rebuild a certificate from its :meth:`to_dict` rendering."""
        try:
            ranks = doc["ranks"]
            if not isinstance(ranks, dict):
                raise TypeError("ranks must be an object")
            return cls(
                ir_hash=str(doc["ir_hash"]),
                system_name=str(doc["system"]),
                method=str(doc["method"]),
                version=str(doc["version"]),
                ranks=tuple(
                    sorted((str(k), int(v)) for k, v in ranks.items())
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CertificateError(
                f"malformed certificate document: {error}"
            ) from error


def _token_free_graph(
    places: tuple[MarkedPlace, ...],
) -> tuple[dict[str, list[str]], dict[str, int]]:
    """Adjacency and in-degrees of the token-free place subgraph."""
    edges: dict[str, list[str]] = {}
    indegree: dict[str, int] = {}
    for place in places:
        if place.tokens > 0:
            continue
        edges.setdefault(place.source, []).append(place.target)
        edges.setdefault(place.target, [])
        indegree[place.target] = indegree.get(place.target, 0) + 1
        indegree.setdefault(place.source, 0)
    return edges, indegree


def issue_certificate(ir: LoweredIR) -> DeadlockFreedomCertificate | None:
    """Certify ``ir`` deadlock-free, or return ``None`` if it is not.

    Kahn's topological sort over the token-free subgraph of the
    structural marked graph: a complete order yields the ranking, a
    leftover means a token-free cycle exists (obtain its witness with
    :func:`find_token_free_cycle`).  Linear in places + transitions.
    """
    edges, indegree = _token_free_graph(marked_places(ir))
    order = _kahn_order(edges, indegree)
    if order is None:
        return None
    return DeadlockFreedomCertificate(
        ir_hash=ir.structural_hash,
        system_name=ir.system_name,
        method=METHOD_SIPHON_RANKING,
        version=CERTIFICATE_VERSION,
        ranks=tuple(sorted(order.items())),
    )


def find_token_free_cycle(ir: LoweredIR) -> tuple[str, ...] | None:
    """A witness token-free cycle (transition names), or ``None`` if live.

    The negative counterpart of :func:`issue_certificate`: exactly one of
    the two returns a value for any IR.
    """
    edges, indegree = _token_free_graph(marked_places(ir))
    if _kahn_order(edges, indegree) is not None:
        return None
    # Strip nodes not on any cycle (repeat Kahn, keep the leftovers),
    # then walk successors inside the leftover set until a node repeats.
    remaining = _kahn_leftover(edges, indegree)
    start = min(remaining)
    path: list[str] = [start]
    seen = {start}
    while True:
        node = path[-1]
        successor = min(s for s in edges[node] if s in remaining)
        if successor in seen:
            cycle_start = path.index(successor)
            return tuple(path[cycle_start:])
        seen.add(successor)
        path.append(successor)


def _kahn_order(
    edges: dict[str, list[str]], indegree: dict[str, int]
) -> dict[str, int] | None:
    """Topological ranks of the graph, or ``None`` when it has a cycle.

    Deterministic: ready nodes are processed in sorted order, so the
    ranking (and hence the certificate bytes) is stable run to run.
    """
    counts = dict(indegree)
    ready = sorted(node for node, degree in counts.items() if degree == 0)
    queue = deque(ready)
    order: dict[str, int] = {}
    while queue:
        node = queue.popleft()
        order[node] = len(order)
        for successor in sorted(edges[node]):
            counts[successor] -= 1
            if counts[successor] == 0:
                queue.append(successor)
    if len(order) != len(counts):
        return None
    return order


def _kahn_leftover(
    edges: dict[str, list[str]], indegree: dict[str, int]
) -> set[str]:
    """The nodes Kahn's algorithm cannot order (they lie on/after cycles),
    restricted to those still having a successor inside the leftover set
    (i.e. the cyclic core)."""
    counts = dict(indegree)
    queue = deque(node for node, degree in counts.items() if degree == 0)
    removed: set[str] = set()
    while queue:
        node = queue.popleft()
        removed.add(node)
        for successor in edges[node]:
            counts[successor] -= 1
            if counts[successor] == 0:
                queue.append(successor)
    leftover = {node for node in counts if node not in removed}
    # Trim dead-end tails feeding into the cyclic core from outside.
    trimmed = True
    while trimmed:
        trimmed = False
        for node in list(leftover):
            if not any(s in leftover for s in edges[node]):
                leftover.discard(node)
                trimmed = True
    return leftover


def check_certificate(
    ir: LoweredIR, certificate: DeadlockFreedomCertificate
) -> None:
    """Validate ``certificate`` against ``ir`` — the trust boundary.

    Re-derives the place structure from the IR and checks, in one linear
    pass, that the ranking strictly increases along every token-free
    place.  Raises :class:`CertificateError` on any mismatch; returns
    silently when the certificate holds (and hence the configuration
    provably cannot deadlock).
    """
    if certificate.version != CERTIFICATE_VERSION:
        raise CertificateError(
            f"unsupported certificate version {certificate.version!r} "
            f"(expected {CERTIFICATE_VERSION!r})"
        )
    if certificate.method != METHOD_SIPHON_RANKING:
        raise CertificateError(
            f"unknown certification method {certificate.method!r}"
        )
    if certificate.ir_hash != ir.structural_hash:
        raise CertificateError(
            f"certificate was issued for IR {certificate.ir_hash[:12]}... "
            f"but presented for {ir.structural_hash[:12]}... "
            f"(system {ir.system_name!r})"
        )
    ranks = certificate.rank_map()
    for place in marked_places(ir):
        if place.tokens > 0:
            continue
        source_rank = ranks.get(place.source)
        target_rank = ranks.get(place.target)
        if source_rank is None or target_rank is None:
            missing = place.source if source_rank is None else place.target
            raise CertificateError(
                f"certificate for {ir.system_name!r} assigns no rank to "
                f"transition {missing!r} (required by token-free place "
                f"{place.name!r})"
            )
        if not source_rank < target_rank:
            raise CertificateError(
                f"certificate for {ir.system_name!r} is not a valid "
                f"ranking: token-free place {place.name!r} runs "
                f"{place.source!r} (rank {source_rank}) -> "
                f"{place.target!r} (rank {target_rank})"
            )
