"""FIFO buffer sizing: the complementary problem to channel ordering."""

from repro.sizing.capacity import (
    SizingResult,
    cycle_time_with_capacities,
    minimize_buffers,
    size_buffers,
)

__all__ = [
    "SizingResult",
    "cycle_time_with_capacities",
    "minimize_buffers",
    "size_buffers",
]
