"""FIFO capacity sizing for buffered channels.

The paper's related-work section notes that dataflow-style designs "lead
to communication channels based on FIFOs, which must be carefully sized"
— the complementary problem to channel ordering.  This module solves it
on top of the same TMG machinery: given a system whose channels are FIFOs,
find small per-channel capacities that reach a target cycle time.

Theory: in the split FIFO model each channel contributes a *credit place*
(free slots) on the reverse direction.  Forward data dependencies are
unaffected by capacity, so the achievable floor is the cycle time with all
capacities at infinity — equivalently, the maximum ratio over cycles that
use no credit place.  Above that floor, capacity only relaxes cycles
through credit places, and adding slots is monotone (never hurts), which
makes a greedy critical-cycle-driven procedure sound: while the target is
missed, find the critical cycle; if it traverses credit places, the cycle
is capacity-limited — bump the traversed channel whose relaxation is
cheapest; otherwise the target is unreachable by sizing alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Union

from repro.core.system import Channel, ChannelOrdering, SystemGraph
from repro.errors import ReproError, ValidationError
from repro.model.build import build_tmg
from repro.tmg.analysis import analyze

Number = Union[Fraction, float]


@dataclass(frozen=True)
class SizingResult:
    """Outcome of a capacity-sizing run.

    Attributes:
        capacities: Chosen capacity per channel (only channels that needed
            buffering appear; absent channels stay rendezvous).
        cycle_time: Achieved cycle time under those capacities.
        feasible: Whether the target was reached (False means the result
            carries the best capacity-saturated configuration found).
        total_slots: Sum of all chosen capacities — the buffer cost.
    """

    capacities: Mapping[str, int]
    cycle_time: Number
    feasible: bool

    @property
    def total_slots(self) -> int:
        return sum(self.capacities.values())


def _with_capacities(
    system: SystemGraph, capacities: Mapping[str, int]
) -> SystemGraph:
    """Clone the system with the given channel capacities applied."""
    clone = system.copy()
    for name, capacity in capacities.items():
        channel = clone.channel(name)
        clone._channels[name] = Channel(
            channel.name,
            channel.producer,
            channel.consumer,
            latency=channel.latency,
            capacity=max(capacity, channel.initial_tokens),
            initial_tokens=channel.initial_tokens,
        )
    return clone


def cycle_time_with_capacities(
    system: SystemGraph,
    capacities: Mapping[str, int],
    ordering: ChannelOrdering | None = None,
) -> Number:
    """Cycle time of the system with the given FIFO capacities."""
    sized = _with_capacities(system, capacities)
    model = build_tmg(sized, ordering)
    return analyze(model.tmg).cycle_time


def size_buffers(
    system: SystemGraph,
    target_cycle_time: Number,
    ordering: ChannelOrdering | None = None,
    max_capacity: int = 64,
    max_rounds: int = 10_000,
) -> SizingResult:
    """Find small FIFO capacities reaching the target cycle time.

    Starts from every channel at capacity 1 (the minimum meaningful FIFO)
    and greedily bumps the capacity of credit-limited channels on the
    critical cycle until the target is met, a channel saturates
    ``max_capacity``, or the floor (no credit place on the critical cycle)
    is hit.

    Args:
        system: The system; existing ``initial_tokens`` are preserved and
            act as lower bounds on the affected channels' capacities.
        target_cycle_time: The cycle time to reach.
        ordering: Statement orders (default declaration).
        max_capacity: Per-channel capacity ceiling.
        max_rounds: Safety bound on greedy iterations.

    Raises:
        ValidationError: ``target_cycle_time`` is not positive.
    """
    if target_cycle_time <= 0:
        raise ValidationError("target cycle time must be positive")

    capacities: dict[str, int] = {
        c.name: max(1, c.initial_tokens) for c in system.channels
    }

    for _ in range(max_rounds):
        sized = _with_capacities(system, capacities)
        model = build_tmg(sized, ordering)
        report = analyze(model.tmg)
        if report.cycle_time <= target_cycle_time:
            return SizingResult(
                capacities=dict(capacities),
                cycle_time=report.cycle_time,
                feasible=True,
            )
        # Channels whose credit place lies on the critical cycle are the
        # capacity-limited ones.
        bumpable = [
            place[: -len("/credit")]
            for place in report.critical_places
            if place.endswith("/credit")
        ]
        bumpable = [
            name for name in bumpable if capacities[name] < max_capacity
        ]
        if not bumpable:
            return SizingResult(
                capacities=dict(capacities),
                cycle_time=report.cycle_time,
                feasible=False,
            )
        # Bump the cheapest channel (fewest current slots) on the cycle —
        # a simple cost heuristic that keeps totals small.
        chosen = min(bumpable, key=lambda name: capacities[name])
        capacities[chosen] += 1
    raise ReproError(
        f"buffer sizing did not converge within {max_rounds} rounds"
    )


def minimize_buffers(
    system: SystemGraph,
    target_cycle_time: Number,
    ordering: ChannelOrdering | None = None,
    max_capacity: int = 64,
) -> SizingResult:
    """Greedy sizing followed by a trim pass.

    After :func:`size_buffers` reaches the target, try to reduce each
    channel's capacity (largest first) while the target still holds —
    removing the slack the greedy ascent may have left behind.
    """
    result = size_buffers(
        system, target_cycle_time, ordering, max_capacity=max_capacity
    )
    if not result.feasible:
        return result
    capacities = dict(result.capacities)
    for name in sorted(capacities, key=lambda n: -capacities[n]):
        floor = max(1, system.channel(name).initial_tokens)
        while capacities[name] > floor:
            capacities[name] -= 1
            if (
                cycle_time_with_capacities(system, capacities, ordering)
                > target_cycle_time
            ):
                capacities[name] += 1
                break
    final_ct = cycle_time_with_capacities(system, capacities, ordering)
    return SizingResult(
        capacities=capacities, cycle_time=final_ct, feasible=True
    )
