"""Structural validation of system graphs.

A system must satisfy a handful of invariants before analysis or synthesis
is meaningful.  :func:`validate_system` checks them all and raises
:class:`~repro.errors.ValidationError` with an actionable message on the
first violation.
"""

from __future__ import annotations

from collections import deque

from repro.core.system import ProcessKind, SystemGraph
from repro.errors import ValidationError


def validate_system(system: SystemGraph) -> None:
    """Check all structural invariants of ``system``.

    Invariants:

    * at least one worker process;
    * sources have no input channels, sinks have no output channels;
    * every worker process has at least one input and one output channel
      (a worker with no inputs never synchronizes with the environment and
      a worker with no outputs is dead code — both are almost certainly
      specification mistakes);
    * every process is reachable from some source and co-reachable from
      some sink through channels (no disconnected islands), when the system
      has sources/sinks at all.
    """
    if not system.workers():
        raise ValidationError(f"system {system.name!r} has no worker processes")

    for process in system.processes:
        n_in = len(system.input_channels(process.name))
        n_out = len(system.output_channels(process.name))
        if process.kind is ProcessKind.SOURCE and n_in:
            raise ValidationError(
                f"source {process.name!r} must not have input channels "
                f"(has {n_in})"
            )
        if process.kind is ProcessKind.SINK and n_out:
            raise ValidationError(
                f"sink {process.name!r} must not have output channels "
                f"(has {n_out})"
            )
        if process.kind is ProcessKind.WORKER:
            if n_in == 0:
                raise ValidationError(
                    f"worker {process.name!r} has no input channels; model "
                    "free-running producers as testbench sources"
                )
            if n_out == 0:
                raise ValidationError(
                    f"worker {process.name!r} has no output channels; model "
                    "pure consumers as testbench sinks"
                )

    if system.sources():
        unreachable = _unreachable_from(
            system, {p.name for p in system.sources()}, forward=True
        )
        if unreachable:
            raise ValidationError(
                f"processes not reachable from any source: {sorted(unreachable)}"
            )
    if system.sinks():
        cannot_reach = _unreachable_from(
            system, {p.name for p in system.sinks()}, forward=False
        )
        if cannot_reach:
            raise ValidationError(
                f"processes that cannot reach any sink: {sorted(cannot_reach)}"
            )


def _unreachable_from(
    system: SystemGraph, roots: set[str], forward: bool
) -> set[str]:
    """Process names not reached by BFS from ``roots``.

    ``forward=True`` follows channels producer→consumer; ``False`` follows
    them in reverse (co-reachability).
    """
    seen = set(roots)
    queue = deque(roots)
    while queue:
        current = queue.popleft()
        neighbors = (
            system.successors(current) if forward else system.predecessors(current)
        )
        for neighbor in neighbors:
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return {p.name for p in system.processes} - seen
