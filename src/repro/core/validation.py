"""Structural validation of system graphs.

A system must satisfy a handful of invariants before analysis or synthesis
is meaningful.  The collect-all core, :func:`structural_diagnostics`,
reports *every* violation as a :class:`~repro.diagnostics.Diagnostic` with
a stable ``ERM1xx`` rule code — this is what the linter
(:mod:`repro.lint`) and the pre-flight checks consume.
:func:`validate_system` is the historical fail-fast wrapper: it raises
:class:`~repro.errors.ValidationError` with the first error-severity
finding's message, so existing callers keep their exact behaviour.

Rule codes:

* ``ERM101`` — no worker processes;
* ``ERM102`` — a source has input channels;
* ``ERM103`` — a sink has output channels;
* ``ERM104`` — a worker has no input channels;
* ``ERM105`` — a worker has no output channels;
* ``ERM106`` — a process is not reachable from any source;
* ``ERM107`` — a process cannot reach any sink;
* ``ERM108`` — a channel ordering is not a permutation of a process's
  declared ports (ordering ↔ topology mismatch).
"""

from __future__ import annotations

from collections import deque

from repro.core.system import ChannelOrdering, ProcessKind, SystemGraph
from repro.diagnostics import Diagnostic, Severity
from repro.errors import ValidationError


def validate_system(system: SystemGraph) -> None:
    """Check all structural invariants of ``system``; raise on the first.

    Invariants:

    * at least one worker process;
    * sources have no input channels, sinks have no output channels;
    * every worker process has at least one input and one output channel
      (a worker with no inputs never synchronizes with the environment and
      a worker with no outputs is dead code — both are almost certainly
      specification mistakes);
    * every process is reachable from some source and co-reachable from
      some sink through channels (no disconnected islands), when the system
      has sources/sinks at all.

    This is a thin wrapper over :func:`structural_diagnostics` that raises
    :class:`~repro.errors.ValidationError` with the first error-severity
    finding.  Use the collect-all core directly to see every violation at
    once.
    """
    for diagnostic in structural_diagnostics(system):
        if diagnostic.severity is Severity.ERROR:
            raise ValidationError(diagnostic.message)


def structural_diagnostics(
    system: SystemGraph, ordering: ChannelOrdering | None = None
) -> list[Diagnostic]:
    """Every structural violation of ``system`` (and optionally of an
    ordering against it), as ``ERM1xx`` diagnostics.

    Unlike :func:`validate_system` this never raises: it returns the full
    list so a designer can fix all problems in one pass.  Findings are
    emitted in checking order (worker census, port directions, reachability,
    ordering ↔ topology); the linter re-sorts by severity.
    """
    diagnostics: list[Diagnostic] = []

    if not system.workers():
        diagnostics.append(
            Diagnostic(
                rule="ERM101",
                severity=Severity.ERROR,
                message=f"system {system.name!r} has no worker processes",
                location=(system.name,),
            )
        )

    for process in system.processes:
        n_in = len(system.input_channels(process.name))
        n_out = len(system.output_channels(process.name))
        if process.kind is ProcessKind.SOURCE and n_in:
            diagnostics.append(
                Diagnostic(
                    rule="ERM102",
                    severity=Severity.ERROR,
                    message=(
                        f"source {process.name!r} must not have input "
                        f"channels (has {n_in})"
                    ),
                    location=(process.name,),
                )
            )
        if process.kind is ProcessKind.SINK and n_out:
            diagnostics.append(
                Diagnostic(
                    rule="ERM103",
                    severity=Severity.ERROR,
                    message=(
                        f"sink {process.name!r} must not have output "
                        f"channels (has {n_out})"
                    ),
                    location=(process.name,),
                )
            )
        if process.kind is ProcessKind.WORKER:
            if n_in == 0:
                diagnostics.append(
                    Diagnostic(
                        rule="ERM104",
                        severity=Severity.ERROR,
                        message=(
                            f"worker {process.name!r} has no input channels; "
                            "model free-running producers as testbench sources"
                        ),
                        location=(process.name,),
                    )
                )
            if n_out == 0:
                diagnostics.append(
                    Diagnostic(
                        rule="ERM105",
                        severity=Severity.ERROR,
                        message=(
                            f"worker {process.name!r} has no output channels; "
                            "model pure consumers as testbench sinks"
                        ),
                        location=(process.name,),
                    )
                )

    if system.sources():
        unreachable = _unreachable_from(
            system, {p.name for p in system.sources()}, forward=True
        )
        if unreachable:
            diagnostics.append(
                Diagnostic(
                    rule="ERM106",
                    severity=Severity.ERROR,
                    message=(
                        "processes not reachable from any source: "
                        f"{sorted(unreachable)}"
                    ),
                    location=tuple(sorted(unreachable)),
                )
            )
    if system.sinks():
        cannot_reach = _unreachable_from(
            system, {p.name for p in system.sinks()}, forward=False
        )
        if cannot_reach:
            diagnostics.append(
                Diagnostic(
                    rule="ERM107",
                    severity=Severity.ERROR,
                    message=(
                        "processes that cannot reach any sink: "
                        f"{sorted(cannot_reach)}"
                    ),
                    location=tuple(sorted(cannot_reach)),
                )
            )

    if ordering is not None:
        diagnostics.extend(ordering_diagnostics(system, ordering))
    return diagnostics


def ordering_diagnostics(
    system: SystemGraph, ordering: ChannelOrdering
) -> list[Diagnostic]:
    """``ERM108`` findings: the ordering ↔ topology mismatches.

    The collect-all counterpart of
    :meth:`~repro.core.system.ChannelOrdering.validate`: one diagnostic per
    process whose gets/puts are not a permutation of its declared input/
    output channels, plus one per ordering entry that names a process the
    system does not have.
    """
    diagnostics: list[Diagnostic] = []
    for name in system.process_names:
        declared_in = sorted(system.input_channels(name))
        declared_out = sorted(system.output_channels(name))
        got_in = sorted(ordering.gets.get(name, ()))
        got_out = sorted(ordering.puts.get(name, ()))
        if got_in != declared_in:
            diagnostics.append(
                Diagnostic(
                    rule="ERM108",
                    severity=Severity.ERROR,
                    message=(
                        f"ordering for {name!r}: gets {got_in} is not a "
                        f"permutation of input channels {declared_in}"
                    ),
                    location=(name,),
                )
            )
        if got_out != declared_out:
            diagnostics.append(
                Diagnostic(
                    rule="ERM108",
                    severity=Severity.ERROR,
                    message=(
                        f"ordering for {name!r}: puts {got_out} is not a "
                        f"permutation of output channels {declared_out}"
                    ),
                    location=(name,),
                )
            )
    known = set(system.process_names)
    for name in sorted((set(ordering.gets) | set(ordering.puts)) - known):
        diagnostics.append(
            Diagnostic(
                rule="ERM108",
                severity=Severity.ERROR,
                message=(
                    f"ordering references unknown process {name!r}"
                ),
                location=(name,),
            )
        )
    return diagnostics


def _unreachable_from(
    system: SystemGraph, roots: set[str], forward: bool
) -> set[str]:
    """Process names not reached by BFS from ``roots``.

    ``forward=True`` follows channels producer→consumer; ``False`` follows
    them in reverse (co-reachability).
    """
    seen = set(roots)
    queue = deque(roots)
    while queue:
        current = queue.popleft()
        neighbors = (
            system.successors(current) if forward else system.predecessors(current)
        )
        for neighbor in neighbors:
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return {p.name for p in system.processes} - seen
