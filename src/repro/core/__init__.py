"""System-level model substrate: processes, channels, orderings, generators.

This package is the reproduction's representation of a communication-centric
SoC specification (the paper's Fig. 1 / Fig. 2 view): a
:class:`~repro.core.system.SystemGraph` of concurrent processes joined by
blocking point-to-point channels, plus the per-process get/put statement
orders (:class:`~repro.core.system.ChannelOrdering`) that the methodology
optimizes.
"""

from repro.core.builder import SystemBuilder, system_from_tables
from repro.core.dot import system_to_dot
from repro.core.generators import (
    fork_join,
    mesh_soc,
    motivating_deadlock_ordering,
    motivating_example,
    motivating_optimal_ordering,
    motivating_suboptimal_ordering,
    pipeline,
    ring_soc,
    synthetic_soc,
)
from repro.core.serialization import (
    load_ordering,
    load_system,
    ordering_from_dict,
    ordering_to_dict,
    save_ordering,
    save_system,
    system_from_dict,
    system_to_dict,
)
from repro.core.system import (
    Channel,
    ChannelOrdering,
    Process,
    ProcessKind,
    SystemGraph,
    all_orderings,
)
from repro.core.validation import validate_system

__all__ = [
    "Channel",
    "ChannelOrdering",
    "Process",
    "ProcessKind",
    "SystemBuilder",
    "SystemGraph",
    "all_orderings",
    "fork_join",
    "load_ordering",
    "load_system",
    "mesh_soc",
    "motivating_deadlock_ordering",
    "motivating_example",
    "motivating_optimal_ordering",
    "motivating_suboptimal_ordering",
    "ordering_from_dict",
    "ordering_to_dict",
    "pipeline",
    "ring_soc",
    "save_ordering",
    "save_system",
    "synthetic_soc",
    "system_from_dict",
    "system_from_tables",
    "system_to_dict",
    "system_to_dot",
    "validate_system",
]
