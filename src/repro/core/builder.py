"""Fluent builder for :class:`~repro.core.system.SystemGraph`.

The builder is sugar over ``add_process``/``add_channel`` that reads like a
netlist.  It is the construction API used throughout the examples::

    system = (
        SystemBuilder("pipeline")
        .source("src", latency=1)
        .process("stage0", latency=4)
        .process("stage1", latency=2)
        .sink("snk", latency=1)
        .channel("a", "src", "stage0", latency=2)
        .channel("b", "stage0", "stage1", latency=1)
        .channel("c", "stage1", "snk", latency=1)
        .build()
    )
"""

from __future__ import annotations

from typing import Mapping

from repro.core.system import Channel, Process, ProcessKind, SystemGraph
from repro.core.validation import validate_system
from repro.errors import ValidationError


class SystemBuilder:
    """Incrementally assemble a system, then :meth:`build` it.

    ``build`` validates the result by default so malformed systems fail at
    construction time rather than deep inside analysis.
    """

    def __init__(self, name: str = "system"):
        self._system = SystemGraph(name)

    def process(self, name: str, latency: int = 1) -> "SystemBuilder":
        """Add a worker (design) process."""
        self._system.add_process(Process(name, latency=latency))
        return self

    def source(self, name: str, latency: int = 1) -> "SystemBuilder":
        """Add a testbench source process (always ready to produce data)."""
        self._system.add_process(
            Process(name, latency=latency, kind=ProcessKind.SOURCE)
        )
        return self

    def sink(self, name: str, latency: int = 1) -> "SystemBuilder":
        """Add a testbench sink process (always ready to consume data)."""
        self._system.add_process(Process(name, latency=latency, kind=ProcessKind.SINK))
        return self

    def channel(
        self,
        name: str,
        producer: str,
        consumer: str,
        latency: int = 1,
        capacity: int = 0,
        initial_tokens: int = 0,
    ) -> "SystemBuilder":
        """Add a point-to-point channel from ``producer`` to ``consumer``.

        Fails **at this call site** when either endpoint has not been
        declared yet, naming the offending role — wiring against a
        process that does not exist is a construction bug best reported
        where the typo is, not later at :meth:`build`.
        """
        for role, endpoint in (("producer", producer), ("consumer", consumer)):
            if not self._system.has_process(endpoint):
                raise ValidationError(
                    f"channel {name!r}: {role} {endpoint!r} is not a "
                    "declared process; declare it with .process()/"
                    ".source()/.sink() before wiring channels to it"
                )
        self._system.add_channel(
            Channel(
                name,
                producer,
                consumer,
                latency=latency,
                capacity=capacity,
                initial_tokens=initial_tokens,
            )
        )
        return self

    def channels(self, *specs: tuple) -> "SystemBuilder":
        """Add several channels from ``(name, producer, consumer, latency)``
        tuples (latency optional, default 1)."""
        for spec in specs:
            self.channel(*spec)
        return self

    def build(self, validate: bool = True) -> SystemGraph:
        """Finish construction, optionally validating the topology."""
        if validate:
            validate_system(self._system)
        return self._system


def system_from_tables(
    name: str,
    processes: Mapping[str, int],
    channels: Mapping[str, tuple[str, str, int]],
    sources: tuple[str, ...] = (),
    sinks: tuple[str, ...] = (),
    validate: bool = True,
) -> SystemGraph:
    """Build a system from plain dictionaries.

    Args:
        name: System name.
        processes: ``process name -> computation latency``.
        channels: ``channel name -> (producer, consumer, latency)``.
            Insertion order defines the declaration order of ports.
        sources: Names (among ``processes``) acting as testbench sources.
        sinks: Names acting as testbench sinks.
        validate: Run structural validation on the result.
    """
    builder = SystemBuilder(name)
    for pname, latency in processes.items():
        if pname in sources:
            builder.source(pname, latency=latency)
        elif pname in sinks:
            builder.sink(pname, latency=latency)
        else:
            builder.process(pname, latency=latency)
    for cname, (producer, consumer, latency) in channels.items():
        builder.channel(cname, producer, consumer, latency=latency)
    return builder.build(validate=validate)
