"""Graphviz DOT export for system graphs.

Purely textual (no graphviz dependency): produces a ``.dot`` document that
renders the system topology with latency annotations and, optionally, the
get/put statement orders of a :class:`~repro.core.system.ChannelOrdering`
and a highlighted critical cycle.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.system import ChannelOrdering, ProcessKind, SystemGraph

_KIND_SHAPE = {
    ProcessKind.WORKER: "box",
    ProcessKind.SOURCE: "invhouse",
    ProcessKind.SINK: "house",
}


def _quote(name: str) -> str:
    escaped = name.replace('"', '\\"')
    return f'"{escaped}"'


def system_to_dot(
    system: SystemGraph,
    ordering: ChannelOrdering | None = None,
    highlight_channels: Iterable[str] = (),
    highlight_processes: Iterable[str] = (),
) -> str:
    """Render a system as a DOT digraph.

    Args:
        system: The system to render.
        ordering: If given, each channel edge is annotated with its position
            in the producer's put order and the consumer's get order, as
            ``put#i / get#j``.
        highlight_channels: Channel names drawn in red (e.g. a critical
            cycle or a deadlock cycle).
        highlight_processes: Process names drawn in red.
    """
    hot_channels = set(highlight_channels)
    hot_processes = set(highlight_processes)
    lines = [f"digraph {_quote(system.name)} {{", "  rankdir=LR;"]

    for process in system.processes:
        attrs = [
            f"shape={_KIND_SHAPE[process.kind]}",
            f'label="{process.name}\\nL={process.latency}"',
        ]
        if process.name in hot_processes:
            attrs.append("color=red")
            attrs.append("fontcolor=red")
        lines.append(f"  {_quote(process.name)} [{', '.join(attrs)}];")

    for channel in system.channels:
        label = f"{channel.name} ({channel.latency})"
        if ordering is not None:
            put_pos = ordering.puts_of(channel.producer).index(channel.name) + 1
            get_pos = ordering.gets_of(channel.consumer).index(channel.name) + 1
            label += f"\\nput#{put_pos} / get#{get_pos}"
        attrs = [f'label="{label}"']
        if channel.name in hot_channels:
            attrs.append("color=red")
            attrs.append("fontcolor=red")
        lines.append(
            f"  {_quote(channel.producer)} -> {_quote(channel.consumer)} "
            f"[{', '.join(attrs)}];"
        )

    lines.append("}")
    return "\n".join(lines) + "\n"
