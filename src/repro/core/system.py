"""System-level model: processes, channels, and the system graph.

This module is the reproduction's stand-in for the synthesizable-SystemC
view of a design (Fig. 1 and Listing 1 of the paper).  A system is a set of
concurrent *processes* connected by unidirectional point-to-point
*channels*.  Each process repeatedly executes three phases — input reading,
computation, output writing — where the input and output phases issue
blocking ``get``/``put`` primitives on its channels **in a specific order**.
That statement order is exactly what the paper's Algorithm 1 optimizes, so
it is modelled explicitly (see :class:`ChannelOrdering`).

Only the information the methodology consumes is represented:

* the topology (which process talks to which over which channel),
* the computation latency of each process (cycles, from HLS),
* the minimum transfer latency of each channel (cycles),
* the ordering of the get statements and put statements in each process.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.families import DeclaredFamily
from repro.errors import ValidationError


class ProcessKind(enum.Enum):
    """Role of a process in the system.

    ``WORKER`` processes are part of the design under test.  ``SOURCE`` and
    ``SINK`` processes model the testbench environment (the paper's *Psrc*
    and *Psnk*): a source is always ready to produce fresh input data and a
    sink always ready to consume results.
    """

    WORKER = "worker"
    SOURCE = "source"
    SINK = "sink"


@dataclass(frozen=True)
class Process:
    """A concurrent process (one synthesizable SystemC ``SC_CTHREAD``).

    Attributes:
        name: Unique identifier within the system.
        latency: Computation-phase latency in clock cycles, as determined by
            the micro-architecture selected through HLS.  Testbench
            processes also carry a latency (the environment's turnaround).
        kind: Whether this is a design process or a testbench source/sink.
    """

    name: str
    latency: int = 1
    kind: ProcessKind = ProcessKind.WORKER

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("process name must be non-empty")
        if self.latency < 0:
            raise ValidationError(
                f"process {self.name!r}: latency must be >= 0, got {self.latency}"
            )

    @property
    def is_testbench(self) -> bool:
        """True for testbench (source or sink) processes."""
        return self.kind is not ProcessKind.WORKER

    def with_latency(self, latency: int) -> "Process":
        """Return a copy of this process with a different latency."""
        return replace(self, latency=latency)


@dataclass(frozen=True)
class Channel:
    """A unidirectional point-to-point blocking channel.

    A ``put`` on the producer side and the matching ``get`` on the consumer
    side rendezvous: the transfer starts once both processes have reached
    their primitive and completes ``latency`` cycles later.

    Attributes:
        name: Unique identifier within the system.
        producer: Name of the process that ``put``\\ s on this channel.
        consumer: Name of the process that ``get``\\ s from this channel.
        latency: Minimum number of cycles to transfer one data item.
        capacity: FIFO depth for the non-blocking extension.  ``0`` is the
            pure rendezvous protocol studied in the paper's main text; a
            positive value adds that much slack (tokens) between the two
            endpoints, per the tech-report extension.
        initial_tokens: Data items pre-loaded on the channel before the
            system starts (e.g. an initialized frame store).  A feedback
            loop is live only if at least one of its channels carries an
            initial token; the first ``initial_tokens`` gets on the channel
            do not wait for a matching put.
    """

    name: str
    producer: str
    consumer: str
    latency: int = 1
    capacity: int = 0
    initial_tokens: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("channel name must be non-empty")
        if self.latency < 1:
            raise ValidationError(
                f"channel {self.name!r}: latency must be >= 1, got {self.latency}"
            )
        if self.capacity < 0:
            raise ValidationError(
                f"channel {self.name!r}: capacity must be >= 0, got {self.capacity}"
            )
        if self.initial_tokens < 0:
            raise ValidationError(
                f"channel {self.name!r}: initial_tokens must be >= 0, "
                f"got {self.initial_tokens}"
            )
        if self.producer == self.consumer:
            raise ValidationError(
                f"channel {self.name!r}: self-loop on process {self.producer!r} "
                "is not a point-to-point inter-process channel"
            )

    @property
    def is_buffered(self) -> bool:
        """True when the channel behaves as a FIFO rather than a rendezvous.

        ``capacity >= 1`` is an explicit FIFO.  ``initial_tokens > 0`` with
        ``capacity == 0`` *also* buffers: a pure rendezvous cannot hold
        pre-loaded data, so the channel is promoted to a FIFO of
        :attr:`effective_capacity` slots.  This property makes that
        promotion explicit — the TMG builder and the simulator both key off
        it instead of re-deriving the rule locally.
        """
        return self.capacity > 0 or self.initial_tokens > 0

    @property
    def effective_capacity(self) -> int:
        """FIFO depth actually realized: ``max(capacity, initial_tokens)``.

        Zero for a pure rendezvous; for a pre-loaded channel the depth must
        at least hold the initial tokens.
        """
        return max(self.capacity, self.initial_tokens)


class SystemGraph:
    """A system of processes and channels (the graph of Fig. 2(a)).

    The graph records, for each process, its input and output channels in
    *declaration order* — the order in which the get/put statements appear
    in the original source code.  Declaration order is the default channel
    ordering; optimized orders are represented separately by
    :class:`ChannelOrdering` so that one immutable topology can be analyzed
    under many orderings.
    """

    def __init__(self, name: str = "system"):
        self.name = name
        self._processes: dict[str, Process] = {}
        self._channels: dict[str, Channel] = {}
        # Declaration-order port lists.
        self._inputs: dict[str, list[str]] = {}
        self._outputs: dict[str, list[str]] = {}
        # Replication structure declared by the construction layer
        # (:mod:`repro.dsl`).  Advisory metadata: not part of the
        # structural hash, re-verified before every use (repro.sym).
        self._families: tuple[DeclaredFamily, ...] = ()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_process(self, process: Process) -> Process:
        """Register a process.  Raises if the name is already taken."""
        if process.name in self._processes:
            raise ValidationError(f"duplicate process {process.name!r}")
        self._processes[process.name] = process
        self._inputs[process.name] = []
        self._outputs[process.name] = []
        return process

    def add_channel(self, channel: Channel) -> Channel:
        """Register a channel between two existing processes.

        The channel is appended to the producer's output declaration order
        and the consumer's input declaration order.
        """
        if channel.name in self._channels:
            raise ValidationError(f"duplicate channel {channel.name!r}")
        for endpoint in (channel.producer, channel.consumer):
            if endpoint not in self._processes:
                raise ValidationError(
                    f"channel {channel.name!r} references unknown process "
                    f"{endpoint!r}"
                )
        self._channels[channel.name] = channel
        self._outputs[channel.producer].append(channel.name)
        self._inputs[channel.consumer].append(channel.name)
        return channel

    def replace_process(self, process: Process) -> None:
        """Swap a process definition in place (same name, e.g. new latency)."""
        if process.name not in self._processes:
            raise ValidationError(f"unknown process {process.name!r}")
        self._processes[process.name] = process

    def replace_channel(self, channel: Channel) -> None:
        """Swap a channel definition in place (same name and endpoints).

        Only the scalar attributes (latency, capacity, initial tokens) may
        change: the declaration-order port lists are keyed by endpoints, so
        rerouting a channel would desynchronize them.
        """
        existing = self.channel(channel.name)
        if (channel.producer, channel.consumer) != (
            existing.producer,
            existing.consumer,
        ):
            raise ValidationError(
                f"channel {channel.name!r}: replace_channel cannot change "
                f"endpoints ({existing.producer}->{existing.consumer} vs "
                f"{channel.producer}->{channel.consumer})"
            )
        self._channels[channel.name] = channel

    def with_channel_capacities(
        self, capacities: Mapping[str, int]
    ) -> "SystemGraph":
        """Return a copy of this system with some channel capacities replaced.

        Unspecified channels keep their declared capacity.  This is how a
        buffer-sizing or batched-simulation step applies candidate FIFO
        depths without mutating the original model.
        """
        clone = self.copy()
        for name, capacity in capacities.items():
            existing = clone.channel(name)
            if capacity != existing.capacity:
                clone.replace_channel(replace(existing, capacity=capacity))
        return clone

    def with_process_latencies(self, latencies: Mapping[str, int]) -> "SystemGraph":
        """Return a copy of this system with some process latencies replaced.

        Unspecified processes keep their current latency.  This is how a
        design-space-exploration step applies an implementation selection
        without mutating the original model.
        """
        clone = self.copy()
        for name, latency in latencies.items():
            clone.replace_process(clone.process(name).with_latency(latency))
        return clone

    def copy(self) -> "SystemGraph":
        """Deep-enough copy: shares the frozen Process/Channel values."""
        clone = SystemGraph(self.name)
        clone._processes = dict(self._processes)
        clone._channels = dict(self._channels)
        clone._inputs = {k: list(v) for k, v in self._inputs.items()}
        clone._outputs = {k: list(v) for k, v in self._outputs.items()}
        clone._families = self._families
        return clone

    # ------------------------------------------------------------------
    # Declared replication structure
    # ------------------------------------------------------------------

    @property
    def declared_families(self) -> tuple[DeclaredFamily, ...]:
        """Replication families declared by the construction layer.

        Advisory metadata carried alongside the topology: it survives
        :meth:`copy` (hence :meth:`with_channel_capacities` and
        :meth:`with_process_latencies`, so DSE candidates keep their
        family structure) but takes no part in the structural hash, and
        every consumer re-verifies the induced generators against the
        lowered program before trusting them (:mod:`repro.sym.declared`).
        """
        return self._families

    def declare_families(
        self, families: Iterable[DeclaredFamily]
    ) -> "SystemGraph":
        """Replace the declared replication families (returns ``self``).

        Every referenced process and channel must exist — a family
        naming a missing member is a construction bug worth failing at
        the declaration site, not a claim to be silently dropped later.
        """
        checked: list[DeclaredFamily] = []
        for family in families:
            process_members, channel_members = family.members()
            for member in sorted(process_members):
                if member not in self._processes:
                    raise ValidationError(
                        f"family {family.name!r} references unknown "
                        f"process {member!r}"
                    )
            for member in sorted(channel_members):
                if member not in self._channels:
                    raise ValidationError(
                        f"family {family.name!r} references unknown "
                        f"channel {member!r}"
                    )
            checked.append(family)
        self._families = tuple(checked)
        return self

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def process(self, name: str) -> Process:
        try:
            return self._processes[name]
        except KeyError:
            raise ValidationError(f"unknown process {name!r}") from None

    def channel(self, name: str) -> Channel:
        try:
            return self._channels[name]
        except KeyError:
            raise ValidationError(f"unknown channel {name!r}") from None

    def has_process(self, name: str) -> bool:
        return name in self._processes

    def has_channel(self, name: str) -> bool:
        return name in self._channels

    @property
    def processes(self) -> tuple[Process, ...]:
        return tuple(self._processes.values())

    @property
    def channels(self) -> tuple[Channel, ...]:
        return tuple(self._channels.values())

    @property
    def process_names(self) -> tuple[str, ...]:
        return tuple(self._processes)

    @property
    def channel_names(self) -> tuple[str, ...]:
        return tuple(self._channels)

    def input_channels(self, process: str) -> tuple[str, ...]:
        """Input channel names of ``process`` in declaration order."""
        self.process(process)
        return tuple(self._inputs[process])

    def output_channels(self, process: str) -> tuple[str, ...]:
        """Output channel names of ``process`` in declaration order."""
        self.process(process)
        return tuple(self._outputs[process])

    def sources(self) -> tuple[Process, ...]:
        return tuple(
            p for p in self._processes.values() if p.kind is ProcessKind.SOURCE
        )

    def sinks(self) -> tuple[Process, ...]:
        return tuple(
            p for p in self._processes.values() if p.kind is ProcessKind.SINK
        )

    def workers(self) -> tuple[Process, ...]:
        return tuple(
            p for p in self._processes.values() if p.kind is ProcessKind.WORKER
        )

    def predecessors(self, process: str) -> tuple[str, ...]:
        """Producer processes of the input channels of ``process``."""
        return tuple(self.channel(c).producer for c in self.input_channels(process))

    def successors(self, process: str) -> tuple[str, ...]:
        """Consumer processes of the output channels of ``process``."""
        return tuple(self.channel(c).consumer for c in self.output_channels(process))

    def process_latencies(self) -> dict[str, int]:
        return {p.name: p.latency for p in self._processes.values()}

    def channel_latencies(self) -> dict[str, int]:
        return {c.name: c.latency for c in self._channels.values()}

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    def order_space_size(self) -> int:
        """Number of distinct channel orderings of the whole system.

        This is the paper's combinatorial bound
        ``prod_p |in_chan(p)|! * |out_chan(p)|!`` over non-testbench
        processes (Section 2; 36 for the motivating example).  Testbench
        processes are excluded because their statement order is part of the
        environment, not of the design under optimization.
        """
        total = 1
        for p in self.workers():
            total *= math.factorial(len(self._inputs[p.name]))
            total *= math.factorial(len(self._outputs[p.name]))
        return total

    def to_networkx(self):
        """Export as a :class:`networkx.MultiDiGraph` (channels as edges)."""
        import networkx as nx

        graph = nx.MultiDiGraph(name=self.name)
        for p in self._processes.values():
            graph.add_node(p.name, latency=p.latency, kind=p.kind.value)
        for c in self._channels.values():
            graph.add_edge(c.producer, c.consumer, key=c.name, latency=c.latency)
        return graph

    def __contains__(self, name: str) -> bool:
        return name in self._processes or name in self._channels

    def __repr__(self) -> str:
        return (
            f"SystemGraph({self.name!r}, processes={len(self._processes)}, "
            f"channels={len(self._channels)})"
        )


@dataclass(frozen=True)
class ChannelOrdering:
    """The order of get and put statements in every process.

    ``gets[p]`` is the sequence of input channel names read by process ``p``,
    first to last; ``puts[p]`` the sequence of output channel names written.
    Orderings are immutable values: the ordering algorithm consumes one
    system and produces a new :class:`ChannelOrdering` without touching the
    topology.
    """

    gets: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    puts: Mapping[str, tuple[str, ...]] = field(default_factory=dict)

    @staticmethod
    def declaration_order(system: SystemGraph) -> "ChannelOrdering":
        """The ordering implied by the source code's statement order."""
        return ChannelOrdering(
            gets={p.name: system.input_channels(p.name) for p in system.processes},
            puts={p.name: system.output_channels(p.name) for p in system.processes},
        )

    @staticmethod
    def from_orders(
        system: SystemGraph,
        gets: Mapping[str, Sequence[str]] | None = None,
        puts: Mapping[str, Sequence[str]] | None = None,
    ) -> "ChannelOrdering":
        """Declaration order with selected processes overridden.

        Only the processes present in ``gets``/``puts`` change; each
        override must be a permutation of the process's channels (checked
        by :meth:`validate`).
        """
        base = ChannelOrdering.declaration_order(system)
        new_gets = dict(base.gets)
        new_puts = dict(base.puts)
        for name, order in (gets or {}).items():
            new_gets[name] = tuple(order)
        for name, order in (puts or {}).items():
            new_puts[name] = tuple(order)
        ordering = ChannelOrdering(gets=new_gets, puts=new_puts)
        ordering.validate(system)
        return ordering

    def validate(self, system: SystemGraph) -> None:
        """Check this ordering is a permutation of each process's ports."""
        for name in system.process_names:
            declared_in = sorted(system.input_channels(name))
            declared_out = sorted(system.output_channels(name))
            got_in = sorted(self.gets.get(name, ()))
            got_out = sorted(self.puts.get(name, ()))
            if got_in != declared_in:
                raise ValidationError(
                    f"ordering for {name!r}: gets {got_in} is not a permutation "
                    f"of input channels {declared_in}"
                )
            if got_out != declared_out:
                raise ValidationError(
                    f"ordering for {name!r}: puts {got_out} is not a permutation "
                    f"of output channels {declared_out}"
                )

    def gets_of(self, process: str) -> tuple[str, ...]:
        return tuple(self.gets.get(process, ()))

    def puts_of(self, process: str) -> tuple[str, ...]:
        return tuple(self.puts.get(process, ()))

    def statements_of(self, process: str) -> tuple[tuple[str, str], ...]:
        """The serial statement chain of a process.

        Returns ``(kind, channel-or-process)`` pairs in execution order:
        the gets, then one ``("compute", process)`` statement, then the
        puts.  This is the chain the TMG builder turns into places.
        """
        chain: list[tuple[str, str]] = [("get", c) for c in self.gets_of(process)]
        chain.append(("compute", process))
        chain.extend(("put", c) for c in self.puts_of(process))
        return tuple(chain)

    def differs_from(self, other: "ChannelOrdering") -> tuple[str, ...]:
        """Names of processes whose get or put order differs from ``other``."""
        names = set(self.gets) | set(other.gets) | set(self.puts) | set(other.puts)
        return tuple(
            sorted(
                name
                for name in names
                if self.gets.get(name, ()) != other.gets.get(name, ())
                or self.puts.get(name, ()) != other.puts.get(name, ())
            )
        )


def all_orderings(system: SystemGraph) -> Iterator[ChannelOrdering]:
    """Enumerate every channel ordering of the system.

    Testbench processes keep their declaration order (the environment is
    fixed); worker processes contribute all permutations of their gets and
    puts.  The number of yielded orderings equals
    :meth:`SystemGraph.order_space_size`.  Exponential — intended for small
    systems and for use as an exact oracle in tests and benchmarks.
    """
    base = ChannelOrdering.declaration_order(system)
    workers = [p.name for p in system.workers()]
    get_perms = [
        [tuple(perm) for perm in itertools.permutations(system.input_channels(w))]
        for w in workers
    ]
    put_perms = [
        [tuple(perm) for perm in itertools.permutations(system.output_channels(w))]
        for w in workers
    ]
    for get_choice in itertools.product(*get_perms):
        for put_choice in itertools.product(*put_perms):
            gets = dict(base.gets)
            puts = dict(base.puts)
            for w, g, p in zip(workers, get_choice, put_choice):
                gets[w] = g
                puts[w] = p
            yield ChannelOrdering(gets=gets, puts=puts)
