"""System generators: the paper's motivating example and synthetic SoCs.

Two families matter for the reproduction:

* :func:`motivating_example` — the five-process system of Fig. 2/Fig. 4,
  with process and channel latencies reconstructed exactly from the worked
  labeling examples of Section 4 (see DESIGN.md §3).  The three named
  orderings discussed in the paper (deadlocking, deadlock-free-but-
  suboptimal, optimal) are provided alongside.

* :func:`synthetic_soc` — the scalability-benchmark family of Section 6:
  random layered systems "with characteristics similar to those of the
  MPEG-2, including the presence of feedback loops and reconvergent
  paths", scaling to 10,000 processes and 15,000 channels.

Every generator builds through the composition layer
(:class:`repro.dsl.design.Design`), using its node-level ``connect``
escape hatch so the historical process/channel names and declaration
orders — and therefore every pinned ``structural_hash`` — are preserved
bit for bit.  Channel latencies are expressed as derived
:class:`~repro.dsl.wire.Wire` metadata
(:func:`~repro.dsl.wire.wire_for_latency`), and generators that
replicate structure (:func:`fork_join`) declare the replication as a
:class:`~repro.core.families.DeclaredFamily` for the symmetry layer to
verify and spend.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.core.system import ChannelOrdering, SystemGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dsl.design import Design
    from repro.dsl.wire import Wire


def _design(name: str) -> "Design":
    # Deferred: repro.core's package __init__ imports this module, and the
    # composition layer imports repro.core submodules — binding at call
    # time keeps both package initializations cycle-free.
    from repro.dsl.design import Design

    return Design(name)


def _latency_wire(latency: int, initial_tokens: int = 0) -> "Wire":
    from repro.dsl.wire import wire_for_latency

    return wire_for_latency(latency, tokens=initial_tokens)


# ---------------------------------------------------------------------------
# Motivating example (Fig. 2 / Fig. 4)
# ---------------------------------------------------------------------------

#: Process computation latencies of Fig. 4(a), reconstructed from the
#: forward/backward labeling equations of Section 4.
MOTIVATING_PROCESS_LATENCIES = {
    "Psrc": 1,
    "P2": 5,
    "P3": 2,
    "P4": 1,
    "P5": 2,
    "P6": 2,
    "Psnk": 1,
}

#: Channel latencies of Fig. 4(a): ``name -> (producer, consumer, latency)``.
MOTIVATING_CHANNELS = {
    "a": ("Psrc", "P2", 2),
    "b": ("P2", "P3", 1),
    "c": ("P3", "P4", 2),
    "d": ("P2", "P6", 3),
    "e": ("P4", "P6", 1),
    "f": ("P2", "P5", 1),
    "g": ("P5", "P6", 2),
    "h": ("P6", "Psnk", 1),
}


def motivating_example() -> SystemGraph:
    """The system of Fig. 2(a) with the latencies of Fig. 4(a).

    Channels are declared in the order of Listing 1 / Section 2, so the
    declaration ordering has P2 writing (b, d, f) — the order that, combined
    with P6 reading (g, d, e), deadlocks.
    """
    design = _design("motivating")
    design.source("Psrc", latency=MOTIVATING_PROCESS_LATENCIES["Psrc"])
    for name in ("P2", "P3", "P4", "P5", "P6"):
        design.worker(name, latency=MOTIVATING_PROCESS_LATENCIES[name])
    design.sink("Psnk", latency=MOTIVATING_PROCESS_LATENCIES["Psnk"])
    for cname, (producer, consumer, latency) in MOTIVATING_CHANNELS.items():
        design.connect(cname, producer, consumer, wire=_latency_wire(latency))
    return design.build()


def motivating_deadlock_ordering(system: SystemGraph) -> ChannelOrdering:
    """The specification of Section 2 that deadlocks.

    P2 writes (b, d, f) as in Listing 1 while P6 reads from P5 first, then
    P2, then P4 — i.e. gets (g, d, e).  P2 blocks on d, P6 blocks on g, P5
    blocks on f: a circular wait.
    """
    return ChannelOrdering.from_orders(
        system,
        gets={"P6": ("g", "d", "e")},
        puts={"P2": ("b", "d", "f")},
    )


def motivating_suboptimal_ordering(system: SystemGraph) -> ChannelOrdering:
    """Section 2's hand-made deadlock-free reordering (cycle time 20).

    P2 writes f before b before d; P6 reads e before g before d.  Live, but
    serializes processes that could run concurrently: throughput 0.05.
    """
    return ChannelOrdering.from_orders(
        system,
        gets={"P6": ("e", "g", "d")},
        puts={"P2": ("f", "b", "d")},
    )


def motivating_optimal_ordering(system: SystemGraph) -> ChannelOrdering:
    """The optimum found by Algorithm 1 (cycle time 12, 40% better).

    Per the Final Ordering worked example: P2's puts sorted by descending
    tail weight (b:16, f:13, d:10) and P6's gets by ascending head weight
    (d:13, g:17, e:19).
    """
    return ChannelOrdering.from_orders(
        system,
        gets={"P6": ("d", "g", "e")},
        puts={"P2": ("b", "f", "d")},
    )


# ---------------------------------------------------------------------------
# Simple parametric families
# ---------------------------------------------------------------------------

def pipeline(
    n_stages: int,
    process_latency: int = 4,
    channel_latency: int = 1,
) -> SystemGraph:
    """A linear pipeline: source → stage0 → … → stage(n-1) → sink."""
    if n_stages < 1:
        raise ValueError("pipeline needs at least one stage")
    design = _design(f"pipeline{n_stages}")
    design.source("src")
    for i in range(n_stages):
        design.worker(f"stage{i}", latency=process_latency)
    design.sink("snk")
    names = ["src"] + [f"stage{i}" for i in range(n_stages)] + ["snk"]
    for i, (producer, consumer) in enumerate(zip(names, names[1:])):
        design.connect(
            f"c{i}", producer, consumer, wire=_latency_wire(channel_latency)
        )
    return design.build()


def fork_join(
    n_branches: int,
    branch_latencies: tuple[int, ...] | None = None,
    channel_latency: int = 1,
) -> SystemGraph:
    """A reconvergent fork/join: src → fork → {branch_i} → join → snk.

    The classic shape on which statement order matters: the join's get
    order should prioritize the branch whose path is longest.

    The branches are declared as an interchangeable family.  The shared
    fork and join serialize their statement orders, so the family holds
    up to statement reordering (the ERM702 equivalence) — which is
    exactly the claim ERM701 reports and the symmetry layer verifies.
    """
    if n_branches < 2:
        raise ValueError("fork/join needs at least two branches")
    latencies = branch_latencies or tuple(2 + i for i in range(n_branches))
    if len(latencies) != n_branches:
        raise ValueError("one latency per branch required")
    design = _design(f"forkjoin{n_branches}")
    design.source("src")
    design.worker("fork", latency=1)
    for i, latency in enumerate(latencies):
        design.worker(f"branch{i}", latency=latency)
    design.worker("join", latency=1)
    design.sink("snk")
    hop = _latency_wire(channel_latency)
    design.connect("c_in", "src", "fork", wire=hop)
    for i in range(n_branches):
        design.connect(f"c_up{i}", "fork", f"branch{i}", wire=hop)
        design.connect(f"c_dn{i}", f"branch{i}", "join", wire=hop)
    design.connect("c_out", "join", "snk", wire=hop)
    design.declare_family(
        "branches",
        "interchangeable",
        [[f"branch{i}"] for i in range(n_branches)],
        [[f"c_up{i}", f"c_dn{i}"] for i in range(n_branches)],
    )
    return design.build()


def ring_soc(
    n_stages: int,
    process_latency: int = 4,
    channel_latency: int = 1,
    initial_tokens: int = 1,
) -> SystemGraph:
    """A ring of workers closed by one pre-loaded channel.

    The minimal feedback-loop topology: src → w0 → w1 → … → w(n-1) → w0,
    with the closing channel carrying ``initial_tokens`` (it must, or no
    ordering keeps the ring live).  The sink taps the last worker.

    No family is declared: the single inject/drain testbench pins the
    ring (rotations are not automorphisms of this closed system) — for a
    rotation-symmetric ring use :func:`repro.dsl.ring` with per-part
    testbenches.
    """
    if n_stages < 2:
        raise ValueError("a ring needs at least two workers")
    if initial_tokens < 1:
        raise ValueError("the closing channel needs at least one token")
    design = _design(f"ring{n_stages}")
    design.source("src")
    for i in range(n_stages):
        design.worker(f"w{i}", latency=process_latency)
    design.sink("snk")
    hop = _latency_wire(channel_latency)
    design.connect("inject", "src", "w0", wire=hop)
    for i in range(n_stages - 1):
        design.connect(f"hop{i}", f"w{i}", f"w{i + 1}", wire=hop)
    design.connect(
        "close",
        f"w{n_stages - 1}",
        "w0",
        wire=_latency_wire(channel_latency, initial_tokens=initial_tokens),
    )
    design.connect("drain", f"w{n_stages - 1}", "snk", wire=hop)
    return design.build()


def mesh_soc(
    rows: int,
    cols: int,
    process_latency: int = 4,
    channel_latency: int = 1,
) -> SystemGraph:
    """A rows×cols mesh of workers with eastward and southward channels.

    The classic NoC-like accelerator grid (systolic-array shape): data
    enters at the north-west corner, flows east and south, and drains at
    the south-east corner.  Heavily reconvergent — every interior node
    joins two paths — which makes it a good stress case for the ordering
    algorithm.

    No family is declared: the corner entry/exit pins every node (even
    the transpose fails exactness — the interleaved east-then-south put
    order gives the grid a chirality).  For a translation-symmetric
    fabric use :func:`repro.dsl.mesh` with ``wrap=True``.
    """
    if rows < 1 or cols < 1:
        raise ValueError("mesh needs at least one row and one column")
    if rows * cols < 2:
        raise ValueError("mesh needs at least two workers")
    design = _design(f"mesh{rows}x{cols}")
    design.source("src")
    for r in range(rows):
        for c in range(cols):
            design.worker(f"n{r}_{c}", latency=process_latency)
    design.sink("snk")
    hop = _latency_wire(channel_latency)
    design.connect("inject", "src", "n0_0", wire=hop)
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                design.connect(
                    f"e{r}_{c}", f"n{r}_{c}", f"n{r}_{c + 1}", wire=hop
                )
            if r + 1 < rows:
                design.connect(
                    f"s{r}_{c}", f"n{r}_{c}", f"n{r + 1}_{c}", wire=hop
                )
    design.connect("drain", f"n{rows - 1}_{cols - 1}", "snk", wire=hop)
    # Edge nodes with no outgoing mesh link other than toward the sink
    # corner already drain through the mesh; nothing else to add.
    return design.build()


# ---------------------------------------------------------------------------
# Synthetic SoC benchmarks (scalability study)
# ---------------------------------------------------------------------------

def synthetic_soc(
    n_processes: int,
    n_channels: int | None = None,
    seed: int = 0,
    feedback_fraction: float = 0.02,
    min_process_latency: int = 1,
    max_process_latency: int = 64,
    min_channel_latency: int = 1,
    max_channel_latency: int = 16,
    layer_width: int | None = None,
    rng: random.Random | None = None,
) -> SystemGraph:
    """Generate a random SoC with reconvergent paths and feedback loops.

    The construction follows the structure of real stream-processing SoCs
    (and of the paper's MPEG-2 case study):

    1. workers are arranged in layers (a layered DAG), each worker reading
       from at least one worker of an earlier layer — this yields the base
       connectivity and guarantees liveness of the skeleton;
    2. extra *reconvergent* channels are added between randomly chosen
       earlier→later workers until the channel budget is met — these create
       the reconvergent paths on which ordering matters;
    3. a small fraction of *feedback* channels are added later→earlier;
       each carries one initial token (pre-loaded data, e.g. an initialized
       frame store), which is what makes a feedback loop live in a
       rendezvous system;
    4. one testbench source feeds the first layer and one sink drains every
       worker with no forward consumer.

    Args:
        n_processes: Number of worker processes (the paper scales to 10,000).
        n_channels: Total worker-to-worker channel budget, testbench links
            excluded.  Defaults to ``1.5 * n_processes`` (the paper's 15,000
            channels for 10,000 processes).
        seed: RNG seed; generation is deterministic given all arguments.
        feedback_fraction: Fraction of the channel budget realized as
            feedback channels.
        layer_width: Target workers per layer (default ``max(2, sqrt(n))``).
        rng: Explicit random stream to draw from.  When given it is the
            *only* randomness source (``seed`` is ignored), so callers
            composing several generators can thread one seeded
            ``random.Random`` through all of them and stay reproducible
            end to end.  Every draw goes through this single stream —
            there is no hidden module-global randomness.
    """
    if n_processes < 2:
        raise ValueError("synthetic SoC needs at least two workers")
    if rng is None:
        rng = random.Random(seed)
    budget = n_channels if n_channels is not None else int(round(1.5 * n_processes))
    min_budget = n_processes - 1  # the layered skeleton needs this many
    budget = max(budget, min_budget)

    width = layer_width or max(2, int(round(n_processes**0.5)))
    layers: list[list[str]] = []
    remaining = n_processes
    index = 0
    while remaining > 0:
        take = min(remaining, max(1, int(rng.gauss(width, width / 3))))
        layers.append([f"p{index + i}" for i in range(take)])
        index += take
        remaining -= take

    design = _design(f"soc{n_processes}x{budget}")
    design.source("Psrc", latency=1)
    for layer in layers:
        for name in layer:
            design.worker(
                name, latency=rng.randint(min_process_latency, max_process_latency)
            )
    design.sink("Psnk", latency=1)

    def channel_latency() -> int:
        return rng.randint(min_channel_latency, max_channel_latency)

    n_feedback = int(budget * feedback_fraction)
    n_skeleton = n_processes - len(layers[0])
    n_extra = max(0, budget - n_skeleton - n_feedback)

    counter = 0

    def add(producer: str, consumer: str, initial_tokens: int = 0) -> None:
        nonlocal counter
        design.connect(
            f"ch{counter}",
            producer,
            consumer,
            wire=_latency_wire(channel_latency(), initial_tokens=initial_tokens),
        )
        counter += 1

    # 1. Layered skeleton: every worker past layer 0 reads from an earlier
    #    layer.
    for depth, layer in enumerate(layers[1:], start=1):
        for name in layer:
            producer_layer = layers[rng.randrange(depth)]
            add(rng.choice(producer_layer), name)

    # 2. Reconvergent extra channels (earlier layer -> strictly later layer).
    flat = [(depth, name) for depth, layer in enumerate(layers) for name in layer]
    attempts = 0
    added = 0
    existing_pairs = set(design.edge_endpoints())
    while added < n_extra and attempts < 20 * n_extra + 100:
        attempts += 1
        (d1, u), (d2, v) = rng.sample(flat, 2)
        if d1 == d2:
            continue
        if d1 > d2:
            (d1, u), (d2, v) = (d2, v), (d1, u)
        if (u, v) in existing_pairs:
            continue
        existing_pairs.add((u, v))
        add(u, v)
        added += 1

    # 3. Feedback channels (later layer -> strictly earlier layer), carrying
    #    one initial token each so the loop is live.
    attempts = 0
    added = 0
    while added < n_feedback and attempts < 20 * n_feedback + 100:
        attempts += 1
        (d1, u), (d2, v) = rng.sample(flat, 2)
        if d1 <= d2:
            continue
        if (u, v) in existing_pairs:
            continue
        existing_pairs.add((u, v))
        add(u, v, initial_tokens=1)
        added += 1

    # 4. Testbench links: the source feeds every layer-0 worker; every
    #    worker that cannot reach the sink (no outputs, or outputs only on
    #    feedback channels into an undrained cluster) drains into it.
    for name in layers[0]:
        add("Psrc", name)
    for depth, name in flat:
        if not design.output_edges(name):
            add(name, "Psnk")
    for name in _design_not_coreachable(design, "Psnk", flat):
        add(name, "Psnk")
    # Workers that ended up with no input (possible only in layer 0 if the
    # source loop above missed them — it cannot, but keep the guard cheap):
    for depth, name in flat:
        if not design.input_edges(name):
            add("Psrc", name)

    return design.build()


def _design_not_coreachable(
    design: "Design", sink: str, flat: list[tuple[int, str]]
) -> list[str]:
    """Worker names of ``flat`` with no directed path to ``sink`` yet."""
    predecessors: dict[str, list[str]] = {}
    for producer, consumer in design.edge_endpoints():
        predecessors.setdefault(consumer, []).append(producer)
    reached = {sink}
    frontier = [sink]
    while frontier:
        current = frontier.pop()
        for producer in predecessors.get(current, ()):
            if producer not in reached:
                reached.add(producer)
                frontier.append(producer)
    return [name for _, name in flat if name not in reached]


def _not_coreachable(system: SystemGraph, sink: str) -> list[str]:
    """Worker names with no directed path to ``sink``."""
    reached = {sink}
    frontier = [sink]
    while frontier:
        current = frontier.pop()
        for producer in system.predecessors(current):
            if producer not in reached:
                reached.add(producer)
                frontier.append(producer)
    return [p.name for p in system.workers() if p.name not in reached]
