"""JSON serialization for systems and channel orderings.

The on-disk format is a plain JSON document, versioned so future schema
changes stay loadable.  Declaration order of channels is preserved (it is
semantically meaningful: it is the default statement order).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.system import (
    Channel,
    ChannelOrdering,
    Process,
    ProcessKind,
    SystemGraph,
)
from repro.errors import ValidationError

FORMAT_VERSION = 1


def system_to_dict(system: SystemGraph) -> dict[str, Any]:
    """Serialize a system to a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "name": system.name,
        "processes": [
            {
                "name": p.name,
                "latency": p.latency,
                "kind": p.kind.value,
            }
            for p in system.processes
        ],
        "channels": [
            {
                "name": c.name,
                "producer": c.producer,
                "consumer": c.consumer,
                "latency": c.latency,
                "capacity": c.capacity,
                "initial_tokens": c.initial_tokens,
            }
            for c in system.channels
        ],
    }


def system_from_dict(data: dict[str, Any]) -> SystemGraph:
    """Rebuild a system from :func:`system_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported system format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    system = SystemGraph(data.get("name", "system"))
    for p in data["processes"]:
        system.add_process(
            Process(
                p["name"],
                latency=int(p.get("latency", 1)),
                kind=ProcessKind(p.get("kind", "worker")),
            )
        )
    for c in data["channels"]:
        system.add_channel(
            Channel(
                c["name"],
                c["producer"],
                c["consumer"],
                latency=int(c.get("latency", 1)),
                capacity=int(c.get("capacity", 0)),
                initial_tokens=int(c.get("initial_tokens", 0)),
            )
        )
    return system


def ordering_to_dict(ordering: ChannelOrdering) -> dict[str, Any]:
    """Serialize a channel ordering to a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "gets": {name: list(order) for name, order in ordering.gets.items()},
        "puts": {name: list(order) for name, order in ordering.puts.items()},
    }


def ordering_from_dict(data: dict[str, Any]) -> ChannelOrdering:
    """Rebuild an ordering from :func:`ordering_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported ordering format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return ChannelOrdering(
        gets={name: tuple(order) for name, order in data["gets"].items()},
        puts={name: tuple(order) for name, order in data["puts"].items()},
    )


def save_system(system: SystemGraph, path: str | Path) -> None:
    """Write a system to a JSON file."""
    Path(path).write_text(json.dumps(system_to_dict(system), indent=2))


def load_system(path: str | Path) -> SystemGraph:
    """Read a system from a JSON file."""
    return system_from_dict(json.loads(Path(path).read_text()))


def save_ordering(ordering: ChannelOrdering, path: str | Path) -> None:
    """Write a channel ordering to a JSON file."""
    Path(path).write_text(json.dumps(ordering_to_dict(ordering), indent=2))


def load_ordering(path: str | Path) -> ChannelOrdering:
    """Read a channel ordering from a JSON file."""
    return ordering_from_dict(json.loads(Path(path).read_text()))
