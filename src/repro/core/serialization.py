"""JSON serialization for systems and channel orderings.

The on-disk format is a plain JSON document, versioned so future schema
changes stay loadable.  Declaration order of channels is preserved (it is
semantically meaningful: it is the default statement order).

Loaders are strict: a missing required field, an unknown field, an
unsupported ``format_version``, an unreadable file, or malformed JSON all
raise :class:`~repro.errors.ValidationError` with a message naming the
offending entry — never a raw ``KeyError`` or ``JSONDecodeError``.
Writers follow the same contract: an unwritable path raises
:class:`~repro.errors.ValidationError`, never a raw ``OSError``, so CLI
front ends report a coded error (exit 2) instead of a traceback.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.core.families import family_from_dict
from repro.core.system import (
    Channel,
    ChannelOrdering,
    Process,
    ProcessKind,
    SystemGraph,
)
from repro.errors import ValidationError

FORMAT_VERSION = 1

_PROCESS_REQUIRED = frozenset({"name"})
_PROCESS_FIELDS = frozenset({"name", "latency", "kind"})
_CHANNEL_REQUIRED = frozenset({"name", "producer", "consumer"})
_CHANNEL_FIELDS = _CHANNEL_REQUIRED | {"latency", "capacity", "initial_tokens"}


def system_to_dict(system: SystemGraph) -> dict[str, Any]:
    """Serialize a system to a JSON-compatible dictionary.

    The optional ``families`` key carries the declared replication
    structure (:mod:`repro.core.families`); it is emitted only when
    non-empty, so documents for systems without declared families are
    byte-identical to the pre-families format.
    """
    document: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "name": system.name,
        "processes": [
            {
                "name": p.name,
                "latency": p.latency,
                "kind": p.kind.value,
            }
            for p in system.processes
        ],
        "channels": [
            {
                "name": c.name,
                "producer": c.producer,
                "consumer": c.consumer,
                "latency": c.latency,
                "capacity": c.capacity,
                "initial_tokens": c.initial_tokens,
            }
            for c in system.channels
        ],
    }
    if system.declared_families:
        document["families"] = [
            family.to_dict() for family in system.declared_families
        ]
    return document


def _check_fields(
    entry: Any,
    required: frozenset[str],
    allowed: frozenset[str],
    what: str,
) -> Mapping[str, Any]:
    """Validate one serialized entry's field set."""
    if not isinstance(entry, Mapping):
        raise ValidationError(f"{what} entry must be an object, got {entry!r}")
    label = f"{what} {entry['name']!r}" if "name" in entry else what
    missing = sorted(required - entry.keys())
    if missing:
        raise ValidationError(
            f"{label} is missing required field(s): {', '.join(missing)}"
        )
    extra = sorted(entry.keys() - allowed)
    if extra:
        raise ValidationError(
            f"{label} has unknown field(s): {', '.join(extra)} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )
    return entry


def _check_version(data: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise ValidationError(
            f"serialized {what} must be a JSON object, got {type(data).__name__}"
        )
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported {what} format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return data


def system_from_dict(data: dict[str, Any]) -> SystemGraph:
    """Rebuild a system from :func:`system_to_dict` output."""
    data = dict(_check_version(data, "system"))
    for key in ("processes", "channels"):
        if key not in data:
            raise ValidationError(f"system document is missing {key!r}")
        if not isinstance(data[key], list):
            raise ValidationError(f"system {key!r} must be a list")
    if "families" in data and not isinstance(data["families"], list):
        raise ValidationError("system 'families' must be a list")
    system = SystemGraph(data.get("name", "system"))
    for p in data["processes"]:
        p = _check_fields(p, _PROCESS_REQUIRED, _PROCESS_FIELDS, "process")
        try:
            kind = ProcessKind(p.get("kind", "worker"))
        except ValueError as error:
            raise ValidationError(
                f"process {p['name']!r}: {error}"
            ) from error
        system.add_process(
            Process(p["name"], latency=int(p.get("latency", 1)), kind=kind)
        )
    for c in data["channels"]:
        c = _check_fields(c, _CHANNEL_REQUIRED, _CHANNEL_FIELDS, "channel")
        system.add_channel(
            Channel(
                c["name"],
                c["producer"],
                c["consumer"],
                latency=int(c.get("latency", 1)),
                capacity=int(c.get("capacity", 0)),
                initial_tokens=int(c.get("initial_tokens", 0)),
            )
        )
    if data.get("families"):
        system.declare_families(
            family_from_dict(entry) for entry in data["families"]
        )
    return system


def ordering_to_dict(ordering: ChannelOrdering) -> dict[str, Any]:
    """Serialize a channel ordering to a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "gets": {name: list(order) for name, order in ordering.gets.items()},
        "puts": {name: list(order) for name, order in ordering.puts.items()},
    }


def ordering_from_dict(data: dict[str, Any]) -> ChannelOrdering:
    """Rebuild an ordering from :func:`ordering_to_dict` output."""
    data = dict(_check_version(data, "ordering"))
    for key in ("gets", "puts"):
        if key not in data:
            raise ValidationError(f"ordering document is missing {key!r}")
        if not isinstance(data[key], Mapping):
            raise ValidationError(
                f"ordering {key!r} must map process names to channel lists"
            )
    return ChannelOrdering(
        gets={name: tuple(order) for name, order in data["gets"].items()},
        puts={name: tuple(order) for name, order in data["puts"].items()},
    )


def _read_json(path: str | Path, what: str) -> Any:
    try:
        text = Path(path).read_text()
    except OSError as error:
        raise ValidationError(f"cannot read {what} file {path}: {error}") from error
    try:
        return json.loads(text)
    except json.JSONDecodeError as error:
        raise ValidationError(
            f"{what} file {path} is not valid JSON: {error}"
        ) from error


def _write_text(text: str, path: str | Path, what: str) -> None:
    try:
        Path(path).write_text(text)
    except OSError as error:
        raise ValidationError(
            f"cannot write {what} file {path}: {error}"
        ) from error


def save_system(system: SystemGraph, path: str | Path) -> None:
    """Write a system to a JSON file.

    An unwritable path raises :class:`~repro.errors.ValidationError`
    (mirroring the loaders), never a raw :class:`OSError`.
    """
    _write_text(json.dumps(system_to_dict(system), indent=2), path, "system")


def load_system(path: str | Path) -> SystemGraph:
    """Read a system from a JSON file."""
    return system_from_dict(_read_json(path, "system"))


def save_ordering(ordering: ChannelOrdering, path: str | Path) -> None:
    """Write a channel ordering to a JSON file.

    An unwritable path raises :class:`~repro.errors.ValidationError`
    (mirroring the loaders), never a raw :class:`OSError`.
    """
    _write_text(
        json.dumps(ordering_to_dict(ordering), indent=2), path, "ordering"
    )


def load_ordering(path: str | Path) -> ChannelOrdering:
    """Read a channel ordering from a JSON file."""
    return ordering_from_dict(_read_json(path, "ordering"))
