"""Generated workload suite: seeded streaming design families.

Each family is a pure function of ``(seed, size)`` built on
:mod:`repro.dsl`, so workloads regenerate bit-identically anywhere —
see :mod:`repro.workloads.suite` for the catalog and ``ermes gen`` for
the CLI front end.
"""

from repro.workloads.suite import (
    FAMILIES,
    FamilySpec,
    Workload,
    family_names,
    generate,
)

__all__ = [
    "FAMILIES",
    "FamilySpec",
    "Workload",
    "family_names",
    "generate",
]
