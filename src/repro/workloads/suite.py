"""Seeded streaming workload families built on the composition layer.

Every generator here is a pure function of ``(seed, size)``: the same
pair always elaborates to the same :class:`~repro.core.system.SystemGraph`
(same names, same declaration order, same structural hash), so a workload
name like ``ofdm-rx-s4-seed7`` is a stable identity that tests, benchmarks
and the artifact store can key on.

The families cover the communication patterns the paper's flow is built
for:

* ``ofdm-rx`` — an OFDM receiver front end (sync/CFO/FFT) fanning out
  into per-subcarrier equalize+demodulate lanes, the canonical
  "replicated accelerator behind identical latency-insensitive
  interfaces" shape;
* ``rate-converter`` — a seeded multirate SDF chain expanded through
  :func:`repro.dsl.streaming_design`, exercising the repetition-vector
  expansion and serialization channels;
* ``noc-torus`` — a wrapped mesh fabric whose row/column translation
  symmetry is *declared* (cyclic families) rather than rediscovered;
* ``butterfly`` — a :math:`2^k`-lane butterfly network with its XOR
  bit-flip families declared per stage bit;
* ``bursty-soc`` — the layered synthetic SoC with seeded bursty FIFO
  deepening, the stress shape for buffer sizing and verification.

Because the DSL records replication at construction time, every workload
that replicates hardware ships its families to ERM701 and the
orbit-deduped explorer for free (declared, not rediscovered).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.core.system import SystemGraph
from repro.dsl import (
    Wire,
    butterfly,
    mesh,
    parallel,
    pipe,
    rate_chain,
    sink_stage,
    source_stage,
    stage,
    streaming_design,
    testbenched,
)
from repro.errors import ValidationError

#: Expansion budget for ``rate-converter``: rate tuples are redrawn (from
#: the same deterministic stream) until the repetition vector's total
#: instance count fits, so a hostile seed cannot explode the expansion.
_MAX_SDF_INSTANCES = 48

#: Rate pairs the converter draws from — small, mixed up/down ratios so
#: chains stay consistent and the repetition vector stays interesting
#: without growing multiplicatively out of the budget.
_RATE_MENU: tuple[tuple[int, int], ...] = (
    (1, 1),
    (1, 2),
    (2, 1),
    (2, 3),
    (3, 2),
    (1, 3),
    (3, 1),
)


@dataclass(frozen=True)
class Workload:
    """One generated design plus the provenance that regenerates it."""

    name: str
    family: str
    seed: int
    size: int
    system: SystemGraph
    description: str


def _ofdm_rx(seed: int, size: int) -> tuple[SystemGraph, str]:
    """OFDM receiver: front-end chain, ``size`` subcarrier lanes, merge.

    The per-lane latencies are drawn once and shared by every lane —
    replicated hardware is identical hardware — so the ``subcarriers``
    family the fan-out declares verifies against the lowered program.
    """
    if size < 2:
        raise ValidationError(
            f"ofdm-rx needs at least 2 subcarrier lanes, got {size}"
        )
    rng = random.Random(seed)
    sample_wire = Wire(elements=rng.choice((16, 32, 64)), rate=16)
    sync_latency = rng.randint(2, 6)
    cfo_latency = rng.randint(2, 6)
    fft_latency = rng.randint(8, 16)
    eq_latency = rng.randint(2, 5)
    demod_latency = rng.randint(2, 5)
    assemble_latency = rng.randint(2, 4)
    lane_wire = Wire(elements=rng.choice((4, 8, 16)), rate=4)

    front = pipe(
        source_stage("adc", latency=1, wire=sample_wire),
        stage("sync", latency=sync_latency, wire=sample_wire),
        stage("cfo", latency=cfo_latency, wire=sample_wire),
        stage(
            "fft",
            latency=fft_latency,
            inputs=[("in", sample_wire)],
            outputs=[(f"bin{i}", lane_wire) for i in range(size)],
        ),
    )
    lanes = parallel(
        *(
            pipe(
                stage(f"eq{i}", latency=eq_latency, wire=lane_wire),
                stage(f"demod{i}", latency=demod_latency, wire=lane_wire),
            )
            for i in range(size)
        ),
        family="subcarriers",
    )
    back = pipe(
        stage("assemble", latency=assemble_latency, inputs=size,
              wire=lane_wire),
        sink_stage("mac", latency=1, wire=lane_wire),
    )
    design = pipe(front, lanes, back)
    system = design.build(name=f"ofdm_rx_s{size}_seed{seed}")
    return system, (
        f"OFDM receiver: sync/cfo/fft front end into {size} replicated "
        "equalize+demodulate subcarrier lanes (declared family "
        "'subcarriers'), merged by an assembler"
    )


def _rate_converter(seed: int, size: int) -> tuple[SystemGraph, str]:
    """Seeded multirate chain expanded to a closed streaming system."""
    if size < 1:
        raise ValidationError(
            f"rate-converter needs at least 1 stage, got {size}"
        )
    rng = random.Random(seed)
    rates: list[tuple[int, int]] = []
    times: list[int] = []
    for _ in range(64):  # deterministic redraw budget
        rates = [rng.choice(_RATE_MENU) for _ in range(size)]
        times = [rng.randint(1, 6) for _ in range(size + 1)]
        graph = rate_chain(
            f"rc_s{size}_seed{seed}",
            rates,
            execution_times=times,
            channel_latency=rng.randint(1, 4),
        )
        repetitions = graph.repetition_vector()
        if sum(repetitions.values()) <= _MAX_SDF_INSTANCES:
            compiled = streaming_design(graph)
            return compiled.system, (
                f"multirate SDF chain of {size + 1} actors with rates "
                f"{rates}, expanded to "
                f"{sum(repetitions.values())} instances and closed with "
                "per-actor sources and sinks"
            )
    raise ValidationError(  # pragma: no cover - menu keeps chains small
        f"rate-converter seed {seed} size {size} exceeded the expansion "
        f"budget of {_MAX_SDF_INSTANCES} instances"
    )


def _noc_torus(seed: int, size: int) -> tuple[SystemGraph, str]:
    """Wrapped ``size x size`` mesh with declared translation families."""
    if size < 2:
        raise ValidationError(
            f"noc-torus needs at least a 2x2 fabric, got size {size}"
        )
    rng = random.Random(seed)
    fabric = mesh(
        size,
        size,
        latency=rng.randint(1, 4),
        wire=Wire(elements=rng.choice((16, 32)), rate=16),
        wrap=True,
        tokens=1,
        name=f"noc_torus_{size}x{size}_seed{seed}",
    )
    design = testbenched(fabric)
    system = design.build(name=f"noc_torus_{size}x{size}_seed{seed}")
    return system, (
        f"{size}x{size} torus NoC fabric with per-node testbenches; "
        "row and column cyclic translation families declared by mesh()"
    )


def _butterfly(seed: int, size: int) -> tuple[SystemGraph, str]:
    """``2**size``-lane butterfly with declared bit-flip families."""
    if not 1 <= size <= 4:
        raise ValidationError(
            f"butterfly size is the address width and must be 1..4, "
            f"got {size}"
        )
    rng = random.Random(seed)
    net = butterfly(
        size,
        latency=rng.randint(1, 4),
        wire=Wire(elements=rng.choice((8, 16, 32)), rate=8),
        name=f"butterfly_b{size}_seed{seed}",
    )
    design = testbenched(net)
    system = design.build(name=f"butterfly_b{size}_seed{seed}")
    return system, (
        f"{2 ** size}-lane butterfly network ({size} ranks) with "
        "per-lane testbenches; one interchangeable family declared per "
        "address bit"
    )


def _bursty_soc(seed: int, size: int) -> tuple[SystemGraph, str]:
    """Layered synthetic SoC with seeded bursty FIFO deepening."""
    if size < 2:
        raise ValidationError(
            f"bursty-soc needs at least 2 processes, got {size}"
        )
    rng = random.Random(seed)
    base = synthetic_soc_seeded(size, rng)
    # Deepen a seeded subset of FIFOs: bursty producers need slack, and
    # the uneven depths are exactly what buffer sizing and ERM3xx
    # occupancy analyses chew on.
    deepened = {
        channel.name: channel.capacity + rng.choice((2, 4, 8))
        for channel in base.channels
        if rng.random() < 0.35
    }
    system = base.with_channel_capacities(deepened)
    return system, (
        f"layered synthetic SoC of {size} processes with "
        f"{len(deepened)} bursty-deepened FIFOs"
    )


def synthetic_soc_seeded(size: int, rng: random.Random) -> SystemGraph:
    """The core synthetic SoC driven by an explicit ``Random`` stream."""
    from repro.core.generators import synthetic_soc

    return synthetic_soc(size, rng=rng)


@dataclass(frozen=True)
class FamilySpec:
    """A workload family: its generator plus CLI-facing metadata."""

    family: str
    default_size: int
    size_help: str
    factory: Callable[[int, int], tuple[SystemGraph, str]]


FAMILIES: dict[str, FamilySpec] = {
    "ofdm-rx": FamilySpec(
        family="ofdm-rx",
        default_size=4,
        size_help="number of replicated subcarrier lanes (>= 2)",
        factory=_ofdm_rx,
    ),
    "rate-converter": FamilySpec(
        family="rate-converter",
        default_size=3,
        size_help="number of rate-changing stages (>= 1)",
        factory=_rate_converter,
    ),
    "noc-torus": FamilySpec(
        family="noc-torus",
        default_size=3,
        size_help="fabric edge length: a size x size wrapped mesh (>= 2)",
        factory=_noc_torus,
    ),
    "butterfly": FamilySpec(
        family="butterfly",
        default_size=2,
        size_help="address width: 2**size lanes (1..4)",
        factory=_butterfly,
    ),
    "bursty-soc": FamilySpec(
        family="bursty-soc",
        default_size=24,
        size_help="number of processes in the layered SoC (>= 2)",
        factory=_bursty_soc,
    ),
}


def family_names() -> tuple[str, ...]:
    """The registered family names, in registry order."""
    return tuple(FAMILIES)


def generate(family: str, *, seed: int = 0, size: int | None = None) -> Workload:
    """Generate one workload; pure in ``(family, seed, size)``.

    Raises:
        ValidationError: Unknown family, or a size outside the family's
            documented range.
    """
    spec = FAMILIES.get(family)
    if spec is None:
        known = ", ".join(sorted(FAMILIES))
        raise ValidationError(
            f"unknown workload family {family!r}; known families: {known}"
        )
    if size is None:
        size = spec.default_size
    system, description = spec.factory(seed, size)
    return Workload(
        name=f"{family}-s{size}-seed{seed}",
        family=family,
        seed=seed,
        size=size,
        system=system,
        description=description,
    )
