"""The open netlist the DSL combinators compose, and its elaboration.

A :class:`Design` is a *partial* system: nodes (processes-to-be) and
edges (channels-to-be) plus **dangling ports** — declared-but-unwired
inputs and outputs, each carrying a :class:`~repro.dsl.wire.Wire` that
types it.  Combinators (:mod:`repro.dsl.combinators`) merge designs and
wire ports positionally; :meth:`Design.build` elaborates the closed
result into an ordinary validated
:class:`~repro.core.system.SystemGraph`.

Elaboration guarantees:

* **Declaration order is composition order.**  Processes appear in node
  insertion order and channels in connection order, so the default
  statement order of the elaborated system is exactly the order the
  design was composed in — the same property hand-built
  ``SystemBuilder`` code has.
* **Channel physics is derived.**  Latency, capacity, and initial
  tokens come from the connection's merged :class:`Wire`
  (payload/rate/setup/depth/tokens), never hand-entered at the
  connection site.
* **Replication structure is recorded.**  Combinators that replicate
  (``parallel``/``replicate``/``ring``/``mesh``/``butterfly``) declare
  the replica blocks as they build; every subsequent connection into a
  replicated block extends the blocks, so the elaborated system carries
  :class:`~repro.core.families.DeclaredFamily` entries the symmetry
  layer verifies and spends (ERM701, orbit-deduped DSE) without
  rediscovery.  A connection that *breaks* a claimed symmetry (e.g. a
  hand edge between two lanes of an interchangeable family) retracts
  the family rather than declaring something false.

Errors are raised **at the call site** of the offending composition
step (:class:`~repro.errors.CompositionError`), naming the port or node
at fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.families import DeclaredFamily
from repro.core.system import Channel, Process, ProcessKind, SystemGraph
from repro.core.validation import validate_system
from repro.dsl.wire import Wire
from repro.errors import CompositionError, ValidationError


@dataclass(frozen=True)
class Port:
    """One dangling (not yet connected) design port.

    Attributes:
        node: The node the port belongs to.
        label: Port label, unique per node and direction.
        wire: The payload type and physics the port expects.
    """

    node: str
    label: str
    wire: Wire

    def __str__(self) -> str:
        return f"{self.node}.{self.label}"


@dataclass(frozen=True)
class _Edge:
    """One internal (wired) connection."""

    name: str
    producer: str
    consumer: str
    wire: Wire


class _FamilySketch:
    """Mutable replica-block bookkeeping while a design is under
    composition; frozen to a :class:`DeclaredFamily` at elaboration."""

    def __init__(
        self,
        name: str,
        kind: str,
        process_blocks: Iterable[Iterable[str]],
        channel_blocks: Iterable[Iterable[str]],
    ):
        self.name = name
        self.kind = kind
        self.process_blocks: list[list[str]] = [
            list(block) for block in process_blocks
        ]
        self.channel_blocks: list[list[str]] = [
            list(block) for block in channel_blocks
        ]
        while len(self.channel_blocks) < len(self.process_blocks):
            self.channel_blocks.append([])
        self.broken = False
        self._pblock: dict[str, int] = {
            member: index
            for index, block in enumerate(self.process_blocks)
            for member in block
        }

    def block_of(self, node: str) -> int | None:
        return self._pblock.get(node)

    def adopt_process(self, block: int, name: str) -> None:
        self.process_blocks[block].append(name)
        self._pblock[name] = block

    def adopt_channel(self, block: int, name: str) -> None:
        self.channel_blocks[block].append(name)

    def freeze(self) -> DeclaredFamily | None:
        """The immutable family, or ``None`` when the claim died.

        A sketch that was broken by an asymmetric connection, or whose
        blocks ended up misaligned (the replicas were not structural
        copies after all), yields no family — declarations must never
        overclaim.
        """
        if self.broken:
            return None
        try:
            return DeclaredFamily(
                name=self.name,
                kind=self.kind,
                process_blocks=tuple(
                    tuple(block) for block in self.process_blocks
                ),
                channel_blocks=tuple(
                    tuple(block) for block in self.channel_blocks
                ),
            )
        except ValidationError:
            return None


class Design:
    """A composable open netlist (see the module docstring).

    Designs are consumed linearly: combinators merge their arguments
    into the result in place, so a ``Design`` value must not be passed
    to two compositions — build each replica fresh (that is what the
    stage factories are for).
    """

    def __init__(self, name: str = "design"):
        self.name = name
        self._nodes: dict[str, Process] = {}
        self._edges: dict[str, _Edge] = {}
        self._node_inputs: dict[str, list[str]] = {}
        self._node_outputs: dict[str, list[str]] = {}
        self._inputs: list[Port] = []
        self._outputs: list[Port] = []
        self._families: list[_FamilySketch] = []

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------

    def _add_node(self, name: str, latency: int, kind: ProcessKind) -> str:
        if name in self._nodes:
            raise CompositionError(
                f"design {self.name!r}: duplicate node {name!r}"
            )
        self._nodes[name] = Process(name, latency=latency, kind=kind)
        self._node_inputs[name] = []
        self._node_outputs[name] = []
        return name

    def worker(self, name: str, latency: int = 1) -> str:
        """Add a worker (design) node; returns its name."""
        return self._add_node(name, latency, ProcessKind.WORKER)

    def source(self, name: str, latency: int = 1) -> str:
        """Add a testbench source node; returns its name."""
        return self._add_node(name, latency, ProcessKind.SOURCE)

    def sink(self, name: str, latency: int = 1) -> str:
        """Add a testbench sink node; returns its name."""
        return self._add_node(name, latency, ProcessKind.SINK)

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    @property
    def edge_names(self) -> tuple[str, ...]:
        return tuple(self._edges)

    def node_latency(self, name: str) -> int:
        if name not in self._nodes:
            raise CompositionError(
                f"design {self.name!r}: unknown node {name!r}"
            )
        return self._nodes[name].latency

    def input_edges(self, node: str) -> tuple[str, ...]:
        """Edge names consumed by ``node``, in connection order."""
        if node not in self._nodes:
            raise CompositionError(
                f"design {self.name!r}: unknown node {node!r}"
            )
        return tuple(self._node_inputs[node])

    def output_edges(self, node: str) -> tuple[str, ...]:
        """Edge names produced by ``node``, in connection order."""
        if node not in self._nodes:
            raise CompositionError(
                f"design {self.name!r}: unknown node {node!r}"
            )
        return tuple(self._node_outputs[node])

    def edge_endpoints(self) -> Iterator[tuple[str, str]]:
        """All ``(producer, consumer)`` pairs currently wired."""
        for edge in self._edges.values():
            yield (edge.producer, edge.consumer)

    # ------------------------------------------------------------------
    # Dangling ports
    # ------------------------------------------------------------------

    def input(self, node: str, label: str = "in", wire: Wire = Wire()) -> Port:
        """Declare a dangling input port on ``node``."""
        return self._add_port(self._inputs, "input", node, label, wire)

    def output(
        self, node: str, label: str = "out", wire: Wire = Wire()
    ) -> Port:
        """Declare a dangling output port on ``node``."""
        return self._add_port(self._outputs, "output", node, label, wire)

    def _add_port(
        self,
        ports: list[Port],
        direction: str,
        node: str,
        label: str,
        wire: Wire,
    ) -> Port:
        if node not in self._nodes:
            raise CompositionError(
                f"design {self.name!r}: cannot declare {direction} port on "
                f"unknown node {node!r}"
            )
        if any(p.node == node and p.label == label for p in ports):
            raise CompositionError(
                f"design {self.name!r}: duplicate {direction} port "
                f"{node}.{label}"
            )
        port = Port(node, label, wire)
        ports.append(port)
        return port

    @property
    def inputs(self) -> tuple[Port, ...]:
        """Dangling input ports, in declaration order."""
        return tuple(self._inputs)

    @property
    def outputs(self) -> tuple[Port, ...]:
        """Dangling output ports, in declaration order."""
        return tuple(self._outputs)

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    def connect(
        self, name: str, producer: str, consumer: str, wire: Wire = Wire()
    ) -> str:
        """Wire ``producer`` → ``consumer`` directly, with an explicit
        channel name.

        The node-level escape hatch beneath the port-level combinators —
        this is what the hash-pinned generators use to control exact
        channel names.  Fails at this call site when either endpoint is
        unknown, naming the offending role.
        """
        for role, endpoint in (("producer", producer), ("consumer", consumer)):
            if endpoint not in self._nodes:
                raise CompositionError(
                    f"design {self.name!r}: channel {name!r} {role} "
                    f"{endpoint!r} is not a node of this design"
                )
        if producer == consumer:
            raise CompositionError(
                f"design {self.name!r}: channel {name!r} would be a "
                f"self-loop on {producer!r}"
            )
        if name in self._edges:
            raise CompositionError(
                f"design {self.name!r}: duplicate channel {name!r}"
            )
        self._edges[name] = _Edge(name, producer, consumer, wire)
        self._node_outputs[producer].append(name)
        self._node_inputs[consumer].append(name)
        self._note_edge(name, producer, consumer)
        return name

    def wire_ports(
        self,
        out_port: Port,
        in_port: Port,
        name: str | None = None,
        wire: Wire | None = None,
    ) -> str:
        """Connect a dangling output port to a dangling input port.

        The ports must be payload-compatible (equal elements and rate);
        the channel wire is the conservative merge of the two port
        declarations unless ``wire`` overrides it.  The channel name
        defaults to the producer port's ``node.label``.
        """
        if out_port not in self._outputs:
            raise CompositionError(
                f"design {self.name!r}: {out_port} is not a dangling "
                "output of this design"
            )
        if in_port not in self._inputs:
            raise CompositionError(
                f"design {self.name!r}: {in_port} is not a dangling "
                "input of this design"
            )
        if not out_port.wire.compatible(in_port.wire):
            raise CompositionError(
                f"design {self.name!r}: port type mismatch — output "
                f"{out_port} carries {out_port.wire.elements} element(s) "
                f"at rate {out_port.wire.rate}, input {in_port} expects "
                f"{in_port.wire.elements} element(s) at rate "
                f"{in_port.wire.rate}"
            )
        channel_wire = wire if wire is not None else out_port.wire.merged(
            in_port.wire
        )
        channel_name = name if name is not None else str(out_port)
        self.connect(
            channel_name, out_port.node, in_port.node, wire=channel_wire
        )
        self._outputs.remove(out_port)
        self._inputs.remove(in_port)
        return channel_name

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    def merge(self, other: "Design") -> "Design":
        """Absorb ``other`` into this design (returns ``self``).

        Node and edge names must be disjoint.  ``other``'s dangling
        ports are appended after this design's own (in ``other``'s
        declaration order) and its family sketches come along —
        ``other`` is consumed and must not be used afterwards.
        """
        node_clash = sorted(set(self._nodes) & set(other._nodes))
        if node_clash:
            raise CompositionError(
                f"design {self.name!r}: merging {other.name!r} collides on "
                f"node(s) {', '.join(repr(n) for n in node_clash[:5])}"
            )
        edge_clash = sorted(set(self._edges) & set(other._edges))
        if edge_clash:
            raise CompositionError(
                f"design {self.name!r}: merging {other.name!r} collides on "
                f"channel(s) {', '.join(repr(n) for n in edge_clash[:5])}"
            )
        self._nodes.update(other._nodes)
        self._edges.update(other._edges)
        self._node_inputs.update(other._node_inputs)
        self._node_outputs.update(other._node_outputs)
        self._inputs.extend(other._inputs)
        self._outputs.extend(other._outputs)
        self._families.extend(other._families)
        return self

    # ------------------------------------------------------------------
    # Families
    # ------------------------------------------------------------------

    def declare_family(
        self,
        name: str,
        kind: str,
        process_blocks: Iterable[Iterable[str]],
        channel_blocks: Iterable[Iterable[str]] = (),
    ) -> None:
        """Record a replication claim over existing nodes/edges.

        Later connections into the blocks extend them automatically
        (:meth:`connect`); connections that contradict the claim retract
        it.  The claim is frozen — and re-verified downstream — at
        :meth:`build`.
        """
        sketch = _FamilySketch(name, kind, process_blocks, channel_blocks)
        for block in sketch.process_blocks:
            for member in block:
                if member not in self._nodes:
                    raise CompositionError(
                        f"design {self.name!r}: family {name!r} references "
                        f"unknown node {member!r}"
                    )
        for block in sketch.channel_blocks:
            for member in block:
                if member not in self._edges:
                    raise CompositionError(
                        f"design {self.name!r}: family {name!r} references "
                        f"unknown channel {member!r}"
                    )
        self._families.append(sketch)

    def adopt_process_into_family(self, anchor: str, node: str) -> None:
        """Extend every family block containing ``anchor`` with ``node``.

        Used by :func:`repro.dsl.combinators.testbenched` so per-lane
        sources/sinks join their lane's replica block — without this the
        testbench processes would pin the lanes and kill the symmetry
        they are meant to preserve.  Call it *before* connecting the new
        node (the connection's channel is then block-extended by the
        regular :meth:`connect` bookkeeping, exactly once).
        """
        for family in self._families:
            block = family.block_of(anchor)
            if block is not None:
                family.adopt_process(block, node)

    def _note_edge(self, name: str, producer: str, consumer: str) -> None:
        """Family bookkeeping for one new edge.

        An edge inside one block (or from/to the outside) extends that
        block; a constant-offset cross-block edge is rotation-aligned in
        a cyclic family (ring hops); any other cross-block edge breaks
        the claim — an interchangeable family has no lane-to-lane wiring.
        """
        for family in self._families:
            if family.broken:
                continue
            pb = family.block_of(producer)
            cb = family.block_of(consumer)
            if pb is None and cb is None:
                continue
            if pb is not None and cb is not None and pb != cb:
                if family.kind == "cyclic":
                    family.adopt_channel(pb, name)
                else:
                    family.broken = True
            else:
                family.adopt_channel(pb if pb is not None else cb, name)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Elaboration
    # ------------------------------------------------------------------

    def build(
        self,
        name: str | None = None,
        validate: bool = True,
        allow_dangling: bool = False,
    ) -> SystemGraph:
        """Elaborate to a :class:`SystemGraph`.

        Raises :class:`CompositionError` when the design still has
        dangling ports (pass ``allow_dangling=True`` for deliberately
        open intermediate builds) and runs
        :func:`~repro.core.validation.validate_system` on the result by
        default.  Surviving family sketches are frozen and attached as
        :attr:`~repro.core.system.SystemGraph.declared_families`.
        """
        if not allow_dangling and (self._inputs or self._outputs):
            dangling = [f"->{p}" for p in self._inputs]
            dangling += [f"{p}->" for p in self._outputs]
            raise CompositionError(
                f"design {self.name!r}: cannot elaborate with unconnected "
                f"port(s): {', '.join(dangling[:8])}"
                + (" …" if len(dangling) > 8 else "")
            )
        system = SystemGraph(name if name is not None else self.name)
        for process in self._nodes.values():
            system.add_process(process)
        for edge in self._edges.values():
            system.add_channel(
                Channel(
                    edge.name,
                    edge.producer,
                    edge.consumer,
                    latency=edge.wire.latency,
                    capacity=edge.wire.capacity,
                    initial_tokens=edge.wire.tokens,
                )
            )
        families = [
            family
            for family in (sketch.freeze() for sketch in self._families)
            if family is not None
        ]
        if families:
            system.declare_families(families)
        if validate:
            validate_system(system)
        return system

    def __repr__(self) -> str:
        return (
            f"Design({self.name!r}, nodes={len(self._nodes)}, "
            f"edges={len(self._edges)}, inputs={len(self._inputs)}, "
            f"outputs={len(self._outputs)})"
        )


__all__ = ["Design", "Port"]
