"""The combinator catalog: typed composition of open designs.

Every combinator consumes :class:`~repro.dsl.design.Design` values and
returns a new (merged) one; none of them touches ``SystemGraph``
directly — elaboration happens once, at
:meth:`~repro.dsl.design.Design.build`.  See ``docs/DSL.md`` for the
worked catalog; in brief:

* :func:`stage` / :func:`source_stage` / :func:`sink_stage` —
  parameterized single-node factories with per-port
  :class:`~repro.dsl.wire.Wire` metadata;
* :func:`pipe` — positional output→input chaining;
* :func:`parallel` / :func:`replicate` — side-by-side lanes, declaring
  an *interchangeable* family when the lanes structurally align;
* :func:`fanout` / :func:`join` — a head spread over lanes / lanes
  gathered into a tail;
* :func:`reduce_tree` — arity-``k`` reduction of many producers;
* :func:`ring` — a cyclic family closed by pre-loaded hop channels;
* :func:`mesh` — an open NoC grid, or (``wrap=True``) a torus fabric
  with the two cyclic translation families declared;
* :func:`butterfly` — a ``2^m``-lane FFT-style interconnect with its
  ``m`` bit-flip families declared;
* :func:`testbenched` — closes every dangling port with testbench
  processes, keeping declared families intact (per-port mode) or
  sharing one source/sink (``shared=True``).

Designs are consumed linearly: never pass one ``Design`` object to two
compositions — build each replica fresh via its factory.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.dsl.design import Design, Port
from repro.dsl.wire import Wire
from repro.errors import CompositionError

#: Port specification: a count (labels ``in``/``in0..``), or explicit
#: labels, optionally each with its own :class:`Wire`.
PortsSpec = int | Sequence[str | tuple[str, Wire]]


def _ports(
    spec: PortsSpec, base: str, wire: Wire
) -> list[tuple[str, Wire]]:
    if isinstance(spec, int):
        if spec < 0:
            raise CompositionError(f"port count must be >= 0, got {spec}")
        if spec == 0:
            return []
        if spec == 1:
            return [(base, wire)]
        return [(f"{base}{i}", wire) for i in range(spec)]
    if isinstance(spec, str):
        return [(spec, wire)]
    out: list[tuple[str, Wire]] = []
    for entry in spec:
        if isinstance(entry, str):
            out.append((entry, wire))
        else:
            label, entry_wire = entry
            out.append((label, entry_wire))
    return out


# ----------------------------------------------------------------------
# Stage factories
# ----------------------------------------------------------------------


def stage(
    name: str,
    *,
    latency: int = 1,
    inputs: PortsSpec = 1,
    outputs: PortsSpec = 1,
    wire: Wire = Wire(),
) -> Design:
    """One worker node with typed dangling ports.

    ``wire`` is the default port metadata; per-port overrides go through
    explicit ``(label, Wire)`` entries in ``inputs``/``outputs``.
    """
    design = Design(name)
    design.worker(name, latency=latency)
    for label, port_wire in _ports(inputs, "in", wire):
        design.input(name, label, port_wire)
    for label, port_wire in _ports(outputs, "out", wire):
        design.output(name, label, port_wire)
    return design


def source_stage(
    name: str,
    *,
    latency: int = 1,
    outputs: PortsSpec = 1,
    wire: Wire = Wire(),
) -> Design:
    """A testbench source node with typed output ports."""
    design = Design(name)
    design.source(name, latency=latency)
    for label, port_wire in _ports(outputs, "out", wire):
        design.output(name, label, port_wire)
    return design


def sink_stage(
    name: str,
    *,
    latency: int = 1,
    inputs: PortsSpec = 1,
    wire: Wire = Wire(),
) -> Design:
    """A testbench sink node with typed input ports."""
    design = Design(name)
    design.sink(name, latency=latency)
    for label, port_wire in _ports(inputs, "in", wire):
        design.input(name, label, port_wire)
    return design


# ----------------------------------------------------------------------
# Sequential and side-by-side composition
# ----------------------------------------------------------------------


def pipe(*parts: Design) -> Design:
    """Chain designs: each part's outputs feed the next part's inputs.

    Connection is positional (``i``-th output → ``i``-th input) and the
    arities must match exactly; each connection type-checks the two port
    wires (:meth:`Wire.compatible`).  Channel names follow the producer
    port (``node.label``).
    """
    if not parts:
        raise CompositionError("pipe() needs at least one design")
    acc = parts[0]
    for part in parts[1:]:
        upstream = list(acc.outputs)
        downstream = list(part.inputs)
        if len(upstream) != len(downstream):
            raise CompositionError(
                f"pipe: {acc.name!r} exposes {len(upstream)} output(s) but "
                f"{part.name!r} expects {len(downstream)} input(s)"
            )
        acc.merge(part)
        for out_port, in_port in zip(upstream, downstream):
            acc.wire_ports(out_port, in_port)
    return acc


def parallel(
    *parts: Design,
    family: str | None = None,
    kind: str = "interchangeable",
) -> Design:
    """Compose designs side by side (inputs/outputs concatenate in order).

    When the parts structurally align (equal node, edge, and port
    counts) the replica blocks are declared as a family of ``kind`` —
    the claim later verified and spent by :mod:`repro.sym`.  Pass
    ``family`` to name the claim (and to *require* alignment); with the
    default ``family=None`` a misaligned composition simply declares
    nothing.
    """
    if not parts:
        raise CompositionError("parallel() needs at least one design")
    shapes = {
        (
            len(part.node_names),
            len(part.edge_names),
            len(part.inputs),
            len(part.outputs),
        )
        for part in parts
    }
    aligned = len(parts) >= 2 and len(shapes) == 1
    if family is not None and not aligned:
        raise CompositionError(
            f"parallel: family {family!r} requested but the "
            f"{len(parts)} parts do not structurally align "
            f"(node/edge/port counts {sorted(shapes)})"
        )
    process_blocks = [list(part.node_names) for part in parts]
    channel_blocks = [list(part.edge_names) for part in parts]
    acc = parts[0]
    for part in parts[1:]:
        acc.merge(part)
    if aligned:
        acc.declare_family(
            family if family is not None else f"lanes:{acc.name}",
            kind,
            process_blocks,
            channel_blocks,
        )
    return acc


def replicate(
    count: int,
    factory: Callable[[int], Design],
    *,
    family: str | None = None,
) -> Design:
    """``parallel`` over ``count`` fresh instances of ``factory(i)``."""
    if count < 1:
        raise CompositionError(f"replicate: count must be >= 1, got {count}")
    return parallel(*(factory(i) for i in range(count)), family=family)


def fanout(head: Design, *lanes: Design, family: str | None = None) -> Design:
    """Spread ``head``'s outputs over ``lanes`` (one output per lane).

    Declares the lane family; note a *shared* head serializes its put
    statements, so the family verifies up to statement reordering (the
    ERM702 equivalence) rather than exactly — per-lane testbenches
    (:func:`replicate` + :func:`testbenched`) keep lane symmetry exact.
    """
    if not lanes:
        raise CompositionError("fanout() needs at least one lane")
    return pipe(head, parallel(*lanes, family=family))


def join(*lanes: Design, tail: Design, family: str | None = None) -> Design:
    """Gather ``lanes``' outputs into ``tail`` (one input per lane)."""
    if not lanes:
        raise CompositionError("join() needs at least one lane")
    return pipe(parallel(*lanes, family=family), tail)


def reduce_tree(
    leaves: Sequence[Design],
    factory: Callable[[int, int, int], Design],
    *,
    arity: int = 2,
) -> Design:
    """Reduce many single-output designs through a tree of combiners.

    ``factory(level, index, fan_in)`` must return a design with exactly
    ``fan_in`` inputs and one output (the combiner at position ``index``
    of tree level ``level``).  A trailing chunk smaller than ``arity``
    gets a combiner of its actual fan-in; a singleton chunk passes
    through unchanged.
    """
    if not leaves:
        raise CompositionError("reduce_tree() needs at least one leaf")
    if arity < 2:
        raise CompositionError(
            f"reduce_tree: arity must be >= 2, got {arity}"
        )
    current = list(leaves)
    level = 0
    while len(current) > 1:
        next_level: list[Design] = []
        for index, start in enumerate(range(0, len(current), arity)):
            chunk = current[start : start + arity]
            if len(chunk) == 1:
                next_level.append(chunk[0])
                continue
            combiner = factory(level, index, len(chunk))
            next_level.append(pipe(parallel(*chunk), combiner))
        current = next_level
        level += 1
    return current[0]


# ----------------------------------------------------------------------
# Replicated fabrics
# ----------------------------------------------------------------------


def ring(
    parts: Sequence[Design], *, tokens: int = 1, family: str | None = None
) -> Design:
    """Close ``parts`` into a ring: each part's first output feeds the
    next part's first input, wrapping around.

    Every hop channel carries ``tokens`` pre-loaded transactions —
    uniformly, because a rendezvous ring with no tokens can never make
    progress, and a ring with tokens on only one hop is not rotation
    symmetric.  Declares the cyclic (``Z_k``) family.
    """
    if len(parts) < 2:
        raise CompositionError("ring() needs at least two parts")
    if tokens < 1:
        raise CompositionError(
            "ring: hop channels need at least one pre-loaded token "
            "(a token-free rendezvous ring deadlocks under every ordering)"
        )
    ring_outs: list[Port] = []
    ring_ins: list[Port] = []
    for part in parts:
        if not part.outputs or not part.inputs:
            raise CompositionError(
                f"ring: part {part.name!r} must expose at least one input "
                "and one output (the first of each closes the ring)"
            )
        ring_outs.append(part.outputs[0])
        ring_ins.append(part.inputs[0])
    acc = parallel(*parts, family=family, kind="cyclic")
    count = len(parts)
    for i in range(count):
        out_port = ring_outs[i]
        in_port = ring_ins[(i + 1) % count]
        hop_wire = out_port.wire.merged(in_port.wire)
        acc.wire_ports(
            out_port,
            in_port,
            wire=hop_wire.preloaded(max(tokens, hop_wire.tokens)),
        )
    return acc


def mesh(
    rows: int,
    cols: int,
    *,
    latency: int = 1,
    wire: Wire = Wire(),
    wrap: bool = False,
    tokens: int = 1,
    name: str | None = None,
) -> Design:
    """A ``rows × cols`` grid of workers with east/south channels.

    ``wrap=False`` (default) is the open systolic grid of
    :func:`repro.core.generators.mesh_soc`: data enters at the
    north-west corner (one dangling input) and drains at the south-east
    corner (one dangling output); no symmetry is declared — the single
    entry/exit pins every node.

    ``wrap=True`` is a torus NoC fabric: east and south channels wrap
    around, every hop carries ``tokens`` pre-loaded transactions, every
    node exposes its own dangling ``in``/``out`` port (close them with
    per-port :func:`testbenched`), and the two cyclic translation
    families (rotate-rows, rotate-columns) are declared.
    """
    if rows < 1 or cols < 1:
        raise CompositionError("mesh needs at least one row and one column")
    if rows * cols < 2:
        raise CompositionError("mesh needs at least two nodes")
    design = Design(
        name if name is not None else
        f"{'torus' if wrap else 'mesh'}{rows}x{cols}"
    )
    for r in range(rows):
        for c in range(cols):
            design.worker(f"n{r}_{c}", latency=latency)
    if not wrap:
        design.input("n0_0", "in", wire)
        for r in range(rows):
            for c in range(cols):
                if c + 1 < cols:
                    design.connect(
                        f"e{r}_{c}", f"n{r}_{c}", f"n{r}_{c + 1}", wire=wire
                    )
                if r + 1 < rows:
                    design.connect(
                        f"s{r}_{c}", f"n{r}_{c}", f"n{r + 1}_{c}", wire=wire
                    )
        design.output(f"n{rows - 1}_{cols - 1}", "out", wire)
        return design
    # Torus: per-node testbench ports, declared before the fabric so the
    # get order of every node is (tb in, east in, south in) uniformly.
    if tokens < 1:
        raise CompositionError(
            "mesh: a wrapped fabric needs at least one token per hop "
            "(its rows and columns are rendezvous rings)"
        )
    for r in range(rows):
        for c in range(cols):
            design.input(f"n{r}_{c}", "in", wire)
            design.output(f"n{r}_{c}", "out", wire)
    if rows >= 2:
        design.declare_family(
            "torus-rows",
            "cyclic",
            [[f"n{r}_{c}" for c in range(cols)] for r in range(rows)],
        )
    if cols >= 2:
        design.declare_family(
            "torus-cols",
            "cyclic",
            [[f"n{r}_{c}" for r in range(rows)] for c in range(cols)],
        )
    hop = wire.preloaded(max(tokens, wire.tokens))
    if cols >= 2:
        for r in range(rows):
            for c in range(cols):
                design.connect(
                    f"e{r}_{c}", f"n{r}_{c}", f"n{r}_{(c + 1) % cols}",
                    wire=hop,
                )
    if rows >= 2:
        for r in range(rows):
            for c in range(cols):
                design.connect(
                    f"s{r}_{c}", f"n{r}_{c}", f"n{(r + 1) % rows}_{c}",
                    wire=hop,
                )
    return design


def butterfly(
    bits: int,
    *,
    latency: int = 1,
    wire: Wire = Wire(),
    name: str | None = None,
) -> Design:
    """A ``2^bits``-lane butterfly interconnect (``bits`` switch ranks).

    Ranks ``0..bits`` of workers; between rank ``s`` and ``s+1`` every
    lane ``i`` sends a *straight* channel (``st{s}_{i}``, to lane ``i``)
    and a *cross* channel (``cr{s}_{i}``, to lane ``i XOR 2^s``).  The
    classic FFT dataflow shape.  Rank-0 lanes expose dangling inputs and
    rank-``bits`` lanes dangling outputs.

    Declares one two-block interchangeable family per address bit — the
    ``i ↦ i XOR 2^b`` involutions the butterfly is built from — which
    stay exact under per-port :func:`testbenched` closure.
    """
    if bits < 1:
        raise CompositionError(f"butterfly: bits must be >= 1, got {bits}")
    lanes = 1 << bits
    design = Design(name if name is not None else f"butterfly{lanes}")
    for s in range(bits + 1):
        for i in range(lanes):
            design.worker(f"x{s}_{i}", latency=latency)
    for i in range(lanes):
        design.input(f"x0_{i}", "in", wire)
        design.output(f"x{bits}_{i}", "out", wire)
    for s in range(bits):
        for i in range(lanes):
            design.connect(
                f"st{s}_{i}", f"x{s}_{i}", f"x{s + 1}_{i}", wire=wire
            )
        for i in range(lanes):
            design.connect(
                f"cr{s}_{i}",
                f"x{s}_{i}",
                f"x{s + 1}_{i ^ (1 << s)}",
                wire=wire,
            )
    # The bit-flip families, with explicit channel blocks (the cross
    # channels of rank b straddle the bit-b blocks, which the incremental
    # bookkeeping would conservatively reject).
    for b in range(bits):
        mask = 1 << b
        low = [i for i in range(lanes) if not i & mask]
        design.declare_family(
            f"bit{b}",
            "interchangeable",
            [
                [f"x{s}_{i}" for s in range(bits + 1) for i in low],
                [f"x{s}_{i | mask}" for s in range(bits + 1) for i in low],
            ],
            [
                [
                    f"{kind}{s}_{i}"
                    for s in range(bits)
                    for kind in ("st", "cr")
                    for i in low
                ],
                [
                    f"{kind}{s}_{i | mask}"
                    for s in range(bits)
                    for kind in ("st", "cr")
                    for i in low
                ],
            ],
        )
    return design


# ----------------------------------------------------------------------
# Testbench closure
# ----------------------------------------------------------------------


def testbenched(
    design: Design,
    *,
    shared: bool = False,
    source_latency: int = 1,
    sink_latency: int = 1,
) -> Design:
    """Close every dangling port of ``design`` with testbench processes.

    Per-port mode (default): one source per dangling input and one sink
    per dangling output.  Each testbench process is adopted into the
    replica block of the node it serves, so declared families stay
    *exactly* symmetric — this is the closure to use before symmetry-
    aware verification or exploration.

    ``shared=True``: a single source feeds every input and a single
    sink drains every output — the classic one-testbench shape.  The
    shared endpoints serialize their statement order, so families over
    the closed lanes verify only up to statement reordering.
    """
    if shared:
        if design.inputs:
            src = design.source("src", latency=source_latency)
            for index, port in enumerate(list(design.inputs)):
                src_port = design.output(src, f"out{index}", port.wire)
                design.wire_ports(src_port, port)
        if design.outputs:
            snk = design.sink("snk", latency=sink_latency)
            for index, port in enumerate(list(design.outputs)):
                snk_port = design.input(snk, f"in{index}", port.wire)
                design.wire_ports(port, snk_port)
        return design
    for index, port in enumerate(list(design.inputs)):
        src = design.source(f"src{index}", latency=source_latency)
        design.adopt_process_into_family(port.node, src)
        src_port = design.output(src, "out", port.wire)
        design.wire_ports(src_port, port)
    for index, port in enumerate(list(design.outputs)):
        snk = design.sink(f"snk{index}", latency=sink_latency)
        design.adopt_process_into_family(port.node, snk)
        snk_port = design.input(snk, "in", port.wire)
        design.wire_ports(port, snk_port)
    return design
