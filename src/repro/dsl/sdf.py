"""Multirate streaming front end: SDF specifications as DSL citizens.

Two pieces close the gap between :mod:`repro.sdf` and the composition
layer:

* :func:`rate_chain` — the parameterized gnuradio-style rate-converter
  factory: a linear chain of actors with per-hop (production,
  consumption) rates, the canonical multirate workload;
* :func:`streaming_design` — the testbench closure of the homogeneous
  expansion.  :func:`repro.sdf.convert.sdf_to_system` deliberately emits
  an all-worker system (no sources or sinks), which fails structural
  validation by design; ``streaming_design`` extends the same open
  :class:`~repro.dsl.design.Design` with one source per head actor and
  one sink per tail actor, feeding/draining **every** firing instance,
  and elaborates a fully validated system (``validate_system`` passes
  and the ERM1xx structural lint family is clean) together with an
  Algorithm-1 statement ordering.
"""

from __future__ import annotations

from typing import Sequence

from repro.dsl.wire import Wire
from repro.errors import CompositionError
from repro.sdf.convert import SdfCompilation, expansion_design, instance_name
from repro.sdf.graph import SdfGraph


def rate_chain(
    name: str,
    rates: Sequence[tuple[int, int]],
    *,
    execution_times: Sequence[int] | None = None,
    channel_latency: int = 1,
) -> SdfGraph:
    """A linear multirate chain ``a0 → a1 → … → aN``.

    ``rates[i] = (production, consumption)`` types hop ``e{i}`` from
    ``a{i}`` to ``a{i+1}``; a chain over ``N`` hops has ``N + 1``
    actors.  ``execution_times`` (length ``N + 1``) sets per-actor
    latencies, defaulting to 1.
    """
    if not rates:
        raise CompositionError("rate_chain() needs at least one hop")
    count = len(rates) + 1
    times = list(execution_times) if execution_times is not None else [1] * count
    if len(times) != count:
        raise CompositionError(
            f"rate_chain: {count} actors need {count} execution times, "
            f"got {len(times)}"
        )
    graph = SdfGraph(name)
    for index in range(count):
        graph.add_actor(f"a{index}", execution_time=times[index])
    for index, (production, consumption) in enumerate(rates):
        graph.add_edge(
            f"e{index}",
            f"a{index}",
            f"a{index + 1}",
            production=production,
            consumption=consumption,
            latency=channel_latency,
        )
    return graph


def streaming_design(
    graph: SdfGraph,
    *,
    serialize_actors: bool = True,
    sync_latency: int = 1,
    source_latency: int = 1,
    sink_latency: int = 1,
) -> SdfCompilation:
    """Compile ``graph`` and close it with a streaming testbench.

    Head actors (no incoming edges from other actors) get a source
    ``src_{actor}`` feeding every firing instance; tail actors (no
    outgoing edges to other actors) get a sink ``snk_{actor}`` draining
    every instance.  The returned compilation's system passes full
    structural validation and its ordering is recomputed by Algorithm 1
    over the closed expansion.

    Raises:
        CompositionError: Every actor sits in a cycle (no head to feed,
            or no tail to drain) — such a specification has no external
            streaming interface to close.
    """
    design, repetitions = expansion_design(
        graph, serialize_actors=serialize_actors, sync_latency=sync_latency
    )
    has_input = {
        edge.consumer for edge in graph.edges if edge.producer != edge.consumer
    }
    has_output = {
        edge.producer for edge in graph.edges if edge.producer != edge.consumer
    }
    heads = [actor.name for actor in graph.actors if actor.name not in has_input]
    tails = [
        actor.name for actor in graph.actors if actor.name not in has_output
    ]
    if not heads:
        raise CompositionError(
            f"streaming_design: {graph.name!r} has no head actor (every "
            "actor has an upstream) — nothing to feed from a source"
        )
    if not tails:
        raise CompositionError(
            f"streaming_design: {graph.name!r} has no tail actor (every "
            "actor has a downstream) — nothing to drain into a sink"
        )
    for actor in heads:
        src = design.source(f"src_{actor}", latency=source_latency)
        count = repetitions[actor]
        for index in range(count):
            design.connect(
                f"__src_{actor}_{index}",
                src,
                instance_name(actor, index, count),
                wire=Wire(),
            )
    for actor in tails:
        snk = design.sink(f"snk_{actor}", latency=sink_latency)
        count = repetitions[actor]
        for index in range(count):
            design.connect(
                f"__snk_{actor}_{index}",
                instance_name(actor, index, count),
                snk,
                wire=Wire(),
            )
    system = design.build()

    from repro.ordering.algorithm import channel_ordering

    return SdfCompilation(
        system=system,
        repetitions=repetitions,
        ordering=channel_ordering(system),
    )
