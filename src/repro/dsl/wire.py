"""Port metadata: the typed payload every DSL connection carries.

A :class:`Wire` describes *what* flows through a port — how many data
elements per transaction, over how wide a link, behind how much FIFO —
and the physical channel attributes are **derived** from it instead of
hand-entered:

* ``latency  = max(1, setup + ceil(elements / rate))`` — the cycles one
  transaction needs, mirroring the channel-characterization model of
  :func:`repro.hls.characterize.transfer_latency` (a message of
  ``elements`` words over a link moving ``rate`` words per cycle, after
  ``setup`` handshake cycles);
* ``capacity = depth`` — the declared FIFO depth (0 = pure rendezvous);
* ``initial_tokens = tokens`` — pre-loaded transactions (what makes a
  feedback loop live).

Two ports may be connected only when their payloads agree (same
``elements`` and ``rate`` — see :meth:`Wire.compatible`); the buffering
attributes of the two endpoints are merged conservatively (the deeper
FIFO, the larger preload, the longer setup wins).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ValidationError


@dataclass(frozen=True)
class Wire:
    """Typed per-port metadata from which channel physics is derived.

    Attributes:
        elements: Data elements (words) per transaction — the payload
            size, the "type width" of the port.
        rate: Elements transferred per cycle — the link width.
        setup: Handshake setup cycles added to every transfer.
        depth: FIFO depth backing the connection (0 = rendezvous).
        tokens: Transactions pre-loaded before the system starts.
    """

    elements: int = 1
    rate: int = 1
    setup: int = 0
    depth: int = 0
    tokens: int = 0

    def __post_init__(self) -> None:
        if self.elements < 1:
            raise ValidationError(
                f"wire: elements must be >= 1, got {self.elements}"
            )
        if self.rate < 1:
            raise ValidationError(f"wire: rate must be >= 1, got {self.rate}")
        if self.setup < 0:
            raise ValidationError(
                f"wire: setup must be >= 0, got {self.setup}"
            )
        if self.depth < 0:
            raise ValidationError(
                f"wire: depth must be >= 0, got {self.depth}"
            )
        if self.tokens < 0:
            raise ValidationError(
                f"wire: tokens must be >= 0, got {self.tokens}"
            )

    @property
    def latency(self) -> int:
        """Derived channel latency: ``max(1, setup + ceil(elements/rate))``."""
        return max(1, self.setup + math.ceil(self.elements / self.rate))

    @property
    def capacity(self) -> int:
        """Derived channel capacity (the declared FIFO depth)."""
        return self.depth

    def compatible(self, other: "Wire") -> bool:
        """Payload-compatible: equal element count and link rate."""
        return self.elements == other.elements and self.rate == other.rate

    def merged(self, other: "Wire") -> "Wire":
        """The channel wire of a connection between two compatible ports.

        Payload from either side (they agree); buffering and setup are
        the conservative union of the two declarations.
        """
        return Wire(
            elements=self.elements,
            rate=self.rate,
            setup=max(self.setup, other.setup),
            depth=max(self.depth, other.depth),
            tokens=max(self.tokens, other.tokens),
        )

    def buffered(self, depth: int) -> "Wire":
        """This wire behind a FIFO of ``depth`` slots."""
        return replace(self, depth=depth)

    def preloaded(self, tokens: int) -> "Wire":
        """This wire with ``tokens`` pre-loaded transactions."""
        return replace(self, tokens=tokens)


def wire_for_latency(
    latency: int, *, depth: int = 0, tokens: int = 0
) -> Wire:
    """A wire whose derived channel latency is exactly ``latency``.

    The inverse of the derivation rule for hand-specified timing
    (``latency`` elements over a one-element-per-cycle link): how the
    paper-pinned generators express their exact channel latencies
    through the typed layer.
    """
    if latency < 1:
        raise ValidationError(
            f"wire_for_latency: latency must be >= 1, got {latency}"
        )
    return Wire(elements=latency, rate=1, depth=depth, tokens=tokens)
