"""Compositional design DSL — the "gears" layer over the system model.

Hand-built construction (``SystemBuilder`` call chains, literal channel
latencies) does not scale to communication-centric SoCs and cannot tell
downstream analyses *how* a design was composed.  This package provides
a small typed combinator algebra instead:

* :class:`~repro.dsl.wire.Wire` — per-port payload metadata from which
  channel latency/capacity/tokens are **derived**, never hand-entered;
* :class:`~repro.dsl.design.Design` — the open netlist combinators
  compose, with call-site :class:`~repro.errors.CompositionError`
  diagnostics and a deterministic elaboration contract (declaration
  order = composition order);
* the combinator catalog (:mod:`repro.dsl.combinators`) — ``stage``,
  ``pipe``, ``parallel``/``replicate``, ``fanout``/``join``,
  ``reduce_tree``, ``ring``, ``mesh``, ``butterfly``, ``testbenched``;
* the multirate front end (:mod:`repro.dsl.sdf`) — ``rate_chain`` and
  ``streaming_design``.

Replicating combinators record their replica structure as
:class:`~repro.core.families.DeclaredFamily` claims on the elaborated
system, which :mod:`repro.sym` verifies and spends: ERM701 reports
declared orbit families without rediscovery and the explorer's orbit
dedup seeds its canonical search from them.  See ``docs/DSL.md``.
"""

from repro.dsl.combinators import (
    butterfly,
    fanout,
    join,
    mesh,
    parallel,
    pipe,
    reduce_tree,
    replicate,
    ring,
    sink_stage,
    source_stage,
    stage,
    testbenched,
)
from repro.dsl.design import Design, Port
from repro.dsl.sdf import rate_chain, streaming_design
from repro.dsl.wire import Wire, wire_for_latency

__all__ = [
    "Design",
    "Port",
    "Wire",
    "butterfly",
    "fanout",
    "join",
    "mesh",
    "parallel",
    "pipe",
    "rate_chain",
    "reduce_tree",
    "replicate",
    "ring",
    "sink_stage",
    "source_stage",
    "stage",
    "streaming_design",
    "testbenched",
    "wire_for_latency",
]
