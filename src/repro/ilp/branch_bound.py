"""Exact branch-and-bound solver for multiple-choice 0-1 programs.

The GLPK substitute.  Search is depth-first over groups with:

* an **objective bound**: the incumbent cannot be beaten if the current
  value plus the per-group best remaining contributions does not exceed
  it.  For the single-``<=``-constraint shape (the methodology's knapsack
  variants) the much tighter **fractional multiple-choice-knapsack bound**
  is used instead: the LP relaxation of the remaining subproblem, solved
  greedily over the per-group convex hulls of (consumption, objective)
  increments — the textbook MCKP bound;
* **dominance filtering** within groups when every constraint is ``<=``:
  a choice that is no better on the objective and no cheaper on every row
  can be dropped outright;
* **feasibility pruning** per side constraint: interval arithmetic over
  the undecided groups (minimum/maximum possible consumption) shows some
  partial assignments can never satisfy a ``<=``/``==``/``>=`` row;
* group ordering by descending objective spread, so impactful decisions
  happen near the root;
* **presolve** of separable groups (no constraint contact) when no
  no-good cuts are present.

Correctness is property-tested against exhaustive enumeration and the
SciPy MILP backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InfeasibleError
from repro.ilp.model import Choice, MultiChoiceProblem, Sense, Solution


@dataclass
class _SearchState:
    best_value: float
    best_selection: dict[str, str] | None
    nodes: int


_PRUNE_TOL = 1e-9


def _dominance_filter(
    choices: tuple[Choice, ...], sign: float, constraint_names: list[str]
) -> list[Choice]:
    """Drop choices dominated within their group (all-``<=`` problems only:
    lower-or-equal objective and higher-or-equal use on every row)."""
    kept: list[Choice] = []
    for candidate in choices:
        dominated = False
        for other in choices:
            if other is candidate:
                continue
            if sign * other.objective < sign * candidate.objective:
                continue
            if any(
                other.use(name) > candidate.use(name)
                for name in constraint_names
            ):
                continue
            # `other` is at least as good everywhere; break ties by
            # keeping the first occurrence.
            strictly = (
                sign * other.objective > sign * candidate.objective
                or any(
                    other.use(name) < candidate.use(name)
                    for name in constraint_names
                )
            )
            if strictly or choices.index(other) < choices.index(candidate):
                dominated = True
                break
        if not dominated:
            kept.append(candidate)
    return kept


class _MckpBound:
    """Fractional multiple-choice-knapsack upper bound (single ``<=`` row).

    Precomputes, per group, the lower convex hull of (weight, value)
    points; the LP optimum of the remaining groups under a residual budget
    is the per-group hull bases plus the best incremental steps taken
    greedily in global ratio order (within-group order is automatic
    because hull ratios decrease).
    """

    def __init__(
        self,
        group_choices: list[list[Choice]],
        sign: float,
        constraint: str,
    ):
        self.base_weight: list[float] = []
        self.base_value: list[float] = []
        #: (ratio, delta_weight, delta_value, group_index), ratio desc.
        self.steps: list[tuple[float, float, float, int]] = []
        for index, choices in enumerate(group_choices):
            # Sort by (weight asc, value desc); keep the best value per
            # weight and only strictly improving values (heavier points
            # that do not improve are integer-dominated).
            points = sorted(
                ((c.use(constraint), sign * c.objective) for c in choices),
                key=lambda p: (p[0], -p[1]),
            )
            filtered: list[tuple[float, float]] = []
            best_value = float("-inf")
            for weight, value in points:
                if filtered and weight == filtered[-1][0]:
                    continue
                if value <= best_value:
                    continue
                filtered.append((weight, value))
                best_value = value
            # Upper concave hull: incremental ratios must decrease.
            hull: list[tuple[float, float]] = []
            for weight, value in filtered:
                while len(hull) >= 2:
                    (w1, v1), (w2, v2) = hull[-2], hull[-1]
                    if (v2 - v1) * (weight - w2) <= (value - v2) * (w2 - w1):
                        hull.pop()
                    else:
                        break
                hull.append((weight, value))
            self.base_weight.append(hull[0][0])
            self.base_value.append(hull[0][1])
            for (w1, v1), (w2, v2) in zip(hull, hull[1:]):
                delta_w = w2 - w1
                delta_v = v2 - v1
                self.steps.append((delta_v / delta_w, delta_w, delta_v, index))
        self.steps.sort(key=lambda s: -s[0])
        # Suffix sums of the bases for O(1) node lookups.
        n = len(group_choices)
        self.suffix_base_weight = [0.0] * (n + 1)
        self.suffix_base_value = [0.0] * (n + 1)
        for i in range(n - 1, -1, -1):
            self.suffix_base_weight[i] = (
                self.suffix_base_weight[i + 1] + self.base_weight[i]
            )
            self.suffix_base_value[i] = (
                self.suffix_base_value[i + 1] + self.base_value[i]
            )

    def bound(self, depth: int, budget_left: float) -> float:
        """Upper bound on the remaining groups' value within the budget
        (``-inf`` when even the cheapest bases do not fit)."""
        slack = budget_left - self.suffix_base_weight[depth]
        if slack < -_PRUNE_TOL:
            return float("-inf")
        value = self.suffix_base_value[depth]
        for ratio, delta_w, delta_v, index in self.steps:
            if index < depth:
                continue
            if slack <= _PRUNE_TOL:
                break
            if ratio <= 0:
                break  # remaining steps cannot improve the bound
            if delta_w <= slack:
                value += delta_v
                slack -= delta_w
            else:
                value += ratio * slack
                slack = 0.0
                break
        return value


def solve(problem: MultiChoiceProblem, node_limit: int = 5_000_000) -> Solution:
    """Solve exactly; raises :class:`~repro.errors.InfeasibleError` when no
    assignment satisfies the constraints (including no-good cuts)."""
    sign = 1.0 if problem.maximize else -1.0

    # Presolve: a group none of whose choices touches any present
    # constraint is separable — its best choice is decided locally.  Only
    # safe without no-good cuts (cuts couple all groups).
    presolved: dict[str, str] = {}
    presolved_value = 0.0
    search_groups = []
    constraint_names = [c.name for c in problem.constraints]
    if not problem.forbidden:
        for group in problem.groups:
            touches = any(
                c.use(name) != 0 for c in group.choices for name in constraint_names
            )
            if touches:
                search_groups.append(group)
            else:
                best_choice = max(group.choices, key=lambda c: sign * c.objective)
                presolved[group.name] = best_choice.name
                presolved_value += sign * best_choice.objective
    else:
        search_groups = list(problem.groups)

    groups = sorted(
        search_groups,
        key=lambda g: -(
            max(sign * c.objective for c in g.choices)
            - min(sign * c.objective for c in g.choices)
        ),
    )

    # Dominance filtering (sound only for all-<= rows without cuts: a
    # dominated choice can never appear in an optimal solution, but it
    # might in the post-cut second best).
    all_le = all(c.sense is Sense.LE for c in problem.constraints)
    if all_le and not problem.forbidden:
        group_choices = [
            _dominance_filter(g.choices, sign, constraint_names) for g in groups
        ]
    else:
        group_choices = [list(g.choices) for g in groups]
    ordered_choices = [
        sorted(choices, key=lambda c: -sign * c.objective)
        for choices in group_choices
    ]

    # Per-group maxima/minima used by the bounds, precomputed.
    obj_max = [
        max(sign * c.objective for c in choices) for choices in group_choices
    ]
    suffix_obj = _suffix_sums(obj_max)
    use_min: dict[str, list[float]] = {}
    use_max: dict[str, list[float]] = {}
    for name in constraint_names:
        mins = [min(c.use(name) for c in choices) for choices in group_choices]
        maxs = [max(c.use(name) for c in choices) for choices in group_choices]
        use_min[name] = _suffix_sums(mins)
        use_max[name] = _suffix_sums(maxs)

    # The tight fractional-MCKP bound applies to the single-<= shape.
    mckp: _MckpBound | None = None
    mckp_row = ""
    if (
        len(problem.constraints) == 1
        and problem.constraints[0].sense is Sense.LE
        and not problem.forbidden
    ):
        mckp_row = problem.constraints[0].name
        mckp = _MckpBound(group_choices, sign, mckp_row)

    state = _SearchState(best_value=float("-inf"), best_selection=None, nodes=0)
    selection: dict[str, str] = {}
    usage = {name: 0.0 for name in constraint_names}

    def feasible_reachable(depth: int) -> bool:
        for constraint in problem.constraints:
            lo = usage[constraint.name] + use_min[constraint.name][depth]
            hi = usage[constraint.name] + use_max[constraint.name][depth]
            if constraint.sense is Sense.LE and lo > constraint.rhs + 1e-9:
                return False
            if constraint.sense is Sense.GE and hi < constraint.rhs - 1e-9:
                return False
            if constraint.sense is Sense.EQ and (
                lo > constraint.rhs + 1e-9 or hi < constraint.rhs - 1e-9
            ):
                return False
        return True

    def dfs(depth: int, value: float) -> None:
        state.nodes += 1
        if state.nodes > node_limit:
            raise InfeasibleError(
                f"branch-and-bound exceeded {node_limit} nodes; "
                "the instance is larger than this solver is meant for"
            )
        if mckp is not None:
            bound = mckp.bound(depth, problem.constraints[0].rhs - usage[mckp_row])
            if bound == float("-inf"):
                return
            if state.best_selection is not None and \
                    value + bound <= state.best_value + _PRUNE_TOL:
                return
        elif state.best_selection is not None and \
                value + suffix_obj[depth] <= state.best_value + _PRUNE_TOL:
            return
        if not feasible_reachable(depth):
            return
        if depth == len(groups):
            if problem.forbidden and not _passes_cuts(problem, selection):
                return
            if value > state.best_value:
                state.best_value = value
                state.best_selection = dict(selection)
            return
        group = groups[depth]
        for choice in ordered_choices[depth]:
            selection[group.name] = choice.name
            for name in constraint_names:
                usage[name] += choice.use(name)
            dfs(depth + 1, value + sign * choice.objective)
            for name in constraint_names:
                usage[name] -= choice.use(name)
            del selection[group.name]

    dfs(0, 0.0)
    if state.best_selection is None:
        raise InfeasibleError(
            "multiple-choice program has no feasible assignment"
        )
    full_selection = dict(state.best_selection)
    full_selection.update(presolved)
    return Solution(
        selection=full_selection,
        objective=sign * (state.best_value + presolved_value),
        nodes=state.nodes,
    )


def _passes_cuts(problem: MultiChoiceProblem, selection: dict[str, str]) -> bool:
    return all(dict(cut) != selection for cut in problem.forbidden)


def _suffix_sums(values: list[float]) -> list[float]:
    """``suffix[i] = sum(values[i:])`` with ``suffix[len] = 0``."""
    suffix = [0.0] * (len(values) + 1)
    for i in range(len(values) - 1, -1, -1):
        suffix[i] = suffix[i + 1] + values[i]
    return suffix
