"""Optional SciPy MILP backend (`scipy.optimize.milp`, HiGHS).

A third independent solver for :class:`~repro.ilp.model.MultiChoiceProblem`
instances, used to cross-check the built-in branch-and-bound the way the
paper cross-checks against GLPK.  Import-guarded: the rest of the package
works without SciPy.

No-good cuts are encoded as cover constraints: for a forbidden full
assignment ``S``, ``sum_{(g,c) in S} x_{g,c} <= |groups| - 1``.
"""

from __future__ import annotations

from repro.errors import InfeasibleError, ReproError
from repro.ilp.model import MultiChoiceProblem, Sense, Solution


def available() -> bool:
    """True when SciPy's MILP solver can be imported."""
    try:
        from scipy.optimize import milp  # noqa: F401
    except ImportError:
        return False
    return True


def solve(problem: MultiChoiceProblem) -> Solution:
    """Solve with `scipy.optimize.milp`.

    Raises:
        ReproError: SciPy is unavailable.
        InfeasibleError: The model is infeasible.
    """
    try:
        import numpy as np
        from scipy.optimize import Bounds, LinearConstraint, milp
    except ImportError as error:
        raise ReproError("scipy backend requested but scipy is missing") from error

    # Flatten variables: one binary per (group, choice).
    index: dict[tuple[str, str], int] = {}
    for group in problem.groups:
        for choice in group.choices:
            index[(group.name, choice.name)] = len(index)
    n = len(index)
    sign = -1.0 if problem.maximize else 1.0  # milp minimizes

    objective = np.zeros(n)
    for group in problem.groups:
        for choice in group.choices:
            objective[index[(group.name, choice.name)]] = sign * choice.objective

    rows = []
    lows = []
    highs = []

    # Exactly-one rows.
    for group in problem.groups:
        row = np.zeros(n)
        for choice in group.choices:
            row[index[(group.name, choice.name)]] = 1.0
        rows.append(row)
        lows.append(1.0)
        highs.append(1.0)

    # Side constraints.
    for constraint in problem.constraints:
        row = np.zeros(n)
        for group in problem.groups:
            for choice in group.choices:
                row[index[(group.name, choice.name)]] = choice.use(constraint.name)
        rows.append(row)
        if constraint.sense is Sense.LE:
            lows.append(-np.inf)
            highs.append(constraint.rhs)
        elif constraint.sense is Sense.GE:
            lows.append(constraint.rhs)
            highs.append(np.inf)
        else:
            lows.append(constraint.rhs)
            highs.append(constraint.rhs)

    # No-good cuts.
    for cut in problem.forbidden:
        row = np.zeros(n)
        for group_name, choice_name in cut.items():
            row[index[(group_name, choice_name)]] = 1.0
        rows.append(row)
        lows.append(-np.inf)
        highs.append(len(problem.groups) - 1.0)

    result = milp(
        c=objective,
        constraints=LinearConstraint(np.vstack(rows), lows, highs),
        integrality=np.ones(n),
        bounds=Bounds(0, 1),
    )
    if not result.success:
        raise InfeasibleError(f"scipy.milp failed: {result.message}")

    selection: dict[str, str] = {}
    for (group_name, choice_name), i in index.items():
        if result.x[i] > 0.5:
            selection[group_name] = choice_name
    objective_value = problem.evaluate(selection)
    return Solution(selection=selection, objective=objective_value)
