"""ILP model for the Section 5 optimization problems.

The paper formulates IP selection as 0-1 ILPs over variables ``x_{i,p}``
("implementation *i* is selected for process *p*") with exactly-one
constraints per process and linear side constraints on cumulative latency
or area gains — i.e. *multiple-choice knapsack* structure.  The model here
captures exactly that shape:

* a :class:`Group` per process, whose :class:`Choice`\\ s are its candidate
  implementations (each with an objective value and per-constraint
  consumptions);
* named linear :class:`SideConstraint`\\ s (``<=``, ``==`` or ``>=``);
* a maximize/minimize direction.

Both the built-in branch-and-bound solver and the optional SciPy backend
consume this model, so results can be cross-checked solver-to-solver the
way the paper cross-checks against GLPK.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import ValidationError


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    EQ = "=="
    GE = ">="


@dataclass(frozen=True)
class Choice:
    """One selectable option within a group.

    Attributes:
        name: Unique within the group.
        objective: Contribution to the objective if selected.
        uses: Contribution to each named side constraint if selected
            (absent constraints contribute 0).
    """

    name: str
    objective: float
    uses: Mapping[str, float] = field(default_factory=dict)

    def use(self, constraint: str) -> float:
        return self.uses.get(constraint, 0.0)


@dataclass(frozen=True)
class Group:
    """An exactly-one selection group (one process's implementations)."""

    name: str
    choices: tuple[Choice, ...]

    def __post_init__(self) -> None:
        if not self.choices:
            raise ValidationError(f"group {self.name!r} has no choices")
        names = [c.name for c in self.choices]
        if len(set(names)) != len(names):
            raise ValidationError(f"group {self.name!r} has duplicate choice names")

    def choice(self, name: str) -> Choice:
        for c in self.choices:
            if c.name == name:
                return c
        raise ValidationError(f"group {self.name!r} has no choice {name!r}")


@dataclass(frozen=True)
class SideConstraint:
    """A named linear constraint over the selected choices."""

    name: str
    sense: Sense
    rhs: float


@dataclass(frozen=True)
class Solution:
    """An assignment of one choice per group.

    ``nodes`` reports search effort (branch-and-bound nodes explored);
    backends without a node notion leave it 0.
    """

    selection: Mapping[str, str]  # group name -> choice name
    objective: float
    nodes: int = 0

    def choice_of(self, group: str) -> str:
        return self.selection[group]


@dataclass
class MultiChoiceProblem:
    """A multiple-choice 0-1 program: pick one choice per group, optimize a
    linear objective subject to linear side constraints."""

    groups: list[Group] = field(default_factory=list)
    constraints: list[SideConstraint] = field(default_factory=list)
    maximize: bool = True
    forbidden: list[Mapping[str, str]] = field(default_factory=list)

    def add_group(self, name: str, choices: Iterable[Choice]) -> Group:
        if any(g.name == name for g in self.groups):
            raise ValidationError(f"duplicate group {name!r}")
        group = Group(name, tuple(choices))
        self.groups.append(group)
        return group

    def add_constraint(self, name: str, sense: Sense | str, rhs: float) -> None:
        if any(c.name == name for c in self.constraints):
            raise ValidationError(f"duplicate constraint {name!r}")
        self.constraints.append(SideConstraint(name, Sense(sense), rhs))

    def forbid(self, selection: Mapping[str, str]) -> None:
        """Add a *no-good cut*: this exact full assignment is not allowed.

        This implements the paper's "constraints to discard the
        configurations already optimized" — the explorer uses it to avoid
        revisiting configurations across iterations.
        """
        missing = [g.name for g in self.groups if g.name not in selection]
        if missing:
            raise ValidationError(
                f"no-good cut must cover every group; missing {missing}"
            )
        self.forbidden.append(dict(selection))

    def group(self, name: str) -> Group:
        for g in self.groups:
            if g.name == name:
                return g
        raise ValidationError(f"unknown group {name!r}")

    def evaluate(self, selection: Mapping[str, str]) -> float:
        """Objective value of a full assignment (no feasibility check)."""
        total = 0.0
        for g in self.groups:
            total += g.choice(selection[g.name]).objective
        return total

    def is_feasible(self, selection: Mapping[str, str]) -> bool:
        """Check a full assignment against all constraints and cuts."""
        for constraint in self.constraints:
            lhs = sum(
                g.choice(selection[g.name]).use(constraint.name)
                for g in self.groups
            )
            if not _satisfies(lhs, constraint.sense, constraint.rhs):
                return False
        return all(dict(cut) != dict(selection) for cut in self.forbidden)


def _satisfies(lhs: float, sense: Sense, rhs: float, tol: float = 1e-9) -> bool:
    if sense is Sense.LE:
        return lhs <= rhs + tol
    if sense is Sense.GE:
        return lhs >= rhs - tol
    return abs(lhs - rhs) <= tol
