"""0-1 ILP substrate (GLPK substitute): multiple-choice models, an exact
branch-and-bound solver, a knapsack DP, and an optional SciPy backend."""

from repro.ilp import branch_bound, knapsack, scipy_backend
from repro.ilp.model import (
    Choice,
    Group,
    MultiChoiceProblem,
    Sense,
    SideConstraint,
    Solution,
)


def solve(problem: MultiChoiceProblem, backend: str = "branch_bound") -> Solution:
    """Solve a multiple-choice program with the selected backend.

    Backends: ``branch_bound`` (default, always available), ``knapsack``
    (only for single-``<=``-constraint integer problems), ``scipy``
    (requires SciPy; cross-check oracle).
    """
    if backend == "branch_bound":
        return branch_bound.solve(problem)
    if backend == "knapsack":
        return knapsack.solve(problem)
    if backend == "scipy":
        return scipy_backend.solve(problem)
    raise ValueError(f"unknown ILP backend {backend!r}")


__all__ = [
    "Choice",
    "Group",
    "MultiChoiceProblem",
    "Sense",
    "SideConstraint",
    "Solution",
    "branch_bound",
    "knapsack",
    "scipy_backend",
    "solve",
]
