"""Dynamic-programming solver for the multiple-choice knapsack shape.

The paper notes that area recovery "is a variant of the knapsack problem":
maximize total area gain subject to a budget on total latency loss.  When a
:class:`~repro.ilp.model.MultiChoiceProblem` has exactly one ``<=``
constraint with integer, non-negative consumptions, classic multiple-choice
knapsack DP solves it in ``O(groups × budget × choices)`` — an independent
exact oracle for the branch-and-bound solver, and the asymptotically better
option when budgets are small.
"""

from __future__ import annotations

from repro.errors import InfeasibleError, ValidationError
from repro.ilp.model import MultiChoiceProblem, Sense, Solution

_NEG_INF = float("-inf")


def applicable(problem: MultiChoiceProblem) -> bool:
    """True when the DP can solve this problem exactly."""
    if len(problem.constraints) != 1 or problem.forbidden:
        return False
    constraint = problem.constraints[0]
    if constraint.sense is not Sense.LE:
        return False
    if constraint.rhs < 0 or constraint.rhs != int(constraint.rhs):
        return False
    for group in problem.groups:
        for choice in group.choices:
            use = choice.use(constraint.name)
            if use < 0 or use != int(use):
                return False
    return True


def solve(problem: MultiChoiceProblem) -> Solution:
    """Solve via multiple-choice knapsack DP.

    Raises:
        ValidationError: The problem does not have the knapsack shape
            (check with :func:`applicable` first).
        InfeasibleError: No assignment fits the budget.
    """
    if not applicable(problem):
        raise ValidationError(
            "problem is not a non-negative integer multiple-choice knapsack"
        )
    constraint = problem.constraints[0]
    budget = int(constraint.rhs)
    sign = 1.0 if problem.maximize else -1.0

    # value[w] = best achievable objective using total weight exactly <= w,
    # back[g][w] = (choice name, previous weight) for reconstruction.
    value = [0.0] + [_NEG_INF] * budget
    value[0] = 0.0
    # All weights start infeasible except 0 with no groups chosen yet.
    current = [_NEG_INF] * (budget + 1)
    current[0] = 0.0
    back: list[list[tuple[str, int] | None]] = []

    for group in problem.groups:
        nxt = [_NEG_INF] * (budget + 1)
        trace: list[tuple[str, int] | None] = [None] * (budget + 1)
        for w in range(budget + 1):
            if current[w] == _NEG_INF:
                continue
            for choice in group.choices:
                use = int(choice.use(constraint.name))
                w2 = w + use
                if w2 > budget:
                    continue
                candidate = current[w] + sign * choice.objective
                if candidate > nxt[w2]:
                    nxt[w2] = candidate
                    trace[w2] = (choice.name, w)
        current = nxt
        back.append(trace)

    best_w = max(range(budget + 1), key=lambda w: current[w])
    if current[best_w] == _NEG_INF:
        raise InfeasibleError("no assignment fits the knapsack budget")

    # Reconstruct the selection group by group, walking back.
    selection: dict[str, str] = {}
    w = best_w
    for index in range(len(problem.groups) - 1, -1, -1):
        step = back[index][w]
        assert step is not None, "DP reconstruction lost its trail"
        name, w_prev = step
        selection[problem.groups[index].name] = name
        w = w_prev

    return Solution(selection=selection, objective=sign * current[best_w])
