"""The MPEG-2 Encoder case study (Table 1): topology, Pareto library,
channel latencies, functional codec, and the simulator binding."""

from repro.mpeg2.functional import FunctionalRun, encode_through_system
from repro.mpeg2.paretos import (
    FRONTIER_SPECS,
    M2_POSITIONS,
    build_mpeg2_library,
    frontier,
    m1_selection,
    m2_selection,
    smallest_selection,
)
from repro.mpeg2.topology import (
    CHANNEL_SPECS,
    CONTROL_FIFO_DEPTH,
    MACROBLOCKS,
    PROCESS_NAMES,
    TESTBENCH_SPECS,
    build_mpeg2_system,
    channel_latencies,
)

__all__ = [
    "CHANNEL_SPECS",
    "CONTROL_FIFO_DEPTH",
    "FRONTIER_SPECS",
    "FunctionalRun",
    "M2_POSITIONS",
    "MACROBLOCKS",
    "PROCESS_NAMES",
    "TESTBENCH_SPECS",
    "build_mpeg2_library",
    "build_mpeg2_system",
    "channel_latencies",
    "encode_through_system",
    "frontier",
    "m1_selection",
    "m2_selection",
    "smallest_selection",
]
