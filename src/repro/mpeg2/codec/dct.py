"""8×8 type-II DCT / inverse DCT for the MPEG-2 transform stage.

Uses the orthonormal DCT-II basis as a precomputed 8×8 matrix:
``C = D · X · Dᵀ`` and ``X = Dᵀ · C · D``.  Batched variants operate on
stacks of blocks (``(..., 8, 8)`` arrays), which is how the macroblock
pipeline calls them.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ValidationError

BLOCK = 8


def _dct_matrix() -> np.ndarray:
    d = np.zeros((BLOCK, BLOCK))
    for k in range(BLOCK):
        scale = math.sqrt(1.0 / BLOCK) if k == 0 else math.sqrt(2.0 / BLOCK)
        for n in range(BLOCK):
            d[k, n] = scale * math.cos(math.pi * (2 * n + 1) * k / (2 * BLOCK))
    return d


_D = _dct_matrix()
_DT = _D.T


def dct2(block: np.ndarray) -> np.ndarray:
    """Forward 8×8 DCT (float output) of one block or a stack of blocks."""
    if block.shape[-2:] != (BLOCK, BLOCK):
        raise ValidationError(f"DCT expects (..., 8, 8) blocks, got {block.shape}")
    return _D @ block.astype(np.float64) @ _DT


def idct2(coefficients: np.ndarray) -> np.ndarray:
    """Inverse 8×8 DCT (float output) of one block or a stack of blocks."""
    if coefficients.shape[-2:] != (BLOCK, BLOCK):
        raise ValidationError(
            f"IDCT expects (..., 8, 8) blocks, got {coefficients.shape}"
        )
    return _DT @ coefficients.astype(np.float64) @ _D


def blocks_of_macroblock(luma: np.ndarray) -> np.ndarray:
    """Split a 16×16 luma macroblock into its four 8×8 blocks (stacked in
    raster order: top-left, top-right, bottom-left, bottom-right)."""
    if luma.shape != (16, 16):
        raise ValidationError(f"expected a 16x16 macroblock, got {luma.shape}")
    return np.stack(
        [
            luma[0:8, 0:8],
            luma[0:8, 8:16],
            luma[8:16, 0:8],
            luma[8:16, 8:16],
        ]
    )


def macroblock_of_blocks(blocks: np.ndarray) -> np.ndarray:
    """Inverse of :func:`blocks_of_macroblock`."""
    if blocks.shape != (4, 8, 8):
        raise ValidationError(f"expected (4, 8, 8) blocks, got {blocks.shape}")
    out = np.empty((16, 16), dtype=blocks.dtype)
    out[0:8, 0:8] = blocks[0]
    out[0:8, 8:16] = blocks[1]
    out[8:16, 0:8] = blocks[2]
    out[8:16, 8:16] = blocks[3]
    return out
