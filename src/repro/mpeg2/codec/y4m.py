"""YUV4MPEG2 (.y4m) file I/O.

The standard uncompressed interchange format for raw 4:2:0 video — what
`mpv`, `ffmpeg`, and reference codecs consume.  Lets the case study's
synthetic sequences and reconstructions be dumped to real, playable files
and read back, and gives the test suite an external-format round-trip.

Only the subset the codec needs is implemented: progressive C420 frames
with an arbitrary frame rate.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ValidationError
from repro.mpeg2.codec.frames import Frame, VideoFormat

_MAGIC = b"YUV4MPEG2"


def write_y4m(
    path: str | Path,
    frames: list[Frame],
    fps: tuple[int, int] = (30, 1),
) -> None:
    """Write frames as a YUV4MPEG2 (C420, progressive) file."""
    if not frames:
        raise ValidationError("cannot write an empty sequence")
    fmt = frames[0].format
    num, den = fps
    if num < 1 or den < 1:
        raise ValidationError("frame rate must be positive")
    header = (
        f"YUV4MPEG2 W{fmt.width} H{fmt.height} F{num}:{den} Ip A1:1 C420\n"
    )
    with open(path, "wb") as handle:
        handle.write(header.encode("ascii"))
        for frame in frames:
            if frame.format != fmt:
                raise ValidationError("frame size changes mid-sequence")
            handle.write(b"FRAME\n")
            handle.write(frame.y.tobytes())
            handle.write(frame.cb.tobytes())
            handle.write(frame.cr.tobytes())


def read_y4m(path: str | Path) -> tuple[list[Frame], tuple[int, int]]:
    """Read a YUV4MPEG2 file written by :func:`write_y4m` (or any C420,
    progressive source).  Returns ``(frames, (fps_num, fps_den))``."""
    data = Path(path).read_bytes()
    newline = data.find(b"\n")
    if newline < 0 or not data.startswith(_MAGIC):
        raise ValidationError(f"{path}: not a YUV4MPEG2 file")
    header = data[:newline].decode("ascii", errors="replace")

    width = height = None
    fps = (30, 1)
    for token in header.split()[1:]:
        tag, value = token[0], token[1:]
        if tag == "W":
            width = int(value)
        elif tag == "H":
            height = int(value)
        elif tag == "F":
            num, den = value.split(":")
            fps = (int(num), int(den))
        elif tag == "C" and value not in ("420", "420jpeg", "420mpeg2"):
            raise ValidationError(f"unsupported chroma subsampling C{value}")
    if width is None or height is None:
        raise ValidationError(f"{path}: missing W/H in header")
    fmt = VideoFormat(width=width, height=height)

    luma_bytes = width * height
    chroma_bytes = luma_bytes // 4
    frame_bytes = luma_bytes + 2 * chroma_bytes

    frames: list[Frame] = []
    cursor = newline + 1
    while cursor < len(data):
        frame_newline = data.find(b"\n", cursor)
        if frame_newline < 0 or not data[cursor:frame_newline].startswith(
            b"FRAME"
        ):
            raise ValidationError(f"{path}: malformed FRAME header")
        cursor = frame_newline + 1
        if cursor + frame_bytes > len(data):
            raise ValidationError(f"{path}: truncated frame payload")
        y = np.frombuffer(
            data, dtype=np.uint8, count=luma_bytes, offset=cursor
        ).reshape(height, width)
        cursor += luma_bytes
        cb = np.frombuffer(
            data, dtype=np.uint8, count=chroma_bytes, offset=cursor
        ).reshape(height // 2, width // 2)
        cursor += chroma_bytes
        cr = np.frombuffer(
            data, dtype=np.uint8, count=chroma_bytes, offset=cursor
        ).reshape(height // 2, width // 2)
        cursor += chroma_bytes
        frames.append(Frame(y=y.copy(), cb=cb.copy(), cr=cr.copy()))

    if not frames:
        raise ValidationError(f"{path}: no frames")
    return frames, fps
