"""Quantization / inverse quantization of DCT coefficients.

MPEG-2-style: a perceptual weighting matrix (default intra matrix of the
standard for intra blocks, flat 16 for non-intra) scaled by the
macroblock quantiser scale that rate control adjusts.  Quantization is the
lossy step; inverse quantization reproduces exactly what a decoder
computes, so encoder-side reconstruction matches the decoder bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

#: Default intra quantization matrix of MPEG-2 (ISO/IEC 13818-2, Table 7).
INTRA_MATRIX = np.array(
    [
        [8, 16, 19, 22, 26, 27, 29, 34],
        [16, 16, 22, 24, 27, 29, 34, 37],
        [19, 22, 26, 27, 29, 34, 34, 38],
        [22, 22, 26, 27, 29, 34, 37, 40],
        [22, 26, 27, 29, 32, 35, 40, 48],
        [26, 27, 29, 32, 35, 40, 48, 58],
        [26, 27, 29, 34, 38, 46, 56, 69],
        [27, 29, 35, 38, 46, 56, 69, 83],
    ],
    dtype=np.float64,
)

#: Non-intra (inter residual) matrix: flat 16, per the standard's default.
INTER_MATRIX = np.full((8, 8), 16.0)

MIN_QSCALE = 1
MAX_QSCALE = 31


def _check(coefficients: np.ndarray, qscale: int) -> None:
    if coefficients.shape[-2:] != (8, 8):
        raise ValidationError(
            f"quantizer expects (..., 8, 8) blocks, got {coefficients.shape}"
        )
    if not MIN_QSCALE <= qscale <= MAX_QSCALE:
        raise ValidationError(
            f"qscale {qscale} outside [{MIN_QSCALE}, {MAX_QSCALE}]"
        )


def quantize(
    coefficients: np.ndarray, qscale: int, intra: bool = True
) -> np.ndarray:
    """Quantize float DCT coefficients to integer levels."""
    _check(coefficients, qscale)
    matrix = INTRA_MATRIX if intra else INTER_MATRIX
    step = matrix * (2.0 * qscale) / 16.0
    levels = np.round(coefficients / step).astype(np.int32)
    if intra:
        # The DC term uses a fixed step of 8 (intra_dc_precision = 8 bits).
        levels[..., 0, 0] = np.round(coefficients[..., 0, 0] / 8.0).astype(np.int32)
    return levels


def dequantize(
    levels: np.ndarray, qscale: int, intra: bool = True
) -> np.ndarray:
    """Inverse quantization: integer levels back to float coefficients."""
    _check(levels, qscale)
    matrix = INTRA_MATRIX if intra else INTER_MATRIX
    step = matrix * (2.0 * qscale) / 16.0
    coefficients = levels.astype(np.float64) * step
    if intra:
        coefficients[..., 0, 0] = levels[..., 0, 0].astype(np.float64) * 8.0
    return coefficients
