"""Synthetic video source for the MPEG-2 case study.

The paper's testbench feeds the encoder with image streams at 352×240
(SIF).  Offline we synthesize deterministic video with the properties the
encoder cares about: smooth regions (DCT compaction), edges, and global /
local motion between frames (so P-frames actually exercise motion
estimation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

MB_SIZE = 16
BLOCK_SIZE = 8


@dataclass(frozen=True)
class VideoFormat:
    """Luma geometry of a video stream (4:2:0 chroma is half each axis)."""

    width: int = 352
    height: int = 240

    def __post_init__(self) -> None:
        if self.width % MB_SIZE or self.height % MB_SIZE:
            raise ValidationError(
                f"frame size {self.width}x{self.height} must be a multiple "
                f"of the macroblock size ({MB_SIZE})"
            )

    @property
    def mb_cols(self) -> int:
        return self.width // MB_SIZE

    @property
    def mb_rows(self) -> int:
        return self.height // MB_SIZE

    @property
    def macroblocks(self) -> int:
        return self.mb_cols * self.mb_rows


@dataclass(frozen=True)
class Frame:
    """One 4:2:0 frame: ``y`` at full size, ``cb``/``cr`` at half size.

    Planes are ``uint8`` arrays.
    """

    y: np.ndarray
    cb: np.ndarray
    cr: np.ndarray

    def __post_init__(self) -> None:
        h, w = self.y.shape
        for name, plane in (("cb", self.cb), ("cr", self.cr)):
            if plane.shape != (h // 2, w // 2):
                raise ValidationError(
                    f"{name} plane shape {plane.shape} does not match 4:2:0 "
                    f"for luma {self.y.shape}"
                )

    @property
    def format(self) -> VideoFormat:
        return VideoFormat(width=self.y.shape[1], height=self.y.shape[0])


def synthetic_sequence(
    n_frames: int,
    fmt: VideoFormat | None = None,
    seed: int = 0,
) -> list[Frame]:
    """Generate a deterministic moving-pattern sequence.

    The content is a smooth gradient background, a bright square moving
    diagonally, and a dim textured bar moving horizontally — enough to make
    I-frames compressible and P-frames benefit from motion compensation.
    """
    fmt = fmt or VideoFormat()
    rng = np.random.default_rng(seed)
    texture = rng.integers(0, 24, size=(fmt.height, fmt.width), dtype=np.int32)

    yy, xx = np.mgrid[0 : fmt.height, 0 : fmt.width]
    background = (32 + 80 * xx / fmt.width + 40 * yy / fmt.height).astype(np.int32)

    frames = []
    for t in range(n_frames):
        y = background.copy()
        # Moving bright square.
        size = 48
        x0 = (20 + 6 * t) % max(1, fmt.width - size)
        y0 = (16 + 4 * t) % max(1, fmt.height - size)
        y[y0 : y0 + size, x0 : x0 + size] += 120
        # Moving textured bar.
        bar_h = 24
        by = (fmt.height // 2 + 2 * t) % max(1, fmt.height - bar_h)
        y[by : by + bar_h, :] += texture[by : by + bar_h, :]
        y = np.clip(y, 0, 255).astype(np.uint8)

        # Chroma: slowly varying color field shifted by time.
        cyy, cxx = np.mgrid[0 : fmt.height // 2, 0 : fmt.width // 2]
        cb = (128 + 30 * np.sin((cxx + 3 * t) / 24.0)).astype(np.uint8)
        cr = (128 + 30 * np.cos((cyy + 2 * t) / 20.0)).astype(np.uint8)
        frames.append(Frame(y=y, cb=cb, cr=cr))
    return frames


def macroblock(frame: Frame, mb_row: int, mb_col: int) -> dict[str, np.ndarray]:
    """Extract one macroblock: 16×16 luma + two 8×8 chroma blocks."""
    y0, x0 = mb_row * MB_SIZE, mb_col * MB_SIZE
    c0, cx0 = mb_row * BLOCK_SIZE, mb_col * BLOCK_SIZE
    return {
        "y": frame.y[y0 : y0 + MB_SIZE, x0 : x0 + MB_SIZE],
        "cb": frame.cb[c0 : c0 + BLOCK_SIZE, cx0 : cx0 + BLOCK_SIZE],
        "cr": frame.cr[c0 : c0 + BLOCK_SIZE, cx0 : cx0 + BLOCK_SIZE],
    }


def gray_frame(fmt: VideoFormat) -> Frame:
    """A flat mid-grey frame (the bootstrap reference before any
    reconstruction exists — e.g. an initialized frame store)."""
    return Frame(
        y=np.full((fmt.height, fmt.width), 128, dtype=np.uint8),
        cb=np.full((fmt.height // 2, fmt.width // 2), 128, dtype=np.uint8),
        cr=np.full((fmt.height // 2, fmt.width // 2), 128, dtype=np.uint8),
    )


def psnr(reference: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB between two uint8 planes."""
    if reference.shape != reconstructed.shape:
        raise ValidationError("PSNR operands must have identical shapes")
    diff = reference.astype(np.float64) - reconstructed.astype(np.float64)
    mse = float(np.mean(diff * diff))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0 * 255.0 / mse)
