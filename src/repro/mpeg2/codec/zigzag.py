"""Zig-zag scan and run/level coding of quantized blocks.

The scan reorders an 8×8 block into the order of increasing spatial
frequency so trailing zeros cluster; run/level coding then emits
``(zero-run, level)`` pairs terminated by an end-of-block marker.  Both
directions are implemented and are exact inverses (property-tested).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


def _zigzag_order() -> np.ndarray:
    """The classic 8×8 zig-zag index order as an array of 64 flat indices."""
    order = []
    for s in range(15):  # anti-diagonals
        diag = [(i, s - i) for i in range(8) if 0 <= s - i < 8]
        if s % 2 == 0:
            diag.reverse()  # up-right on even diagonals
        order.extend(diag)
    return np.array([r * 8 + c for r, c in order], dtype=np.int64)


ZIGZAG = _zigzag_order()
INVERSE_ZIGZAG = np.argsort(ZIGZAG)


def scan(block: np.ndarray) -> np.ndarray:
    """8×8 block -> length-64 vector in zig-zag order."""
    if block.shape != (8, 8):
        raise ValidationError(f"scan expects an 8x8 block, got {block.shape}")
    return block.reshape(64)[ZIGZAG]


def unscan(vector: np.ndarray) -> np.ndarray:
    """Length-64 zig-zag vector -> 8×8 block."""
    if vector.shape != (64,):
        raise ValidationError(f"unscan expects 64 values, got {vector.shape}")
    return vector[INVERSE_ZIGZAG].reshape(8, 8)


def run_level_encode(vector: np.ndarray) -> list[tuple[int, int]]:
    """Encode a zig-zag vector as ``(run, level)`` pairs.

    ``run`` counts the zeros preceding each non-zero ``level``; trailing
    zeros are absorbed by the implicit end-of-block.
    """
    if vector.shape != (64,):
        raise ValidationError(f"expected 64 values, got {vector.shape}")
    pairs = []
    run = 0
    for value in vector.tolist():
        if value == 0:
            run += 1
        else:
            pairs.append((run, int(value)))
            run = 0
    return pairs


def run_level_decode(pairs: list[tuple[int, int]]) -> np.ndarray:
    """Inverse of :func:`run_level_encode`."""
    vector = np.zeros(64, dtype=np.int32)
    position = 0
    for run, level in pairs:
        if level == 0:
            raise ValidationError("run/level pair with zero level")
        position += run
        if position >= 64:
            raise ValidationError("run/level stream overruns the block")
        vector[position] = level
        position += 1
    return vector
