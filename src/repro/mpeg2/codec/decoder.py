"""Decoder for the reproduction's bitstream format.

Exactly inverts :mod:`repro.mpeg2.codec.encoder`: the decoded frames must
be bit-identical to the encoder's in-loop reconstruction (the standard
closed-loop property of hybrid video coders), which the test suite
verifies on whole sequences.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.mpeg2.codec.bitstream import BitReader
from repro.mpeg2.codec.dct import idct2, macroblock_of_blocks
from repro.mpeg2.codec.frames import Frame, VideoFormat, gray_frame
from repro.mpeg2.codec.motion import (
    MotionVector,
    predict_chroma,
    predict_chroma_halfpel,
    predict_macroblock,
    predict_macroblock_halfpel,
)
from repro.mpeg2.codec.quant import dequantize
from repro.mpeg2.codec.vlc import decode_block, decode_motion_vector, read_ue
from repro.mpeg2.codec.zigzag import run_level_decode, unscan


class Decoder:
    """Decodes a bitstream produced by :class:`~.encoder.Encoder`.

    ``reference_delay`` must match the encoder's setting.
    """

    def __init__(self, fmt: VideoFormat, reference_delay: int = 1):
        if reference_delay < 1:
            raise ValidationError("reference_delay must be >= 1")
        self.fmt = fmt
        self.reference_delay = reference_delay

    def decode_sequence(self, bitstream: bytes, n_frames: int) -> list[Frame]:
        """Decode ``n_frames`` frames from the bitstream."""
        reader = BitReader(bitstream)
        frames: list[Frame] = []
        for expected in range(n_frames):
            if expected >= self.reference_delay:
                reference = frames[expected - self.reference_delay]
            else:
                reference = gray_frame(self.fmt)
            frame = self._decode_frame(reader, reference, expected)
            frames.append(frame)
            reader.align()
        return frames

    # ------------------------------------------------------------------

    def _decode_frame(
        self, reader: BitReader, reference: Frame, expected_index: int
    ) -> Frame:
        index = read_ue(reader)
        if index != expected_index:
            raise ValidationError(
                f"frame header index {index} does not match expected "
                f"{expected_index}"
            )
        intra = read_ue(reader) == 1
        qscale = read_ue(reader)
        half_pel = read_ue(reader) == 1

        rec_y = np.zeros((self.fmt.height, self.fmt.width), dtype=np.int32)
        rec_cb = np.zeros((self.fmt.height // 2, self.fmt.width // 2), dtype=np.int32)
        rec_cr = np.zeros_like(rec_cb)

        for mb_row in range(self.fmt.mb_rows):
            prev_mv = MotionVector(0, 0)
            for mb_col in range(self.fmt.mb_cols):
                prev_mv = self._decode_macroblock(
                    reader,
                    reference,
                    mb_row,
                    mb_col,
                    intra,
                    qscale,
                    half_pel,
                    prev_mv,
                    (rec_y, rec_cb, rec_cr),
                )

        return Frame(
            y=np.clip(rec_y, 0, 255).astype(np.uint8),
            cb=np.clip(rec_cb, 0, 255).astype(np.uint8),
            cr=np.clip(rec_cr, 0, 255).astype(np.uint8),
        )

    def _decode_macroblock(
        self,
        reader: BitReader,
        reference: Frame,
        mb_row: int,
        mb_col: int,
        intra: bool,
        qscale: int,
        half_pel: bool,
        prev_mv: MotionVector,
        planes: tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> MotionVector:
        rec_y, rec_cb, rec_cr = planes
        y0, x0 = mb_row * 16, mb_col * 16
        c0, cx0 = mb_row * 8, mb_col * 8

        if intra:
            mv = MotionVector(0, 0)
            pred_y = np.full((16, 16), 128, dtype=np.int32)
            pred_cb = np.full((8, 8), 128, dtype=np.int32)
            pred_cr = np.full((8, 8), 128, dtype=np.int32)
        else:
            ddx, ddy = decode_motion_vector(reader)
            mv = MotionVector(prev_mv.dx + ddx, prev_mv.dy + ddy)
            if half_pel:
                pred_y = predict_macroblock_halfpel(
                    reference.y, mb_row, mb_col, mv
                ).astype(np.int32)
                pred_cb = predict_chroma_halfpel(
                    reference.cb, mb_row, mb_col, mv
                ).astype(np.int32)
                pred_cr = predict_chroma_halfpel(
                    reference.cr, mb_row, mb_col, mv
                ).astype(np.int32)
            else:
                pred_y = predict_macroblock(
                    reference.y, mb_row, mb_col, mv
                ).astype(np.int32)
                pred_cb = predict_chroma(
                    reference.cb, mb_row, mb_col, mv
                ).astype(np.int32)
                pred_cr = predict_chroma(
                    reference.cr, mb_row, mb_col, mv
                ).astype(np.int32)

        luma_blocks = np.stack(
            [self._decode_block(reader, qscale, intra) for _ in range(4)]
        )
        rec_y[y0 : y0 + 16, x0 : x0 + 16] = np.clip(
            macroblock_of_blocks(luma_blocks) + pred_y, 0, 255
        )
        for pred_c, rec_plane in ((pred_cb, rec_cb), (pred_cr, rec_cr)):
            block = self._decode_block(reader, qscale, intra)
            rec_plane[c0 : c0 + 8, cx0 : cx0 + 8] = np.clip(
                block + pred_c, 0, 255
            )
        return mv

    @staticmethod
    def _decode_block(reader: BitReader, qscale: int, intra: bool) -> np.ndarray:
        pairs = decode_block(reader)
        levels = unscan(run_level_decode(pairs))
        return np.round(idct2(dequantize(levels, qscale, intra=intra))).astype(
            np.int32
        )
