"""The reference MPEG-2-style encoder pipeline (functional model).

This is the *behavioural* specification of the case study: a GOP-based
I/P encoder over 4:2:0 frames — motion estimation and compensation, 8×8
DCT, matrix quantization with a rate-controlled quantiser scale, zig-zag
run/level scanning, and Exp-Golomb entropy coding — plus the in-loop
reconstruction that produces the reference frames.

The 26-process system of :mod:`repro.mpeg2.topology` partitions exactly
this computation; :mod:`repro.mpeg2.functional` runs it through the
discrete-event simulator's blocking channels and the test suite checks the
distributed execution is bit-identical to this reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.mpeg2.codec.bitstream import BitWriter
from repro.mpeg2.codec.dct import blocks_of_macroblock, dct2, idct2, macroblock_of_blocks
from repro.mpeg2.codec.frames import Frame, VideoFormat, gray_frame
from repro.mpeg2.codec.motion import (
    MotionVector,
    full_search_fast,
    halfpel_refine,
    predict_chroma,
    predict_chroma_halfpel,
    predict_macroblock,
    predict_macroblock_halfpel,
    two_stage_search,
)
from repro.mpeg2.codec.quant import MAX_QSCALE, MIN_QSCALE, dequantize, quantize
from repro.mpeg2.codec.vlc import (
    encode_block,
    encode_motion_vector,
    write_ue,
)
from repro.mpeg2.codec.zigzag import run_level_encode, scan


@dataclass(frozen=True)
class EncoderConfig:
    """Encoder parameters.

    Attributes:
        gop_size: An I frame every ``gop_size`` frames (the rest are P).
        qscale: Initial quantiser scale.
        search_range: Motion-search window radius in pels.
        target_bits_per_frame: When set, a simple proportional rate
            controller nudges the quantiser scale each frame to hold the
            bit budget (the case study's rate-control feedback loop).
        reference_delay: How many frames old the reference is.  ``1`` is
            the classic closed loop; ``2`` models a double-buffered frame
            store (the pipelined hardware of the case study, where frame
            ``k`` predicts from the reconstruction of frame ``k−2``).
            Frames younger than the delay predict from a flat mid-grey
            frame.
        me_mode: ``"full"`` — exhaustive search (one stage); ``"two_stage"``
            — coarse grid search plus local refinement, the decomposition
            the case study's me_coarse/me_refine process pair implements.
        me_step: Grid step of the coarse stage (two-stage mode).
        refine_range: Radius of the refinement stage (two-stage mode).
        half_pel: Refine the integer vector to half-pel precision (MPEG-2
            style bilinear interpolation); motion vectors are then coded
            in half-pel units, and the bitstream self-describes via a
            header flag.
    """

    gop_size: int = 8
    qscale: int = 8
    search_range: int = 8
    target_bits_per_frame: int | None = None
    reference_delay: int = 1
    me_mode: str = "full"
    me_step: int = 2
    refine_range: int = 1
    half_pel: bool = False

    def __post_init__(self) -> None:
        if self.gop_size < 1:
            raise ValidationError("gop_size must be >= 1")
        if not MIN_QSCALE <= self.qscale <= MAX_QSCALE:
            raise ValidationError(f"qscale {self.qscale} out of range")
        if self.search_range < 0:
            raise ValidationError("search_range must be >= 0")
        if self.reference_delay < 1:
            raise ValidationError("reference_delay must be >= 1")
        if self.me_mode not in ("full", "two_stage"):
            raise ValidationError(f"unknown me_mode {self.me_mode!r}")
        if self.me_step < 1:
            raise ValidationError("me_step must be >= 1")
        if self.refine_range < 0:
            raise ValidationError("refine_range must be >= 0")

    def search(self, current, reference, mb_row: int, mb_col: int):
        """Run the configured motion search; returns ``(mv, cost)``.

        With ``half_pel`` the returned vector is in half-pel units.
        """
        if self.me_mode == "two_stage":
            mv, cost = two_stage_search(
                current, reference, mb_row, mb_col,
                search_range=self.search_range,
                step=self.me_step,
                refine_range=self.refine_range,
            )
        else:
            mv, cost = full_search_fast(
                current, reference, mb_row, mb_col, self.search_range
            )
        if self.half_pel:
            return halfpel_refine(current, reference, mb_row, mb_col, mv)
        return mv, cost

    def predict(self, reference_frame, mb_row: int, mb_col: int, mv):
        """Luma/chroma predictors for a vector from :meth:`search`."""
        if self.half_pel:
            return (
                predict_macroblock_halfpel(
                    reference_frame.y, mb_row, mb_col, mv
                ),
                predict_chroma_halfpel(
                    reference_frame.cb, mb_row, mb_col, mv
                ),
                predict_chroma_halfpel(
                    reference_frame.cr, mb_row, mb_col, mv
                ),
            )
        return (
            predict_macroblock(reference_frame.y, mb_row, mb_col, mv),
            predict_chroma(reference_frame.cb, mb_row, mb_col, mv),
            predict_chroma(reference_frame.cr, mb_row, mb_col, mv),
        )


@dataclass
class FrameStats:
    """Per-frame encoding statistics."""

    index: int
    intra: bool
    qscale: int
    bits: int
    motion_vectors: list[MotionVector] = field(default_factory=list)


@dataclass
class EncodedVideo:
    """Encoder output: the bitstream plus reconstruction and statistics."""

    bitstream: bytes
    stats: list[FrameStats]
    reconstructed: list[Frame]

    @property
    def total_bits(self) -> int:
        return sum(s.bits for s in self.stats)


def _reconstruct_block(levels: np.ndarray, qscale: int, intra: bool) -> np.ndarray:
    """Decoder-exact reconstruction of one residual/pixel block (int32)."""
    return np.round(idct2(dequantize(levels, qscale, intra=intra))).astype(np.int32)


def _code_plane_blocks(
    writer: BitWriter,
    blocks: np.ndarray,
    qscale: int,
    intra: bool,
) -> np.ndarray:
    """DCT→quantize→scan→VLC a stack of blocks; return quantized levels."""
    coefficients = dct2(blocks.astype(np.float64))
    levels = quantize(coefficients, qscale, intra=intra)
    for block_levels in levels:
        encode_block(writer, run_level_encode(scan(block_levels)))
    return levels


class Encoder:
    """The reference encoder.  Stateless between sequences."""

    def __init__(self, config: EncoderConfig | None = None):
        self.config = config or EncoderConfig()

    # ------------------------------------------------------------------

    def encode_sequence(self, frames: list[Frame]) -> EncodedVideo:
        """Encode frames into one bitstream, I/P per the GOP structure."""
        if not frames:
            raise ValidationError("cannot encode an empty sequence")
        fmt = frames[0].format
        writer = BitWriter()
        stats: list[FrameStats] = []
        reconstructed: list[Frame] = []
        qscale = self.config.qscale
        delay = self.config.reference_delay

        for index, frame in enumerate(frames):
            if frame.format != fmt:
                raise ValidationError("frame size changes mid-sequence")
            intra = index % self.config.gop_size == 0
            if index >= delay:
                reference = reconstructed[index - delay]
            else:
                reference = gray_frame(fmt)
            bits_before = writer.bit_length
            frame_stats = FrameStats(
                index=index, intra=intra, qscale=qscale, bits=0
            )
            recon = self._encode_frame(
                writer, frame, reference, fmt, intra, qscale, frame_stats
            )
            writer.align()
            frame_stats.bits = writer.bit_length - bits_before
            stats.append(frame_stats)
            reconstructed.append(recon)
            qscale = self._rate_control(qscale, frame_stats.bits)

        return EncodedVideo(
            bitstream=writer.getvalue(), stats=stats, reconstructed=reconstructed
        )

    # ------------------------------------------------------------------

    def _rate_control(self, qscale: int, bits: int) -> int:
        """Proportional rate control: one qscale step per frame at most."""
        target = self.config.target_bits_per_frame
        if target is None:
            return qscale
        if bits > target:
            return min(MAX_QSCALE, qscale + 1)
        if bits < 0.8 * target:
            return max(MIN_QSCALE, qscale - 1)
        return qscale

    def _encode_frame(
        self,
        writer: BitWriter,
        frame: Frame,
        reference: Frame,
        fmt: VideoFormat,
        intra: bool,
        qscale: int,
        stats: FrameStats,
    ) -> Frame:
        # Frame header: index, picture type, quantiser scale, MV precision.
        write_ue(writer, stats.index)
        write_ue(writer, 1 if intra else 0)
        write_ue(writer, qscale)
        write_ue(writer, 1 if self.config.half_pel else 0)

        rec_y = np.zeros_like(frame.y, dtype=np.int32)
        rec_cb = np.zeros_like(frame.cb, dtype=np.int32)
        rec_cr = np.zeros_like(frame.cr, dtype=np.int32)
        prev_mv = MotionVector(0, 0)

        for mb_row in range(fmt.mb_rows):
            prev_mv = MotionVector(0, 0)  # predictor resets per MB row
            for mb_col in range(fmt.mb_cols):
                prev_mv = self._encode_macroblock(
                    writer,
                    frame,
                    reference,
                    mb_row,
                    mb_col,
                    intra,
                    qscale,
                    prev_mv,
                    (rec_y, rec_cb, rec_cr),
                    stats,
                )

        return Frame(
            y=np.clip(rec_y, 0, 255).astype(np.uint8),
            cb=np.clip(rec_cb, 0, 255).astype(np.uint8),
            cr=np.clip(rec_cr, 0, 255).astype(np.uint8),
        )

    def _encode_macroblock(
        self,
        writer: BitWriter,
        frame: Frame,
        reference: Frame,
        mb_row: int,
        mb_col: int,
        intra: bool,
        qscale: int,
        prev_mv: MotionVector,
        recon_planes: tuple[np.ndarray, np.ndarray, np.ndarray],
        stats: FrameStats,
    ) -> MotionVector:
        rec_y, rec_cb, rec_cr = recon_planes
        y0, x0 = mb_row * 16, mb_col * 16
        c0, cx0 = mb_row * 8, mb_col * 8
        cur_y = frame.y[y0 : y0 + 16, x0 : x0 + 16]
        cur_cb = frame.cb[c0 : c0 + 8, cx0 : cx0 + 8]
        cur_cr = frame.cr[c0 : c0 + 8, cx0 : cx0 + 8]

        if intra:
            mv = MotionVector(0, 0)
            pred_y = np.full((16, 16), 128, dtype=np.int32)
            pred_cb = np.full((8, 8), 128, dtype=np.int32)
            pred_cr = np.full((8, 8), 128, dtype=np.int32)
        else:
            mv, __ = self.config.search(cur_y, reference.y, mb_row, mb_col)
            encode_motion_vector(
                writer, mv.dx - prev_mv.dx, mv.dy - prev_mv.dy
            )
            stats.motion_vectors.append(mv)
            pred_y, pred_cb, pred_cr = (
                plane.astype(np.int32)
                for plane in self.config.predict(reference, mb_row, mb_col, mv)
            )

        # Luma: four 8x8 residual blocks.
        res_y = blocks_of_macroblock(cur_y.astype(np.int32) - pred_y)
        levels_y = _code_plane_blocks(writer, res_y, qscale, intra)
        rec_res_y = _reconstruct_block(levels_y, qscale, intra)
        rec_y[y0 : y0 + 16, x0 : x0 + 16] = np.clip(
            macroblock_of_blocks(rec_res_y) + pred_y, 0, 255
        )

        # Chroma: one block each.
        for cur_c, pred_c, rec_plane in (
            (cur_cb, pred_cb, rec_cb),
            (cur_cr, pred_cr, rec_cr),
        ):
            res_c = (cur_c.astype(np.int32) - pred_c)[np.newaxis, :, :]
            levels_c = _code_plane_blocks(writer, res_c, qscale, intra)
            rec_res_c = _reconstruct_block(levels_c, qscale, intra)[0]
            rec_plane[c0 : c0 + 8, cx0 : cx0 + 8] = np.clip(
                rec_res_c + pred_c, 0, 255
            )

        return mv
