"""Block-matching motion estimation and compensation.

Full-search SAD matching over a configurable window (the paper's encoder
devotes its heaviest process, coarse motion estimation, to exactly this),
integer-pel only — a faithful functional stand-in for the case study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

MB = 16


@dataclass(frozen=True)
class MotionVector:
    """Integer-pel displacement of a macroblock predictor."""

    dx: int
    dy: int

    def __iter__(self):
        return iter((self.dx, self.dy))


def sad(a: np.ndarray, b: np.ndarray) -> int:
    """Sum of absolute differences between two equal-shape uint8 blocks."""
    return int(np.abs(a.astype(np.int32) - b.astype(np.int32)).sum())


def full_search(
    current: np.ndarray,
    reference: np.ndarray,
    mb_row: int,
    mb_col: int,
    search_range: int = 8,
) -> tuple[MotionVector, int]:
    """Exhaustive search for the best predictor of one macroblock.

    Args:
        current: 16×16 macroblock pixels of the frame being coded.
        reference: The full reference luma plane.
        mb_row/mb_col: Macroblock coordinates (16-pel units).
        search_range: Maximum |displacement| per axis.

    Returns:
        ``(motion vector, SAD at that vector)``.  Ties favour the smaller
        displacement, then raster order, so results are deterministic.
    """
    if current.shape != (MB, MB):
        raise ValidationError(f"expected a 16x16 macroblock, got {current.shape}")
    height, width = reference.shape
    base_y, base_x = mb_row * MB, mb_col * MB

    best = MotionVector(0, 0)
    zero_patch = reference[base_y : base_y + MB, base_x : base_x + MB]
    best_cost = sad(current, zero_patch)
    best_rank = (0, 0, 0)

    for dy in range(-search_range, search_range + 1):
        y = base_y + dy
        if y < 0 or y + MB > height:
            continue
        for dx in range(-search_range, search_range + 1):
            x = base_x + dx
            if x < 0 or x + MB > width:
                continue
            cost = sad(current, reference[y : y + MB, x : x + MB])
            rank = (abs(dx) + abs(dy), dy, dx)
            if cost < best_cost or (cost == best_cost and rank < best_rank):
                best = MotionVector(dx, dy)
                best_cost = cost
                best_rank = rank
    return best, best_cost


def full_search_fast(
    current: np.ndarray,
    reference: np.ndarray,
    mb_row: int,
    mb_col: int,
    search_range: int = 8,
) -> tuple[MotionVector, int]:
    """Vectorized :func:`full_search` (identical results, ~20x faster).

    Evaluates every candidate displacement in one batched numpy reduction
    over a sliding-window view of the reference; the tie-break (smallest
    |dx|+|dy|, then raster order) replicates the scalar implementation
    exactly, which the test suite asserts property-wise.
    """
    if current.shape != (MB, MB):
        raise ValidationError(f"expected a 16x16 macroblock, got {current.shape}")
    height, width = reference.shape
    base_y, base_x = mb_row * MB, mb_col * MB

    y_lo = max(0, base_y - search_range)
    y_hi = min(height - MB, base_y + search_range)
    x_lo = max(0, base_x - search_range)
    x_hi = min(width - MB, base_x + search_range)

    windows = np.lib.stride_tricks.sliding_window_view(
        reference[y_lo : y_hi + MB, x_lo : x_hi + MB], (MB, MB)
    )
    costs = (
        np.abs(windows.astype(np.int32) - current.astype(np.int32))
        .sum(axis=(2, 3))
    )

    dys = np.arange(y_lo - base_y, y_hi - base_y + 1)
    dxs = np.arange(x_lo - base_x, x_hi - base_x + 1)
    # Scalar tie-break: cost, then (|dx|+|dy|, dy, dx); the zero vector is
    # evaluated first in the scalar code but participates with rank
    # (0, 0, 0), so the lexicographic key reproduces it.
    manhattan = np.abs(dys)[:, None] + np.abs(dxs)[None, :]
    order = np.lexsort(
        (
            np.broadcast_to(dxs[None, :], costs.shape).ravel(),
            np.broadcast_to(dys[:, None], costs.shape).ravel(),
            manhattan.ravel(),
            costs.ravel(),
        )
    )
    flat = order[0]
    dy = int(dys[flat // costs.shape[1]])
    dx = int(dxs[flat % costs.shape[1]])
    return MotionVector(dx, dy), int(costs.ravel()[flat])


def coarse_search(
    current: np.ndarray,
    reference: np.ndarray,
    mb_row: int,
    mb_col: int,
    search_range: int = 8,
    step: int = 2,
) -> tuple[MotionVector, int]:
    """Stage 1 of two-stage estimation: search a subsampled displacement
    grid (every ``step``-th position, zero vector always included)."""
    if current.shape != (MB, MB):
        raise ValidationError(f"expected a 16x16 macroblock, got {current.shape}")
    if step < 1:
        raise ValidationError("step must be >= 1")
    height, width = reference.shape
    base_y, base_x = mb_row * MB, mb_col * MB

    best = MotionVector(0, 0)
    best_cost = sad(
        current, reference[base_y : base_y + MB, base_x : base_x + MB]
    )
    best_rank = (0, 0, 0)
    for dy in range(-search_range, search_range + 1, step):
        y = base_y + dy
        if y < 0 or y + MB > height:
            continue
        for dx in range(-search_range, search_range + 1, step):
            x = base_x + dx
            if x < 0 or x + MB > width:
                continue
            cost = sad(current, reference[y : y + MB, x : x + MB])
            rank = (abs(dx) + abs(dy), dy, dx)
            if cost < best_cost or (cost == best_cost and rank < best_rank):
                best = MotionVector(dx, dy)
                best_cost = cost
                best_rank = rank
    return best, best_cost


def refine_search(
    current: np.ndarray,
    reference: np.ndarray,
    mb_row: int,
    mb_col: int,
    around: MotionVector,
    refine_range: int = 1,
) -> tuple[MotionVector, int]:
    """Stage 2: exhaustive ±``refine_range`` search around a coarse vector.

    The candidate set always contains ``around`` itself, so refinement
    never degrades the coarse result.
    """
    if current.shape != (MB, MB):
        raise ValidationError(f"expected a 16x16 macroblock, got {current.shape}")
    height, width = reference.shape
    base_y, base_x = mb_row * MB, mb_col * MB

    best = around
    y0 = base_y + around.dy
    x0 = base_x + around.dx
    y0 = min(max(y0, 0), height - MB)
    x0 = min(max(x0, 0), width - MB)
    best_cost = sad(current, reference[y0 : y0 + MB, x0 : x0 + MB])
    best_rank = (abs(around.dx) + abs(around.dy), around.dy, around.dx)
    for ddy in range(-refine_range, refine_range + 1):
        for ddx in range(-refine_range, refine_range + 1):
            dy, dx = around.dy + ddy, around.dx + ddx
            y, x = base_y + dy, base_x + dx
            if y < 0 or y + MB > height or x < 0 or x + MB > width:
                continue
            cost = sad(current, reference[y : y + MB, x : x + MB])
            rank = (abs(dx) + abs(dy), dy, dx)
            if cost < best_cost or (cost == best_cost and rank < best_rank):
                best = MotionVector(dx, dy)
                best_cost = cost
                best_rank = rank
    return best, best_cost


def two_stage_search(
    current: np.ndarray,
    reference: np.ndarray,
    mb_row: int,
    mb_col: int,
    search_range: int = 8,
    step: int = 2,
    refine_range: int = 1,
) -> tuple[MotionVector, int]:
    """Coarse grid search followed by local refinement.

    This is the decomposition the case study's ``me_coarse``/``me_refine``
    process pair implements; it evaluates ``O((R/step)² + refine²)``
    candidates instead of ``O(R²)`` at a small quality cost.
    """
    coarse, __ = coarse_search(
        current, reference, mb_row, mb_col, search_range, step
    )
    return refine_search(
        current, reference, mb_row, mb_col, coarse, refine_range
    )


def interpolate_block(
    reference: np.ndarray,
    y2: int,
    x2: int,
    size: int,
) -> np.ndarray:
    """A ``size×size`` block at half-pel position ``(y2/2, x2/2)``.

    MPEG-style bilinear interpolation with round-half-up:
    ``(a + b + 1) >> 1`` for one fractional axis and
    ``(a + b + c + d + 2) >> 2`` for both.  Coordinates are clamped so the
    sampled window stays inside the plane (encoder and decoder clamp
    identically, keeping the loop closed).
    """
    height, width = reference.shape
    y2 = min(max(y2, 0), 2 * (height - size))
    x2 = min(max(x2, 0), 2 * (width - size))
    y, x = y2 // 2, x2 // 2
    frac_y, frac_x = y2 & 1, x2 & 1

    base = reference[y : y + size + 1, x : x + size + 1].astype(np.int32)
    a = base[:size, :size]
    if not frac_y and not frac_x:
        return a.astype(np.uint8)
    if frac_y and not frac_x:
        b = base[1 : size + 1, :size]
        return ((a + b + 1) >> 1).astype(np.uint8)
    if frac_x and not frac_y:
        b = base[:size, 1 : size + 1]
        return ((a + b + 1) >> 1).astype(np.uint8)
    b = base[:size, 1 : size + 1]
    c = base[1 : size + 1, :size]
    d = base[1 : size + 1, 1 : size + 1]
    return ((a + b + c + d + 2) >> 2).astype(np.uint8)


def halfpel_refine(
    current: np.ndarray,
    reference: np.ndarray,
    mb_row: int,
    mb_col: int,
    integer_mv: MotionVector,
) -> tuple[MotionVector, int]:
    """Half-pel refinement around an integer-pel vector.

    Returns a vector in **half-pel units** (the integer vector doubled
    plus a ±1 fractional offset per axis) and its SAD.  The integer
    position itself is a candidate, so refinement never degrades.
    """
    if current.shape != (MB, MB):
        raise ValidationError(f"expected a 16x16 macroblock, got {current.shape}")
    base_y2 = 2 * (mb_row * MB + integer_mv.dy)
    base_x2 = 2 * (mb_col * MB + integer_mv.dx)

    best = MotionVector(2 * integer_mv.dx, 2 * integer_mv.dy)
    best_cost = sad(
        current, interpolate_block(reference, base_y2, base_x2, MB)
    )
    best_rank = (abs(best.dx) + abs(best.dy), best.dy, best.dx)
    for ddy2 in (-1, 0, 1):
        for ddx2 in (-1, 0, 1):
            if ddy2 == 0 and ddx2 == 0:
                continue
            patch = interpolate_block(
                reference, base_y2 + ddy2, base_x2 + ddx2, MB
            )
            cost = sad(current, patch)
            dx2 = 2 * integer_mv.dx + ddx2
            dy2 = 2 * integer_mv.dy + ddy2
            rank = (abs(dx2) + abs(dy2), dy2, dx2)
            if cost < best_cost or (cost == best_cost and rank < best_rank):
                best = MotionVector(dx2, dy2)
                best_cost = cost
                best_rank = rank
    return best, best_cost


def predict_macroblock_halfpel(
    reference: np.ndarray, mb_row: int, mb_col: int, mv2: MotionVector
) -> np.ndarray:
    """The 16×16 predictor for a vector in half-pel units."""
    return interpolate_block(
        reference, 2 * mb_row * MB + mv2.dy, 2 * mb_col * MB + mv2.dx, MB
    )


def _half_toward_zero(value: int) -> int:
    """``value / 2`` truncated toward zero (MPEG chroma vector scaling)."""
    return value // 2 if value >= 0 else -((-value) // 2)


def predict_chroma_halfpel(
    reference: np.ndarray, mb_row: int, mb_col: int, mv2: MotionVector
) -> np.ndarray:
    """The 8×8 chroma predictor for a half-pel luma vector.

    4:2:0 halves the displacement: the chroma offset in *chroma half-pel
    units* is the luma half-pel vector divided by two, truncated toward
    zero (the standard's chroma vector scaling).
    """
    return interpolate_block(
        reference,
        2 * mb_row * 8 + _half_toward_zero(mv2.dy),
        2 * mb_col * 8 + _half_toward_zero(mv2.dx),
        8,
    )


def predict_macroblock(
    reference: np.ndarray, mb_row: int, mb_col: int, mv: MotionVector
) -> np.ndarray:
    """The 16×16 predictor addressed by a motion vector (clamped to the
    plane so decoder and encoder agree at frame borders)."""
    height, width = reference.shape
    y = min(max(mb_row * MB + mv.dy, 0), height - MB)
    x = min(max(mb_col * MB + mv.dx, 0), width - MB)
    return reference[y : y + MB, x : x + MB]


def predict_chroma(
    reference: np.ndarray, mb_row: int, mb_col: int, mv: MotionVector
) -> np.ndarray:
    """Chroma predictor: the luma vector halved (4:2:0), 8×8 block."""
    height, width = reference.shape
    y = min(max(mb_row * 8 + mv.dy // 2, 0), height - 8)
    x = min(max(mb_col * 8 + mv.dx // 2, 0), width - 8)
    return reference[y : y + 8, x : x + 8]
