"""Variable-length (entropy) coding of run/level pairs and motion vectors.

Real MPEG-2 uses fixed Huffman tables; this reproduction uses Exp-Golomb
codes instead — universal variable-length codes with the same qualitative
behaviour (short codes for common small symbols) and a trivially exact
decoder, so bitstream round-trips can be property-tested without shipping
the standard's tables.  The encoding is:

* ``ue(v)``: Exp-Golomb for unsigned integers (runs, sizes);
* ``se(v)``: signed mapping ``0, 1, -1, 2, -2, …`` (levels, motion vector
  differences);
* a block is the sequence ``ue(run) se(level)`` per pair, terminated by
  ``ue(ESCAPE_RUN)`` as end-of-block (64 can never be a real run).
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.mpeg2.codec.bitstream import BitReader, BitWriter

#: End-of-block marker: a run value no real pair can produce.
EOB_RUN = 64


def write_ue(writer: BitWriter, value: int) -> None:
    """Unsigned Exp-Golomb: ``value + 1`` written as N zeros + N+1 bits."""
    if value < 0:
        raise ValidationError(f"ue() needs a non-negative value, got {value}")
    shifted = value + 1
    width = shifted.bit_length()
    writer.write_bits(0, width - 1)
    writer.write_bits(shifted, width)


def read_ue(reader: BitReader) -> int:
    zeros = 0
    while reader.read_bit() == 0:
        zeros += 1
        if zeros > 63:
            raise ValidationError("malformed Exp-Golomb code (leading zeros)")
    value = 1
    for _ in range(zeros):
        value = (value << 1) | reader.read_bit()
    return value - 1


def write_se(writer: BitWriter, value: int) -> None:
    """Signed Exp-Golomb: 0→0, 1→1, -1→2, 2→3, -2→4, ..."""
    mapped = 2 * value - 1 if value > 0 else -2 * value
    write_ue(writer, mapped)


def read_se(reader: BitReader) -> int:
    mapped = read_ue(reader)
    if mapped % 2:
        return (mapped + 1) // 2
    return -(mapped // 2)


def encode_block(writer: BitWriter, pairs: list[tuple[int, int]]) -> None:
    """Entropy-code one block's run/level pairs with an end-of-block."""
    for run, level in pairs:
        if not 0 <= run < EOB_RUN:
            raise ValidationError(f"run {run} out of range")
        if level == 0:
            raise ValidationError("zero level in run/level stream")
        write_ue(writer, run)
        write_se(writer, level)
    write_ue(writer, EOB_RUN)


def decode_block(reader: BitReader) -> list[tuple[int, int]]:
    """Inverse of :func:`encode_block`."""
    pairs = []
    total = 0
    while True:
        run = read_ue(reader)
        if run == EOB_RUN:
            return pairs
        level = read_se(reader)
        if level == 0:
            raise ValidationError("decoded zero level")
        total += run + 1
        if total > 64:
            raise ValidationError("decoded block overruns 64 coefficients")
        pairs.append((run, level))


def encode_motion_vector(writer: BitWriter, dx: int, dy: int) -> None:
    """Entropy-code one motion-vector difference."""
    write_se(writer, dx)
    write_se(writer, dy)


def decode_motion_vector(reader: BitReader) -> tuple[int, int]:
    return read_se(reader), read_se(reader)
