"""Bit-level writer/reader for the entropy-coded stream.

MSB-first bit packing with byte alignment support — the substrate under
:mod:`repro.mpeg2.codec.vlc`.  Writer and reader are exact inverses.
"""

from __future__ import annotations

from repro.errors import ValidationError


class BitWriter:
    """Accumulates bits MSB-first into a byte string."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._accumulator = 0
        self._pending = 0  # bits in the accumulator

    def write_bit(self, bit: int) -> None:
        if bit not in (0, 1):
            raise ValidationError(f"bit must be 0 or 1, got {bit}")
        self._accumulator = (self._accumulator << 1) | bit
        self._pending += 1
        if self._pending == 8:
            self._bytes.append(self._accumulator)
            self._accumulator = 0
            self._pending = 0

    def write_bits(self, value: int, width: int) -> None:
        """Write ``value`` in ``width`` bits, MSB first."""
        if width < 0:
            raise ValidationError("width must be >= 0")
        if value < 0 or (width < 64 and value >= (1 << width)):
            raise ValidationError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def align(self) -> None:
        """Pad with zero bits to the next byte boundary."""
        while self._pending:
            self.write_bit(0)

    @property
    def bit_length(self) -> int:
        return 8 * len(self._bytes) + self._pending

    def getbits(self) -> str:
        """The exact bits written so far as a '0'/'1' string (no padding).

        Used by the distributed encoder to pass bit chunks between
        processes before the packer concatenates and byte-aligns them.
        """
        bits = "".join(format(b, "08b") for b in self._bytes)
        if self._pending:
            bits += format(self._accumulator, f"0{self._pending}b")
        return bits

    def getvalue(self) -> bytes:
        """The byte string written so far (flushes alignment padding)."""
        self.align()
        return bytes(self._bytes)


class BitReader:
    """Reads bits MSB-first from a byte string."""

    def __init__(self, data: bytes):
        self._data = data
        self._position = 0  # bit cursor

    def read_bit(self) -> int:
        if self._position >= 8 * len(self._data):
            raise ValidationError("bitstream exhausted")
        byte = self._data[self._position // 8]
        bit = (byte >> (7 - self._position % 8)) & 1
        self._position += 1
        return bit

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def align(self) -> None:
        remainder = self._position % 8
        if remainder:
            self._position += 8 - remainder

    @property
    def bits_consumed(self) -> int:
        return self._position

    def exhausted(self) -> bool:
        """True when fewer than 8 unread bits remain (alignment slack)."""
        return 8 * len(self._data) - self._position < 8
