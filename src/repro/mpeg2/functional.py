"""Running the real encoder through the 26-process blocking-channel system.

This module binds one functional behaviour to each process of
:mod:`repro.mpeg2.topology` so the discrete-event simulator executes the
*actual* MPEG-2-style encoding (motion estimation, DCT, quantization,
entropy coding, in-loop reconstruction, rate control) over the blocking
rendezvous channels — the reproduction's equivalent of simulating the
refactored SystemC design.

The distributed execution is **bit-exact** with the monolithic reference
(:class:`repro.mpeg2.codec.encoder.Encoder` at ``reference_delay=2`` — the
double-buffered frame store implies frame ``k`` predicts from the
reconstruction of frame ``k−2``).  The test suite verifies the produced
bitstream byte-for-byte and decodes it back.

One simulator iteration corresponds to one frame; payloads carry
whole-frame batches of the per-macroblock data (vectors, blocks, bit
chunks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.core.system import ChannelOrdering
from repro.errors import SimulationError
from repro.mpeg2.codec.bitstream import BitWriter
from repro.mpeg2.codec.dct import (
    blocks_of_macroblock,
    dct2,
    idct2,
    macroblock_of_blocks,
)
from repro.mpeg2.codec.encoder import EncoderConfig
from repro.mpeg2.codec.frames import Frame, VideoFormat, gray_frame
from repro.mpeg2.codec.motion import (
    MotionVector,
    coarse_search,
    full_search_fast,
    halfpel_refine,
    predict_chroma,
    predict_chroma_halfpel,
    predict_macroblock,
    predict_macroblock_halfpel,
    refine_search,
)
from repro.mpeg2.codec.quant import MAX_QSCALE, MIN_QSCALE, dequantize, quantize
from repro.mpeg2.codec.vlc import (
    encode_block,
    encode_motion_vector,
    write_ue,
)
from repro.mpeg2.codec.zigzag import run_level_encode, scan
from repro.mpeg2.topology import build_mpeg2_system
from repro.sim.engine import SimulationResult, Simulator


@dataclass
class FunctionalRun:
    """Result of a distributed encoding run."""

    bitstream: bytes
    simulation: SimulationResult

    @property
    def frame_bits(self) -> list[int]:
        return [len(chunk) for chunk in self.simulation.sink_payloads["Psnk"]]


def encode_through_system(
    frames: list[Frame],
    config: EncoderConfig | None = None,
    ordering: ChannelOrdering | None = None,
) -> FunctionalRun:
    """Encode a sequence by simulating the 26-process system.

    Args:
        frames: Input frames (all the same format).
        config: Encoder parameters; ``reference_delay`` is forced to 2 to
            match the double-buffered frame store of the topology.
        ordering: Channel ordering to simulate under (default declaration
            order).  The ordering affects timing, never the bitstream.
    """
    if not frames:
        raise SimulationError("cannot encode an empty sequence")
    config = config or EncoderConfig()
    fmt = frames[0].format
    gray = gray_frame(fmt)

    behaviors = _build_behaviors(frames, fmt, config)
    initial_payloads = {
        "ref_win_coarse": (gray.y, gray.y),
        "ref_win_refine": (gray.y, gray.y),
        "ref_mb": (gray.y, gray.y),
        "ref_mb_chroma": ((gray.cb, gray.cr), (gray.cb, gray.cr)),
    }
    simulator = Simulator(
        build_mpeg2_system(),
        ordering=ordering,
        behaviors=behaviors,
        initial_payloads=initial_payloads,
    )
    result = simulator.run(iterations=len(frames), watch="Psnk")
    bits = "".join(result.sink_payloads["Psnk"])
    return FunctionalRun(bitstream=_bits_to_bytes(bits), simulation=result)


def _bits_to_bytes(bits: str) -> bytes:
    if len(bits) % 8:
        raise SimulationError("packer output is not byte aligned")
    return bytes(int(bits[i : i + 8], 2) for i in range(0, len(bits), 8))


# ---------------------------------------------------------------------------
# Behaviours (one per process; signature: (iteration, inputs) -> outputs)
# ---------------------------------------------------------------------------

def _build_behaviors(
    frames: list[Frame], fmt: VideoFormat, config: EncoderConfig
) -> dict[str, Any]:
    mb_rows, mb_cols = fmt.mb_rows, fmt.mb_cols
    n_mbs = fmt.macroblocks

    def source(k: int, _inputs: Mapping[str, Any]) -> dict[str, Any]:
        # Cyclic testbench: the source may legitimately run one iteration
        # ahead of the measured window before its put blocks.
        return {"vin": frames[k % len(frames)]}

    def frame_reader(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        frame = inputs["vin"]
        meta = {"index": k, "mb_rows": mb_rows, "mb_cols": mb_cols}
        return {"cur_mb": frame, "frame_meta": meta, "frame_budget": None}

    def gop_control(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        meta = dict(inputs["frame_meta"])
        meta["intra"] = meta["index"] % config.gop_size == 0
        return {
            name: meta
            for name in (
                "pic_type_me",
                "pic_type_hdr",
                "pic_type_res",
                "pic_type_rc",
                "pic_type_mv",
                "pic_type_mc",
                "pic_type_vlc",
                "pic_type_mux",
            )
        }

    def mb_dispatch(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        frame = inputs["cur_mb"]
        return {
            "mb_luma_me": frame.y,
            "mb_luma_refine": frame.y,
            "mb_luma_cur": frame.y,
            "mb_chroma_cur": (frame.cb, frame.cr),
            "mb_position": list(range(n_mbs)),
            "mb_addr": list(range(n_mbs)),
        }

    def me_coarse(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        intra = inputs["pic_type_me"]["intra"]
        current = inputs["mb_luma_me"]
        reference = inputs["ref_win_coarse"]
        vectors = []
        if intra:
            vectors = [MotionVector(0, 0)] * n_mbs
        else:
            for row in range(mb_rows):
                for col in range(mb_cols):
                    cur = current[row * 16 : row * 16 + 16,
                                  col * 16 : col * 16 + 16]
                    if config.me_mode == "two_stage":
                        mv, __ = coarse_search(
                            cur, reference, row, col,
                            config.search_range, config.me_step,
                        )
                    else:
                        mv, __ = full_search_fast(
                            cur, reference, row, col, config.search_range
                        )
                    vectors.append(mv)
        return {"mv_coarse": {"vectors": vectors, "intra": intra},
                "activity": None}

    def me_refine(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        payload = inputs["mv_coarse"]
        vectors = payload["vectors"]
        if payload["intra"] or (
            config.me_mode != "two_stage" and not config.half_pel
        ):
            # Intra frames carry zero vectors (no search in the reference
            # encoder either); single-stage integer configurations pass
            # through.  The process still synchronizes on its reference
            # window and macroblocks, which is what matters for timing.
            return {"mv_raw": vectors, "me_cost": None}
        current = inputs["mb_luma_refine"]
        reference = inputs["ref_win_refine"]
        refined = []
        index = 0
        for row in range(mb_rows):
            for col in range(mb_cols):
                cur = current[row * 16 : row * 16 + 16,
                              col * 16 : col * 16 + 16]
                mv = vectors[index]
                if config.me_mode == "two_stage":
                    mv, __ = refine_search(
                        cur, reference, row, col, mv, config.refine_range
                    )
                if config.half_pel:
                    mv, __ = halfpel_refine(cur, reference, row, col, mv)
                refined.append(mv)
                index += 1
        return {"mv_raw": refined, "me_cost": None}

    def mv_predict(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        intra = inputs["pic_type_mv"]["intra"]
        vectors = inputs["mv_raw"]
        diffs: list[tuple[int, int]] = []
        if not intra:
            index = 0
            for row in range(mb_rows):
                prev = MotionVector(0, 0)
                for col in range(mb_cols):
                    mv = vectors[index]
                    diffs.append((mv.dx - prev.dx, mv.dy - prev.dy))
                    prev = mv
                    index += 1
        return {"mv_final_mc": vectors, "mv_diff": diffs, "mb_mode": None}

    def motion_comp(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        intra = inputs["pic_type_mc"]["intra"]
        vectors = inputs["mv_final_mc"]
        ref_y = inputs["ref_mb"]
        ref_cb, ref_cr = inputs["ref_mb_chroma"]
        pred_y = np.full((fmt.height, fmt.width), 128, dtype=np.int32)
        pred_cb = np.full((fmt.height // 2, fmt.width // 2), 128, dtype=np.int32)
        pred_cr = np.full_like(pred_cb, 128)
        if not intra:
            index = 0
            for row in range(mb_rows):
                for col in range(mb_cols):
                    mv = vectors[index]
                    y0, x0 = row * 16, col * 16
                    c0, cx0 = row * 8, col * 8
                    if config.half_pel:
                        pred_y[y0 : y0 + 16, x0 : x0 + 16] = (
                            predict_macroblock_halfpel(ref_y, row, col, mv)
                        )
                        pred_cb[c0 : c0 + 8, cx0 : cx0 + 8] = (
                            predict_chroma_halfpel(ref_cb, row, col, mv)
                        )
                        pred_cr[c0 : c0 + 8, cx0 : cx0 + 8] = (
                            predict_chroma_halfpel(ref_cr, row, col, mv)
                        )
                    else:
                        pred_y[y0 : y0 + 16, x0 : x0 + 16] = (
                            predict_macroblock(ref_y, row, col, mv)
                        )
                        pred_cb[c0 : c0 + 8, cx0 : cx0 + 8] = (
                            predict_chroma(ref_cb, row, col, mv)
                        )
                        pred_cr[c0 : c0 + 8, cx0 : cx0 + 8] = (
                            predict_chroma(ref_cr, row, col, mv)
                        )
                    index += 1
        prediction = {"y": pred_y, "cb": pred_cb, "cr": pred_cr}
        return {"pred_mb": prediction, "pred_mb_rec": prediction}

    def residual(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        intra = inputs["pic_type_res"]["intra"]
        cur_y = inputs["mb_luma_cur"]
        cur_cb, cur_cr = inputs["mb_chroma_cur"]
        pred = inputs["pred_mb"]
        res_y = cur_y.astype(np.int32) - pred["y"]
        res_cb = cur_cb.astype(np.int32) - pred["cb"]
        res_cr = cur_cr.astype(np.int32) - pred["cr"]
        luma_blocks = np.stack(
            [
                blocks_of_macroblock(
                    res_y[row * 16 : row * 16 + 16, col * 16 : col * 16 + 16]
                )
                for row in range(mb_rows)
                for col in range(mb_cols)
            ]
        )
        cb_blocks = np.stack(
            [
                res_cb[row * 8 : row * 8 + 8, col * 8 : col * 8 + 8]
                for row in range(mb_rows)
                for col in range(mb_cols)
            ]
        )
        cr_blocks = np.stack(
            [
                res_cr[row * 8 : row * 8 + 8, col * 8 : col * 8 + 8]
                for row in range(mb_rows)
                for col in range(mb_cols)
            ]
        )
        return {
            "res_luma": {"blocks": luma_blocks, "intra": intra},
            "res_chroma": {"cb": cb_blocks, "cr": cr_blocks, "intra": intra},
            "mb_energy": None,
        }

    def dct_luma(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        payload = inputs["res_luma"]
        return {
            "coef_luma": {
                "coefficients": dct2(payload["blocks"].astype(np.float64)),
                "intra": payload["intra"],
            }
        }

    def dct_chroma(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        payload = inputs["res_chroma"]
        return {
            "coef_chroma": {
                "cb": dct2(payload["cb"].astype(np.float64)),
                "cr": dct2(payload["cr"].astype(np.float64)),
                "intra": payload["intra"],
            }
        }

    # Rate control carries the quantiser-scale state across frames,
    # replicating Encoder._rate_control against the bit count fed back
    # from the packer (one frame behind, thanks to the pre-loaded token).
    qscale_state = {"qscale": config.qscale}

    def rate_control(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        bits = inputs["bit_count"]
        target = config.target_bits_per_frame
        if bits is not None and target is not None:
            if bits > target:
                qscale_state["qscale"] = min(
                    MAX_QSCALE, qscale_state["qscale"] + 1
                )
            elif bits < 0.8 * target:
                qscale_state["qscale"] = max(
                    MIN_QSCALE, qscale_state["qscale"] - 1
                )
        qscale = qscale_state["qscale"]
        return {
            "qscale_l": qscale,
            "qscale_c": qscale,
            "qscale_il": qscale,
            "qscale_ic": qscale,
            "qscale_hdr": qscale,
        }

    def quant_luma(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        payload = inputs["coef_luma"]
        qscale = inputs["qscale_l"]
        levels = quantize(payload["coefficients"], qscale, intra=payload["intra"])
        out = {"levels": levels, "intra": payload["intra"], "qscale": qscale}
        return {"q_luma": out, "q_luma_rec": out, "q_stats_l": None}

    def quant_chroma(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        payload = inputs["coef_chroma"]
        qscale = inputs["qscale_c"]
        out = {
            "cb": quantize(payload["cb"], qscale, intra=payload["intra"]),
            "cr": quantize(payload["cr"], qscale, intra=payload["intra"]),
            "intra": payload["intra"],
            "qscale": qscale,
        }
        return {"q_chroma": out, "q_chroma_rec": out, "q_stats_c": None}

    def zigzag_luma(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        payload = inputs["q_luma"]
        pairs = [
            [run_level_encode(scan(block)) for block in mb_blocks]
            for mb_blocks in payload["levels"]
        ]
        return {"rl_luma": {"pairs": pairs, "intra": payload["intra"]}}

    def zigzag_chroma(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        payload = inputs["q_chroma"]
        return {
            "rl_chroma": {
                "cb": [run_level_encode(scan(b)) for b in payload["cb"]],
                "cr": [run_level_encode(scan(b)) for b in payload["cr"]],
                "intra": payload["intra"],
            }
        }

    def vlc_coeff(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        luma = inputs["rl_luma"]["pairs"]
        cb = inputs["rl_chroma"]["cb"]
        cr = inputs["rl_chroma"]["cr"]
        chunks = []
        for mb in range(n_mbs):
            writer = BitWriter()
            for block_pairs in luma[mb]:
                encode_block(writer, block_pairs)
            encode_block(writer, cb[mb])
            encode_block(writer, cr[mb])
            chunks.append(writer.getbits())
        return {"bits_coeff": chunks}

    def vlc_mv(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        diffs = inputs["mv_diff"]
        chunks = []
        for ddx, ddy in diffs:
            writer = BitWriter()
            encode_motion_vector(writer, ddx, ddy)
            chunks.append(writer.getbits())
        return {"bits_mv": chunks}  # empty list for I frames

    def header_gen(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        meta = inputs["pic_type_hdr"]
        qscale = inputs["qscale_hdr"]
        writer = BitWriter()
        write_ue(writer, meta["index"])
        write_ue(writer, 1 if meta["intra"] else 0)
        write_ue(writer, qscale)
        write_ue(writer, 1 if config.half_pel else 0)
        return {
            "bits_hdr": writer.getbits(),
            "cbp": None,
            "align_ctrl": None,
        }

    def bitstream_mux(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        intra = inputs["pic_type_mux"]["intra"]
        header = inputs["bits_hdr"]
        coeff = inputs["bits_coeff"]
        mv = inputs["bits_mv"]
        pieces = [header]
        for mb in range(n_mbs):
            if not intra:
                pieces.append(mv[mb])
            pieces.append(coeff[mb])
        return {"bits_all": "".join(pieces)}

    def bit_packer(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        bits = inputs["bits_all"]
        if len(bits) % 8:
            bits += "0" * (8 - len(bits) % 8)
        return {"vout": bits, "bit_count": len(bits)}

    def iquant_luma(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        payload = inputs["q_luma_rec"]
        qscale = inputs["qscale_il"]
        coefficients = dequantize(
            payload["levels"], qscale, intra=payload["intra"]
        )
        return {"rq_luma": coefficients}

    def iquant_chroma(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        payload = inputs["q_chroma_rec"]
        qscale = inputs["qscale_ic"]
        return {
            "rq_chroma": {
                "cb": dequantize(payload["cb"], qscale, intra=payload["intra"]),
                "cr": dequantize(payload["cr"], qscale, intra=payload["intra"]),
            }
        }

    def idct_luma(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "rec_luma": np.round(idct2(inputs["rq_luma"])).astype(np.int32)
        }

    def idct_chroma(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        payload = inputs["rq_chroma"]
        return {
            "rec_chroma": {
                "cb": np.round(idct2(payload["cb"])).astype(np.int32),
                "cr": np.round(idct2(payload["cr"])).astype(np.int32),
            }
        }

    def reconstruct(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        res_luma = inputs["rec_luma"]  # (n_mbs, 4, 8, 8)
        res_chroma = inputs["rec_chroma"]
        pred = inputs["pred_mb_rec"]
        rec_y = np.zeros((fmt.height, fmt.width), dtype=np.int32)
        rec_cb = np.zeros((fmt.height // 2, fmt.width // 2), dtype=np.int32)
        rec_cr = np.zeros_like(rec_cb)
        index = 0
        for row in range(mb_rows):
            for col in range(mb_cols):
                y0, x0 = row * 16, col * 16
                c0, cx0 = row * 8, col * 8
                rec_y[y0 : y0 + 16, x0 : x0 + 16] = np.clip(
                    macroblock_of_blocks(res_luma[index])
                    + pred["y"][y0 : y0 + 16, x0 : x0 + 16],
                    0,
                    255,
                )
                rec_cb[c0 : c0 + 8, cx0 : cx0 + 8] = np.clip(
                    res_chroma["cb"][index]
                    + pred["cb"][c0 : c0 + 8, cx0 : cx0 + 8],
                    0,
                    255,
                )
                rec_cr[c0 : c0 + 8, cx0 : cx0 + 8] = np.clip(
                    res_chroma["cr"][index]
                    + pred["cr"][c0 : c0 + 8, cx0 : cx0 + 8],
                    0,
                    255,
                )
                index += 1
        frame = Frame(
            y=np.clip(rec_y, 0, 255).astype(np.uint8),
            cb=np.clip(rec_cb, 0, 255).astype(np.uint8),
            cr=np.clip(rec_cr, 0, 255).astype(np.uint8),
        )
        return {"rec_mb": frame}

    def frame_store(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        frame = inputs["rec_mb"]
        return {
            "ref_win_coarse": frame.y,
            "ref_win_refine": frame.y,
            "ref_mb": frame.y,
            "ref_mb_chroma": (frame.cb, frame.cr),
        }

    def sink(k: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
        return {}

    return {
        "Psrc": source,
        "frame_reader": frame_reader,
        "gop_control": gop_control,
        "mb_dispatch": mb_dispatch,
        "me_coarse": me_coarse,
        "me_refine": me_refine,
        "mv_predict": mv_predict,
        "motion_comp": motion_comp,
        "residual": residual,
        "dct_luma": dct_luma,
        "dct_chroma": dct_chroma,
        "rate_control": rate_control,
        "quant_luma": quant_luma,
        "quant_chroma": quant_chroma,
        "zigzag_luma": zigzag_luma,
        "zigzag_chroma": zigzag_chroma,
        "vlc_coeff": vlc_coeff,
        "vlc_mv": vlc_mv,
        "header_gen": header_gen,
        "bitstream_mux": bitstream_mux,
        "bit_packer": bit_packer,
        "iquant_luma": iquant_luma,
        "iquant_chroma": iquant_chroma,
        "idct_luma": idct_luma,
        "idct_chroma": idct_chroma,
        "reconstruct": reconstruct,
        "frame_store": frame_store,
        "Psnk": sink,
    }
