"""Pareto-optimal implementation sets for the MPEG-2 case study.

Table 1 reports 171 Pareto points over the 26 processes, derived by the
compositional HLS pre-characterization of Liu & Carloni.  Without the
commercial flow we generate frontiers parametrically: per process, a
point count, a slowest-implementation latency, a latency spread (how much
the fastest point gains), a smallest-implementation area, and an area
spread, swept along a smooth convex trade-off curve

    ``latency_k = slowest / spread^(k/(n-1))``
    ``area_k    = smallest · area_spread^((k/(n-1))^γ)``

with ``γ > 1`` so speed gets progressively more expensive — the standard
shape of unroll/pipeline frontiers.  Counts sum to exactly 171.

Calibration targets (paper anchors):

* ``M1`` (fastest implementation everywhere): CT ≈ 1,906 KCycles, area
  ≈ 2.267 mm²;
* ``M2`` (smallest implementation everywhere): CT ≈ 3,597 KCycles, area
  ≈ 1.562 mm².

Areas are in µm² (1 mm² = 1e6 µm²).  Latencies are cycles per frame.
"""

from __future__ import annotations

from repro.hls.implementation import Implementation
from repro.hls.pareto import ImplementationLibrary, ParetoSet

#: Per-process frontier parameters:
#: name -> (points, slowest latency, latency spread, smallest area µm²,
#:          area spread)
#:
#: The latency calibration balances three structures so the paper's M1/M2
#: dynamics emerge (see DESIGN.md):
#:
#: * the **rate-control loop** (rate_control → quant → zigzag → vlc → mux
#:   → packer → rate_control, one pre-loaded token) sums to ≈1,906 KCycles
#:   under the fastest implementations — the binding cycle of M1 under a
#:   conservative ordering;
#: * **me_coarse's own serial cycle** (compute + its channel transfers)
#:   sits ≈5% lower — the floor ERMES's reordering exposes (the 5%
#:   experiment);
#: * the **frame-store loop** (2 pre-loaded tokens: double-buffered
#:   reference memory) divided by its tokens stays just below the
#:   rate-control loop for M1 and defines M2's ≈3,597 KCycles together
#:   with the slowest rate-loop sum.
FRONTIER_SPECS: dict[str, tuple[int, int, float, float, float]] = {
    "me_coarse": (12, 3_474_000, 1.93, 158_000, 2.2),
    "me_refine": (10, 456_000, 1.90, 73_000, 2.2),
    "dct_luma": (10, 560_000, 2.00, 92_000, 2.2),
    "dct_chroma": (8, 290_000, 2.00, 41_000, 2.2),
    "idct_luma": (10, 481_000, 1.85, 89_000, 2.2),
    "idct_chroma": (8, 250_000, 1.85, 40_000, 2.2),
    "vlc_coeff": (10, 1_691_000, 1.90, 75_000, 2.2),
    "quant_luma": (8, 570_000, 1.90, 38_000, 2.2),
    "quant_chroma": (6, 285_000, 1.90, 20_000, 2.2),
    "iquant_luma": (7, 323_000, 1.90, 33_000, 2.2),
    "iquant_chroma": (6, 171_000, 1.90, 17_000, 2.2),
    "motion_comp": (8, 342_000, 1.90, 53_000, 2.2),
    "zigzag_luma": (6, 475_000, 1.90, 24_000, 2.2),
    "zigzag_chroma": (5, 247_000, 1.90, 13_000, 2.2),
    "residual": (6, 180_000, 1.80, 26_000, 2.2),
    "reconstruct": (6, 180_000, 1.80, 28_000, 2.2),
    "frame_store": (6, 192_000, 1.60, 63_000, 2.2),
    "frame_reader": (5, 416_000, 1.60, 36_000, 2.2),
    "mb_dispatch": (5, 155_000, 1.60, 25_000, 2.2),
    "bitstream_mux": (5, 306_000, 1.70, 18_000, 2.2),
    "bit_packer": (5, 204_000, 1.70, 16_000, 2.2),
    "rate_control": (5, 104_000, 1.60, 16_000, 2.2),
    "header_gen": (4, 83_000, 1.50, 12_000, 2.2),
    "mv_predict": (4, 45_000, 1.50, 9_000, 2.2),
    "vlc_mv": (3, 73_000, 1.45, 9_000, 2.2),
    "gop_control": (3, 21_000, 1.40, 7_000, 2.2),
}

#: Convexity of area growth along the frontier.
AREA_GAMMA = 1.6


def frontier(
    process: str,
    points: int,
    slowest_latency: int,
    latency_spread: float,
    smallest_area: float,
    area_spread: float,
    gamma: float = AREA_GAMMA,
) -> ParetoSet:
    """Generate one smooth convex Pareto frontier (see module docstring).

    Point 0 is the smallest/slowest implementation, point ``n-1`` the
    fastest/largest — mirroring how aggressive HLS knobs trade area for
    latency.
    """
    implementations = []
    for k in range(points):
        t = k / (points - 1) if points > 1 else 0.0
        latency = max(1, round(slowest_latency / (latency_spread**t)))
        area = smallest_area * (area_spread ** (t**gamma))
        implementations.append(
            Implementation(
                name=f"{process}.p{k}",
                latency=latency,
                area=round(area, 1),
                knobs={"frontier_position": k},
            )
        )
    return ParetoSet.from_points(process, implementations, filter_dominated=True)


def build_mpeg2_library() -> ImplementationLibrary:
    """The 171-point implementation library of Table 1."""
    return ImplementationLibrary(
        frontier(name, *spec) for name, spec in FRONTIER_SPECS.items()
    )


def m1_selection(library: ImplementationLibrary) -> dict[str, str]:
    """M1: "the fastest implementations for the computational part of each
    process" (best performance)."""
    return {p: library.of(p).fastest.name for p in library.processes()}


#: Frontier position of each process in the M2 configuration (index into
#: the Pareto set; 0 = slowest/smallest).  M2 is a Pareto-optimal *system*
#: implementation that trades performance for area: the dominant area hogs
#: (the motion-estimation front end) sit at their smallest points while the
#: mid-weight processes keep moderately fast implementations.  Positions
#: are calibrated so M2's totals land on the paper's anchors
#: (CT ≈ 3,597 KCycles, area ≈ 1.562 mm²).
M2_POSITIONS: dict[str, int] = {
    "me_coarse": 0,
    "me_refine": 6,
    "dct_luma": 7,
    "dct_chroma": 5,
    "idct_luma": 7,
    "idct_chroma": 5,
    "vlc_coeff": 7,
    "quant_luma": 5,
    "quant_chroma": 4,
    "iquant_luma": 4,
    "iquant_chroma": 4,
    "motion_comp": 5,
    "zigzag_luma": 4,
    "zigzag_chroma": 3,
    "residual": 4,
    "reconstruct": 4,
    "frame_store": 3,
    "frame_reader": 3,
    "mb_dispatch": 0,
    "bitstream_mux": 3,
    "bit_packer": 3,
    "rate_control": 3,
    "header_gen": 2,
    "mv_predict": 2,
    "vlc_mv": 1,
    "gop_control": 1,
}


def m2_selection(library: ImplementationLibrary) -> dict[str, str]:
    """M2: a Pareto-optimal system point trading performance for area.

    ``M2_POSITIONS`` count from the *slowest/smallest* end of each
    frontier; ``ParetoSet.points`` is sorted fastest-first, hence the
    index flip.
    """
    selection = {}
    for p in library.processes():
        points = library.of(p).points
        selection[p] = points[len(points) - 1 - M2_POSITIONS[p]].name
    return selection


def smallest_selection(library: ImplementationLibrary) -> dict[str, str]:
    """The all-smallest configuration (the area floor of the library)."""
    return {p: library.of(p).smallest.name for p in library.processes()}
