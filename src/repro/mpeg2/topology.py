"""The MPEG-2 Encoder system topology (Table 1: 26 processes, 60 channels).

The paper's case study is an MPEG-2 encoder refactored into 26 loosely-
timed TLM processes over 60 blocking channels, plus two testbench
processes.  The original SystemC source is not public; this module
reconstructs a system-level block diagram with the same structural
characteristics the paper calls out:

* **reconvergent paths** — luma and chroma coding paths that fork at the
  macroblock dispatcher and rejoin at the entropy coder; header, motion
  and coefficient streams rejoining at the bitstream multiplexer;
* **feedback loops** — the reconstruction loop through the frame store
  (reference frames for motion estimation/compensation) and the rate-
  control loop (bit counts steering the quantiser scale).  Feedback
  channels carry one pre-loaded token (initialized reference memory /
  initial quantiser), which is what makes them live under the blocking
  protocol.

One system iteration corresponds to one *frame*.  Channel latencies come
from per-frame data volumes at 352×240 4:2:0 through the channel's
physical width (:mod:`repro.hls.characterize`); they span [1, 5280]
cycles with the maximum on the raw-video input, matching the paper's
reported range.  Process latencies are placeholders at build time — the
real values come from the Pareto library (:mod:`repro.mpeg2.paretos`).
"""

from __future__ import annotations

from repro.core.system import SystemGraph
from repro.dsl.design import Design
from repro.dsl.wire import Wire
from repro.hls.characterize import (
    FRAME_HEIGHT,
    FRAME_WIDTH,
    ChannelPhysics,
    transfer_latency,
)

# Frame geometry (Table 1: 352x240 pixels).
LUMA = 352 * 240  # 84,480
CHROMA = LUMA // 4  # 21,120 per plane
FRAME = LUMA + 2 * CHROMA  # 126,720
MACROBLOCKS = (352 // 16) * (240 // 16)  # 330

#: The 26 worker processes (build-time latencies are placeholders; the
#: Pareto library supplies the real per-implementation values).
PROCESS_NAMES = (
    "frame_reader",
    "mb_dispatch",
    "gop_control",
    "me_coarse",
    "me_refine",
    "mv_predict",
    "motion_comp",
    "residual",
    "dct_luma",
    "dct_chroma",
    "quant_luma",
    "quant_chroma",
    "rate_control",
    "zigzag_luma",
    "zigzag_chroma",
    "vlc_coeff",
    "vlc_mv",
    "header_gen",
    "bitstream_mux",
    "bit_packer",
    "iquant_luma",
    "iquant_chroma",
    "idct_luma",
    "idct_chroma",
    "reconstruct",
    "frame_store",
)

_NARROW = ChannelPhysics(elements_per_cycle=16)  # control/scalar channels
_WIDE = ChannelPhysics(elements_per_cycle=32)  # pixel/coefficient streams
_REF = ChannelPhysics(elements_per_cycle=64)  # reference-memory ports
_VIN = ChannelPhysics(elements_per_cycle=24)  # raw video input port

#: FIFO depth of the narrow control channels.  Scalar side-band tokens
#: (picture types, quantiser scales, addresses) cross many pipeline stages;
#: leaving them as pure rendezvous would couple the head and the tail of
#: the datapath and cap the pipeline depth at the fan-out process — real
#: interface libraries ship these as small FIFOs.  The heavy pixel and
#: coefficient streams stay blocking rendezvous, which is where the
#: paper's ordering problem lives.
CONTROL_FIFO_DEPTH = 4

#: Worker-to-worker channels:
#: name -> (producer, consumer, per-frame elements, physics, initial tokens)
CHANNEL_SPECS: dict[str, tuple[str, str, int, ChannelPhysics, int]] = {
    # Frame input and dispatch.
    "cur_mb": ("frame_reader", "mb_dispatch", FRAME, _WIDE, 0),
    "frame_meta": ("frame_reader", "gop_control", 4, _NARROW, 0),
    "frame_budget": ("frame_reader", "rate_control", 4, _NARROW, 0),
    "mb_luma_me": ("mb_dispatch", "me_coarse", LUMA, _WIDE, 0),
    "mb_luma_cur": ("mb_dispatch", "residual", LUMA, _WIDE, 0),
    "mb_chroma_cur": ("mb_dispatch", "residual", 2 * CHROMA, _WIDE, 0),
    "mb_position": ("mb_dispatch", "vlc_coeff", MACROBLOCKS, _NARROW, 0),
    "mb_addr": ("mb_dispatch", "header_gen", MACROBLOCKS, _NARROW, 0),
    # GOP control fan-out (picture type per macroblock).
    "pic_type_me": ("gop_control", "me_coarse", MACROBLOCKS, _NARROW, 0),
    "pic_type_hdr": ("gop_control", "header_gen", MACROBLOCKS, _NARROW, 0),
    "pic_type_res": ("gop_control", "residual", MACROBLOCKS, _NARROW, 0),
    "pic_type_rc": ("gop_control", "rate_control", MACROBLOCKS, _NARROW, 0),
    "pic_type_mv": ("gop_control", "mv_predict", MACROBLOCKS, _NARROW, 0),
    "pic_type_mc": ("gop_control", "motion_comp", MACROBLOCKS, _NARROW, 0),
    "pic_type_vlc": ("gop_control", "vlc_coeff", MACROBLOCKS, _NARROW, 0),
    "pic_type_mux": ("gop_control", "bitstream_mux", MACROBLOCKS, _NARROW, 0),
    # Motion estimation pipeline.  Reference reads are feedback channels;
    # the frame store is double-buffered (two pre-loaded reference frames),
    # the standard design that lets frame N+1's front-end overlap frame
    # N's reconstruction tail.
    #
    # NOTE the declaration order of me_refine's inputs — coarse vector
    # first, then the reference window, then the current macroblock — is
    # the natural authoring order ("refine around the coarse result") but
    # serializes mb_dispatch behind me_coarse's full search: exactly the
    # kind of accidental serialization the paper's Section 6 reports ERMES
    # finding in M1 and removing by reordering (the 5% experiment).
    "ref_win_coarse": ("frame_store", "me_coarse", 2 * LUMA, _REF, 2),
    "mv_coarse": ("me_coarse", "me_refine", 2 * MACROBLOCKS, _NARROW, 0),
    "ref_win_refine": ("frame_store", "me_refine", LUMA, _REF, 2),
    "mb_luma_refine": ("mb_dispatch", "me_refine", LUMA, _WIDE, 0),
    "activity": ("me_coarse", "rate_control", MACROBLOCKS, _NARROW, 0),
    "mv_raw": ("me_refine", "mv_predict", 2 * MACROBLOCKS, _NARROW, 0),
    "me_cost": ("me_refine", "rate_control", MACROBLOCKS, _NARROW, 0),
    "mv_final_mc": ("mv_predict", "motion_comp", 2 * MACROBLOCKS, _NARROW, 0),
    "mv_diff": ("mv_predict", "vlc_mv", 2 * MACROBLOCKS, _NARROW, 0),
    "mb_mode": ("mv_predict", "header_gen", MACROBLOCKS, _NARROW, 0),
    # Motion compensation (double-buffered reference, as above).
    "ref_mb": ("frame_store", "motion_comp", LUMA, _REF, 2),
    "ref_mb_chroma": ("frame_store", "motion_comp", 2 * CHROMA, _REF, 2),
    "pred_mb": ("motion_comp", "residual", FRAME, _WIDE, 0),
    "pred_mb_rec": ("motion_comp", "reconstruct", FRAME, _WIDE, 0),
    # Residual and forward transform (luma/chroma reconvergent fork).
    "res_luma": ("residual", "dct_luma", LUMA, _WIDE, 0),
    "res_chroma": ("residual", "dct_chroma", 2 * CHROMA, _WIDE, 0),
    "mb_energy": ("residual", "rate_control", MACROBLOCKS, _NARROW, 0),
    "coef_luma": ("dct_luma", "quant_luma", LUMA, _WIDE, 0),
    "coef_chroma": ("dct_chroma", "quant_chroma", 2 * CHROMA, _WIDE, 0),
    # Rate control fan-out and its feedback inputs.
    "qscale_l": ("rate_control", "quant_luma", MACROBLOCKS, _NARROW, 0),
    "qscale_c": ("rate_control", "quant_chroma", MACROBLOCKS, _NARROW, 0),
    "qscale_il": ("rate_control", "iquant_luma", MACROBLOCKS, _NARROW, 0),
    "qscale_ic": ("rate_control", "iquant_chroma", MACROBLOCKS, _NARROW, 0),
    "qscale_hdr": ("rate_control", "header_gen", MACROBLOCKS, _NARROW, 0),
    "q_stats_l": ("quant_luma", "rate_control", MACROBLOCKS, _NARROW, 1),
    "q_stats_c": ("quant_chroma", "rate_control", MACROBLOCKS, _NARROW, 1),
    # Quantized coefficients: coding path and reconstruction path.
    "q_luma": ("quant_luma", "zigzag_luma", LUMA, _WIDE, 0),
    "q_chroma": ("quant_chroma", "zigzag_chroma", 2 * CHROMA, _WIDE, 0),
    "q_luma_rec": ("quant_luma", "iquant_luma", LUMA, _WIDE, 0),
    "q_chroma_rec": ("quant_chroma", "iquant_chroma", 2 * CHROMA, _WIDE, 0),
    # Entropy coding (luma/chroma reconvergent join at vlc_coeff).
    "rl_luma": ("zigzag_luma", "vlc_coeff", LUMA // 2, _WIDE, 0),
    "rl_chroma": ("zigzag_chroma", "vlc_coeff", CHROMA, _WIDE, 0),
    "cbp": ("header_gen", "vlc_coeff", MACROBLOCKS, _NARROW, 0),
    "bits_coeff": ("vlc_coeff", "bitstream_mux", CHROMA, _WIDE, 0),
    "bits_mv": ("vlc_mv", "bitstream_mux", 2 * MACROBLOCKS, _NARROW, 0),
    "bits_hdr": ("header_gen", "bitstream_mux", 8 * MACROBLOCKS, _NARROW, 0),
    "bits_all": ("bitstream_mux", "bit_packer", CHROMA + 2640, _WIDE, 0),
    "align_ctrl": ("header_gen", "bit_packer", MACROBLOCKS, _NARROW, 0),
    "bit_count": ("bit_packer", "rate_control", MACROBLOCKS, _NARROW, 1),
    # Reconstruction loop back to the frame store.
    "rq_luma": ("iquant_luma", "idct_luma", LUMA, _WIDE, 0),
    "rq_chroma": ("iquant_chroma", "idct_chroma", 2 * CHROMA, _WIDE, 0),
    "rec_luma": ("idct_luma", "reconstruct", LUMA, _WIDE, 0),
    "rec_chroma": ("idct_chroma", "reconstruct", 2 * CHROMA, _WIDE, 0),
    "rec_mb": ("reconstruct", "frame_store", FRAME, _WIDE, 0),
}

#: Testbench channels: raw video in (the paper's 5,280-cycle maximum) and
#: the encoded stream out.
TESTBENCH_SPECS: dict[str, tuple[str, str, int, ChannelPhysics, int]] = {
    "vin": ("Psrc", "frame_reader", FRAME, _VIN, 0),
    "vout": ("bit_packer", "Psnk", CHROMA + 2640, _WIDE, 0),
}


def FRAME_SPEC_ROWS(system, library, latencies) -> list[tuple[str, object]]:
    """Table 1 rows regenerated from the built case study."""
    worker_names = {p.name for p in system.workers()}
    worker_channels = [
        c
        for c in system.channels
        if c.producer in worker_names and c.consumer in worker_names
    ]
    return [
        ("Processes", len(system.workers())),
        ("Channels", len(worker_channels)),
        ("Pareto points", library.total_points()),
        ("Image size (pixels)", f"{FRAME_WIDTH}x{FRAME_HEIGHT}"),
        (
            "Channel latencies (cycles)",
            f"{min(latencies.values())}..{max(latencies.values())}",
        ),
        ("Testbench processes", len(system.sources()) + len(system.sinks())),
    ]


def channel_latencies() -> dict[str, int]:
    """Per-channel minimum transfer latencies (cycles per frame)."""
    latencies = {}
    for name, (_, __, elements, physics, ___) in {
        **CHANNEL_SPECS,
        **TESTBENCH_SPECS,
    }.items():
        latencies[name] = transfer_latency(elements, physics)
    return latencies


def build_mpeg2_system() -> SystemGraph:
    """Build the 26-process / 60-channel encoder system (plus testbench).

    Process latencies default to 1; apply an implementation selection from
    the Pareto library (:mod:`repro.mpeg2.paretos`) via
    ``SystemConfiguration`` or ``process_latencies=`` overrides before
    analyzing performance.
    """
    design = Design("mpeg2_encoder")
    design.source("Psrc", latency=1)
    for name in PROCESS_NAMES:
        design.worker(name, latency=1)
    design.sink("Psnk", latency=1)

    for name, (producer, consumer, elements, physics, tokens) in {
        **CHANNEL_SPECS,
        **TESTBENCH_SPECS,
    }.items():
        capacity = CONTROL_FIFO_DEPTH if physics is _NARROW else 0
        # Per-frame data volume over the port's physical width, expressed
        # as typed wire metadata; the channel latency derived by the
        # composition layer coincides with transfer_latency(elements,
        # physics) — same formula, by design (see repro.dsl.wire).
        design.connect(
            name,
            producer,
            consumer,
            wire=Wire(
                elements=elements,
                rate=physics.elements_per_cycle,
                setup=physics.setup_cycles,
                depth=max(capacity, tokens),
                tokens=tokens,
            ),
        )
    return design.build()
