"""Channel ordering: Algorithm 1, baselines, and the exhaustive oracle."""

from repro.ordering.annealing import AnnealingResult, anneal_ordering
from repro.ordering.algorithm import (
    OrderingOutcome,
    channel_ordering,
    channel_ordering_with_labels,
    final_ordering,
)
from repro.ordering.baselines import (
    conservative_ordering,
    declaration_ordering,
    random_ordering,
    reversed_ordering,
)
from repro.ordering.exhaustive import SearchResult, exhaustive_search
from repro.ordering.feedback import feedback_first, has_preloaded_channels
from repro.ordering.labeling import (
    ArcLabels,
    LabelingResult,
    backward_labeling,
    forward_labeling,
)

__all__ = [
    "AnnealingResult",
    "anneal_ordering",
    "ArcLabels",
    "LabelingResult",
    "OrderingOutcome",
    "SearchResult",
    "backward_labeling",
    "channel_ordering",
    "channel_ordering_with_labels",
    "conservative_ordering",
    "declaration_ordering",
    "exhaustive_search",
    "feedback_first",
    "final_ordering",
    "forward_labeling",
    "has_preloaded_channels",
    "random_ordering",
    "reversed_ordering",
]
