"""Exhaustive ordering search: the exact oracle for small systems.

Section 2 observes that the order space grows as
``prod_p |in(p)|! * |out(p)|!`` (36 already for the five-process example),
which is why Algorithm 1 exists.  For systems small enough to enumerate,
this module classifies every ordering (deadlocking or live, with its cycle
time) and returns the true optimum — the reference that the algorithm's
output is checked against in tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Union

from repro.core.system import ChannelOrdering, SystemGraph, all_orderings
from repro.errors import DeadlockError
from repro.model.performance import analyze_system
from repro.perf.engine import PerformanceEngine
from repro.tmg.analysis import Engine

Number = Union[Fraction, float]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of exhaustively analyzing the ordering space.

    ``sym_deduped``/``sym_classes`` report the orbit dedup (see
    :func:`exhaustive_search`'s ``sym_dedup``): how many orderings were
    served from an already-analyzed symmetric representative, and how
    many distinct canonical classes were actually analyzed.  Both stay
    0 when the dedup is off.
    """

    total_orderings: int
    deadlocking_orderings: int
    best_cycle_time: Number | None
    best_ordering: ChannelOrdering | None
    worst_cycle_time: Number | None
    worst_ordering: ChannelOrdering | None
    sym_deduped: int = 0
    sym_classes: int = 0

    @property
    def live_orderings(self) -> int:
        return self.total_orderings - self.deadlocking_orderings


def exhaustive_search(
    system: SystemGraph,
    limit: int = 100_000,
    engine: Engine | str = Engine.HOWARD,
    on_ordering: Callable[[ChannelOrdering, Number | None], None] | None = None,
    perf_engine: PerformanceEngine | None = None,
    sym_dedup: bool = False,
) -> SearchResult:
    """Analyze every channel ordering of ``system``.

    Args:
        system: The system to sweep (its order space must not exceed
            ``limit``).
        limit: Safety bound on the number of orderings to evaluate.
        engine: Cycle-time engine for live orderings.
        on_ordering: Optional callback invoked per ordering with its cycle
            time (``None`` for deadlocking orders) — handy for histograms.
        perf_engine: Optional shared :class:`~repro.perf.PerformanceEngine`.
            Every ordering has a distinct fingerprint, so within one sweep
            only the float-screened Howard mode helps; across repeated
            sweeps (tests, benchmarks) results hit the cache directly.
        sym_dedup: Analyze only one ordering per orbit of the design's
            automorphism group (:mod:`repro.sym`).  Two orderings whose
            lowered IRs share an orbit-canonical hash *and* whose
            canonical-position latency vectors match denote isomorphic
            timed marked graphs, so the representative's exact cycle
            time is replayed for the whole class — every counter,
            callback, and best/worst comparison still fires per
            ordering, making the result bit-identical to the undeduped
            sweep for exact engines.

    Raises:
        ValueError: The order space exceeds ``limit``.
    """
    space = system.order_space_size()
    if space > limit:
        raise ValueError(
            f"order space of {system.name!r} is {space}, above the limit "
            f"{limit}; use channel_ordering() instead of exhaustive search"
        )

    total = 0
    deadlocks = 0
    best: tuple[Number, ChannelOrdering] | None = None
    worst: tuple[Number, ChannelOrdering] | None = None
    # Orbit memo: (canonical_hash, canonical latency vector) -> cycle
    # time, or None for a deadlocking class.
    memo: dict[tuple[str, tuple[int, ...]], Number | None] = {}
    deduped = 0

    def class_key(
        ordering: ChannelOrdering,
    ) -> tuple[str, tuple[int, ...]] | None:
        from repro.ir import lower
        from repro.sym import analyze_symmetry, declared_seeds

        ir = lower(system, ordering)
        seeds = (
            declared_seeds(ir, system.declared_families)
            if system.declared_families
            else ()
        )
        analysis = analyze_symmetry(ir, seeds=seeds)
        if not analysis.complete:
            return None  # budget-capped labeling: analyze concretely
        latencies = tuple(
            system.process(name).latency
            for name in analysis.canonical_process_names
        )
        return (analysis.canonical_hash, latencies)

    for ordering in all_orderings(system):
        total += 1
        key = class_key(ordering) if sym_dedup else None
        if key is not None and key in memo:
            deduped += 1
            ct_memo = memo[key]
            if ct_memo is None:
                deadlocks += 1
                if on_ordering is not None:
                    on_ordering(ordering, None)
                continue
            ct = ct_memo
        else:
            try:
                performance = analyze_system(
                    system, ordering, engine=engine, perf_engine=perf_engine
                )
            except DeadlockError:
                deadlocks += 1
                if key is not None:
                    memo[key] = None
                if on_ordering is not None:
                    on_ordering(ordering, None)
                continue
            ct = performance.cycle_time
            if key is not None:
                memo[key] = ct
        if on_ordering is not None:
            on_ordering(ordering, ct)
        if best is None or ct < best[0]:
            best = (ct, ordering)
        if worst is None or ct > worst[0]:
            worst = (ct, ordering)

    return SearchResult(
        total_orderings=total,
        deadlocking_orderings=deadlocks,
        best_cycle_time=best[0] if best else None,
        best_ordering=best[1] if best else None,
        worst_cycle_time=worst[0] if worst else None,
        worst_ordering=worst[1] if worst else None,
        sym_deduped=deduped,
        sym_classes=len(memo),
    )
