"""Exhaustive ordering search: the exact oracle for small systems.

Section 2 observes that the order space grows as
``prod_p |in(p)|! * |out(p)|!`` (36 already for the five-process example),
which is why Algorithm 1 exists.  For systems small enough to enumerate,
this module classifies every ordering (deadlocking or live, with its cycle
time) and returns the true optimum — the reference that the algorithm's
output is checked against in tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Union

from repro.core.system import ChannelOrdering, SystemGraph, all_orderings
from repro.errors import DeadlockError
from repro.model.performance import analyze_system
from repro.perf.engine import PerformanceEngine
from repro.tmg.analysis import Engine

Number = Union[Fraction, float]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of exhaustively analyzing the ordering space."""

    total_orderings: int
    deadlocking_orderings: int
    best_cycle_time: Number | None
    best_ordering: ChannelOrdering | None
    worst_cycle_time: Number | None
    worst_ordering: ChannelOrdering | None

    @property
    def live_orderings(self) -> int:
        return self.total_orderings - self.deadlocking_orderings


def exhaustive_search(
    system: SystemGraph,
    limit: int = 100_000,
    engine: Engine | str = Engine.HOWARD,
    on_ordering: Callable[[ChannelOrdering, Number | None], None] | None = None,
    perf_engine: PerformanceEngine | None = None,
) -> SearchResult:
    """Analyze every channel ordering of ``system``.

    Args:
        system: The system to sweep (its order space must not exceed
            ``limit``).
        limit: Safety bound on the number of orderings to evaluate.
        engine: Cycle-time engine for live orderings.
        on_ordering: Optional callback invoked per ordering with its cycle
            time (``None`` for deadlocking orders) — handy for histograms.
        perf_engine: Optional shared :class:`~repro.perf.PerformanceEngine`.
            Every ordering has a distinct fingerprint, so within one sweep
            only the float-screened Howard mode helps; across repeated
            sweeps (tests, benchmarks) results hit the cache directly.

    Raises:
        ValueError: The order space exceeds ``limit``.
    """
    space = system.order_space_size()
    if space > limit:
        raise ValueError(
            f"order space of {system.name!r} is {space}, above the limit "
            f"{limit}; use channel_ordering() instead of exhaustive search"
        )

    total = 0
    deadlocks = 0
    best: tuple[Number, ChannelOrdering] | None = None
    worst: tuple[Number, ChannelOrdering] | None = None

    for ordering in all_orderings(system):
        total += 1
        try:
            performance = analyze_system(
                system, ordering, engine=engine, perf_engine=perf_engine
            )
        except DeadlockError:
            deadlocks += 1
            if on_ordering is not None:
                on_ordering(ordering, None)
            continue
        ct = performance.cycle_time
        if on_ordering is not None:
            on_ordering(ordering, ct)
        if best is None or ct < best[0]:
            best = (ct, ordering)
        if worst is None or ct > worst[0]:
            worst = (ct, ordering)

    return SearchResult(
        total_orderings=total,
        deadlocking_orderings=deadlocks,
        best_cycle_time=best[0] if best else None,
        best_ordering=best[1] if best else None,
        worst_cycle_time=worst[0] if worst else None,
        worst_ordering=worst[1] if worst else None,
    )
