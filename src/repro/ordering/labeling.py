"""Forward and backward labeling passes of Algorithm 1 (Section 4).

**Forward Labeling** traverses the system from the testbench sources with a
FIFO queue.  When a vertex ``x`` is processed, each of its outgoing arcs is
considered following ``x``'s current put order, and the arc *head* is
labeled with ``(weight, timestamp)``:

    weight = MaxInArcWeight(x) + SumOutArcLatency(x) + VertexLatency(x)

where ``MaxInArcWeight`` is the maximum head weight among the labeled
incoming arcs of ``x``, ``SumOutArcLatency`` the total latency of the arcs
leaving ``x``, and the timestamp a global progressive counter.  A successor
is enqueued when its last *gating* incoming arc has been visited.

**Backward Labeling** mirrors the procedure from the sinks: when a vertex
``x`` is processed, its incoming arcs are considered in ascending order of
the *forward* timestamps on their heads, and each arc *tail* is labeled
with

    weight = MaxOutArcWeight(x) + SumInArcLatency(x) + VertexLatency(x)

with a fresh progressive timestamp.  A predecessor is enqueued when its
last gating outgoing arc has been visited.

**Feedback loops.** The paper's pseudo-code assumes the quorum condition
("last visiting arc") is eventually met for every vertex, which holds for
DAGs.  Real systems (the paper's MPEG-2 included) contain feedback loops;
those are live only when some channel on the loop carries pre-loaded data
(``initial_tokens > 0``).  We therefore treat channels with initial tokens
as *non-gating*: they do not hold back the traversal (their data is
available from the start) and contribute to ``MaxInArcWeight`` only once
labeled.  If the traversal still cannot reach every vertex, the remaining
vertices lie on token-free cycles — no statement order can keep such a
system live, so a :class:`~repro.errors.DeadlockError` is raised with the
witness.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.system import ChannelOrdering, ProcessKind, SystemGraph
from repro.errors import DeadlockError, ValidationError


@dataclass
class ArcLabels:
    """Labels accumulated on one channel (arc) by the two passes."""

    head_weight: int | None = None
    head_timestamp: int | None = None
    tail_weight: int | None = None
    tail_timestamp: int | None = None


@dataclass
class LabelingResult:
    """Arc labels of a full forward+backward run, keyed by channel name."""

    labels: dict[str, ArcLabels] = field(default_factory=dict)

    def of(self, channel: str) -> ArcLabels:
        return self.labels[channel]

    def head(self, channel: str) -> tuple[int, int]:
        """(weight, timestamp) placed on the arc head by Forward Labeling."""
        arc = self.labels[channel]
        if arc.head_weight is None or arc.head_timestamp is None:
            raise ValidationError(f"channel {channel!r} was not forward-labeled")
        return (arc.head_weight, arc.head_timestamp)

    def tail(self, channel: str) -> tuple[int, int]:
        """(weight, timestamp) placed on the arc tail by Backward Labeling."""
        arc = self.labels[channel]
        if arc.tail_weight is None or arc.tail_timestamp is None:
            raise ValidationError(f"channel {channel!r} was not backward-labeled")
        return (arc.tail_weight, arc.tail_timestamp)


def forward_labeling(
    system: SystemGraph,
    initial_ordering: ChannelOrdering,
    result: LabelingResult | None = None,
) -> LabelingResult:
    """Run the Forward Labeling pass (Algorithm 1, lines 6–21)."""
    result = result if result is not None else _fresh_result(system)
    timestamp = 1

    sum_out_latency = {
        p.name: sum(system.channel(c).latency for c in system.output_channels(p.name))
        for p in system.processes
    }
    gating_in = {
        p.name: sum(
            1
            for c in system.input_channels(p.name)
            if system.channel(c).initial_tokens == 0
        )
        for p in system.processes
    }
    visited_in: dict[str, int] = {p.name: 0 for p in system.processes}
    enqueued: set[str] = set()

    queue: deque[str] = deque()
    for process in system.processes:
        if process.kind is ProcessKind.SOURCE:
            queue.append(process.name)
            enqueued.add(process.name)
    # Vertices whose quorum is already met (every input is a pre-loaded
    # feedback channel) have no upstream trigger: seed them explicitly.
    # Closed systems (no testbench, e.g. expanded SDF rings) start from
    # these seeds alone.
    for process in system.processes:
        if process.name not in enqueued and gating_in[process.name] == 0:
            queue.append(process.name)
            enqueued.add(process.name)
    if not queue:
        raise ValidationError(
            f"system {system.name!r} has no testbench source and no "
            "pre-loaded starting point for Forward Labeling"
        )

    while queue:
        x = queue.popleft()
        max_in = _max_head_weight(system, result, x)
        weight = max_in + sum_out_latency[x] + system.process(x).latency
        for channel_name in initial_ordering.puts_of(x):
            channel = system.channel(channel_name)
            y = channel.consumer
            if channel.initial_tokens == 0:
                visited_in[y] += 1
            arc = result.labels[channel_name]
            arc.head_weight = weight
            arc.head_timestamp = timestamp
            timestamp += 1
            if y not in enqueued and visited_in[y] >= gating_in[y]:
                enqueued.add(y)
                queue.append(y)

    unreached = [p.name for p in system.processes if p.name not in enqueued]
    if unreached:
        raise DeadlockError(
            "forward labeling cannot reach processes "
            f"{sorted(unreached)}: they lie on a dependency cycle with no "
            "pre-loaded data, which deadlocks under every statement order",
            cycle=sorted(unreached),
        )
    return result


def backward_labeling(
    system: SystemGraph,
    result: LabelingResult,
) -> LabelingResult:
    """Run the Backward Labeling pass (mirror of Forward Labeling).

    Must run after :func:`forward_labeling` on the same result: the order
    in which a vertex's incoming arcs are considered is the ascending order
    of their forward head timestamps.
    """
    timestamp = 1

    sum_in_latency = {
        p.name: sum(system.channel(c).latency for c in system.input_channels(p.name))
        for p in system.processes
    }
    gating_out = {
        p.name: sum(
            1
            for c in system.output_channels(p.name)
            if system.channel(c).initial_tokens == 0
        )
        for p in system.processes
    }
    visited_out: dict[str, int] = {p.name: 0 for p in system.processes}
    enqueued: set[str] = set()

    queue: deque[str] = deque()
    for process in system.processes:
        if process.kind is ProcessKind.SINK:
            queue.append(process.name)
            enqueued.add(process.name)
    # Mirror of the forward seeding: vertices whose every output is a
    # pre-loaded feedback channel have no downstream trigger; closed
    # systems start from them alone.
    for process in system.processes:
        if process.name not in enqueued and gating_out[process.name] == 0:
            queue.append(process.name)
            enqueued.add(process.name)
    if not queue:
        raise ValidationError(
            f"system {system.name!r} has no testbench sink and no "
            "pre-loaded starting point for Backward Labeling"
        )

    while queue:
        x = queue.popleft()
        max_out = _max_tail_weight(system, result, x)
        weight = max_out + sum_in_latency[x] + system.process(x).latency
        in_arcs = sorted(
            system.input_channels(x),
            key=lambda name: _forward_timestamp(result, name),
        )
        for channel_name in in_arcs:
            channel = system.channel(channel_name)
            w = channel.producer
            if channel.initial_tokens == 0:
                visited_out[w] += 1
            arc = result.labels[channel_name]
            arc.tail_weight = weight
            arc.tail_timestamp = timestamp
            timestamp += 1
            if w not in enqueued and visited_out[w] >= gating_out[w]:
                enqueued.add(w)
                queue.append(w)

    unreached = [p.name for p in system.processes if p.name not in enqueued]
    if unreached:
        raise DeadlockError(
            "backward labeling cannot reach processes "
            f"{sorted(unreached)}: they lie on a dependency cycle with no "
            "pre-loaded data, which deadlocks under every statement order",
            cycle=sorted(unreached),
        )
    return result


def _fresh_result(system: SystemGraph) -> LabelingResult:
    return LabelingResult(labels={c.name: ArcLabels() for c in system.channels})


def _max_head_weight(
    system: SystemGraph, result: LabelingResult, process: str
) -> int:
    """Maximum forward weight over the labeled incoming arcs of a vertex.

    Arcs not yet labeled (feedback arcs whose tail is processed later)
    contribute zero — their data is available at start-up, imposing no
    arrival-time pressure.
    """
    best = 0
    for channel_name in system.input_channels(process):
        weight = result.labels[channel_name].head_weight
        if weight is not None:
            best = max(best, weight)
    return best


def _max_tail_weight(
    system: SystemGraph, result: LabelingResult, process: str
) -> int:
    best = 0
    for channel_name in system.output_channels(process):
        weight = result.labels[channel_name].tail_weight
        if weight is not None:
            best = max(best, weight)
    return best


def _forward_timestamp(result: LabelingResult, channel: str) -> int:
    ts = result.labels[channel].head_timestamp
    if ts is None:
        raise ValidationError(
            f"channel {channel!r} has no forward timestamp; run "
            "forward_labeling before backward_labeling"
        )
    return ts
