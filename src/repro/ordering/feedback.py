"""Feedback-aware refinement: read pre-loaded channels first (ablation).

An intuitively appealing refinement on systems with feedback loops: since
pre-loaded (``initial_tokens > 0``) channels have data available from the
start, hoist their gets to the front of each consumer's get order so the
process "consumes what is ready" before blocking on fresh data.

The TMG model shows the intuition buys almost nothing, which is itself a
useful result (ablated in the benchmarks/tests):

* **The chain token is position-independent.** The initial marking puts a
  token in the first statement place (chain position 0).  A cycle either
  crosses a process chain forward without wrapping (never touching
  position 0, wherever the channels sit in the order) or wraps through the
  loopback — and every wrap crosses position 0, collecting exactly one
  token regardless of the get order.  Hoisting therefore does not move
  tokens onto or off any through-path.
* **It cannot create a deadlock.** Reordering gets does change which
  get-to-get escape paths exist (a cycle can leave a process through a
  later get's channel transition into that channel's producer), so new
  cycles can appear — but every cycle newly enabled by hoisting enters
  through a hoisted channel and hence traverses its data place, which
  carries that channel's ``initial_tokens >= 1``.  Token-free cycles can
  only disappear, never appear.
* **Delay effects are marginal** — a few transfer cycles shuffled between
  entry and exit statements.

The transform is safe and order-preserving among unhoisted channels, and
is kept as an ablation utility; the ERMES flow does not need it —
Algorithm 1's weight-based ordering subsumes the useful part.
"""

from __future__ import annotations

from repro.core.system import ChannelOrdering, SystemGraph


def feedback_first(
    system: SystemGraph, ordering: ChannelOrdering
) -> ChannelOrdering:
    """Hoist pre-loaded input channels to the front of each get order."""
    gets = {}
    for name, order in ordering.gets.items():
        preloaded = [c for c in order if system.channel(c).initial_tokens > 0]
        rest = [c for c in order if system.channel(c).initial_tokens == 0]
        gets[name] = tuple(preloaded + rest)
    refined = ChannelOrdering(gets=gets, puts=dict(ordering.puts))
    refined.validate(system)
    return refined


def has_preloaded_channels(system: SystemGraph) -> bool:
    """True when the system has any pre-loaded (feedback) channel."""
    return any(c.initial_tokens > 0 for c in system.channels)
