"""Algorithm 1: deadlock-free, throughput-optimizing channel ordering.

The three steps (Forward Labeling, Backward Labeling, Final Ordering)
produce, in ``O(|E| log |E|)``, a statement order for every process:

* **gets** sorted by *ascending* head weight — read first from the channel
  that ends the path with the smallest aggregate latency, because its data
  arrives first;
* **puts** sorted by *descending* tail weight — write first to the channel
  that starts the path with the largest remaining aggregate latency,
  because its consumer chain needs the data soonest;
* ties broken by *ascending* timestamps, which the paper notes is required
  to avoid deadlock on symmetric structures (two processes that tie on
  weights must resolve their mutual channels in a consistent global order;
  the traversal timestamps provide exactly that order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.system import ChannelOrdering, SystemGraph
from repro.ordering.labeling import (
    LabelingResult,
    backward_labeling,
    forward_labeling,
)
from repro.perf.cache import MISS, LruCache
from repro.perf.fingerprint import system_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class OrderingOutcome:
    """Result of Algorithm 1: the ordering plus the labels that justify it."""

    ordering: ChannelOrdering
    labels: LabelingResult


def channel_ordering(
    system: SystemGraph,
    initial_ordering: ChannelOrdering | None = None,
    cache: LruCache | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> ChannelOrdering:
    """Compute the optimized channel ordering of a system (Algorithm 1).

    Args:
        system: System with current process latencies (from the selected
            HLS micro-architectures) and channel latencies.
        initial_ordering: The order in which Forward Labeling considers the
            put statements of each process — "an order given by the
            designer or the suboptimal of Section 2".  Defaults to the
            declaration order.  The *result* does not depend on this order
            except through timestamp tie-breaks.
        cache: Optional :class:`~repro.perf.LruCache` memoizing the result
            by content (latencies + channel parameters + initial order).
            Algorithm 1 is deterministic, so a revisited configuration —
            common in ERMES sweeps, which warm-start from earlier targets
            — returns its (immutable) ordering without re-labeling.
        metrics: Optional :class:`repro.obs.MetricsRegistry`; records the
            stable ``ordering.*`` counters/timers (runs, cache hits and
            misses, processes whose statement order changed — the
            algorithm's "swaps") documented in ``docs/OBSERVABILITY.md``.

    Raises:
        DeadlockError: The system contains a dependency cycle with no
            pre-loaded data; no ordering can make it live.
    """
    if metrics is not None:
        metrics.counter("ordering.runs").add(1)
    initial = initial_ordering or ChannelOrdering.declaration_order(system)
    if cache is not None:
        key = "order:" + system_fingerprint(system, initial)
        cached = cache.get(key)
        if cached is not MISS:
            if metrics is not None:
                metrics.counter("ordering.cache_hits").add(1)
            return cached
    if metrics is None:
        ordering = channel_ordering_with_labels(system, initial).ordering
    else:
        if cache is not None:
            metrics.counter("ordering.cache_misses").add(1)
        with metrics.timer("ordering.label"):
            ordering = channel_ordering_with_labels(system, initial).ordering
        metrics.counter("ordering.changed_processes").add(
            len(ordering.differs_from(initial))
        )
    if cache is not None:
        cache.put(key, ordering)
    return ordering


def channel_ordering_with_labels(
    system: SystemGraph,
    initial_ordering: ChannelOrdering | None = None,
) -> OrderingOutcome:
    """:func:`channel_ordering`, additionally exposing the arc labels
    (useful for reports, tests, and the worked example of Fig. 4)."""
    if initial_ordering is None:
        initial_ordering = ChannelOrdering.declaration_order(system)
    else:
        initial_ordering.validate(system)

    labels = forward_labeling(system, initial_ordering)
    labels = backward_labeling(system, labels)
    ordering = final_ordering(system, labels)
    return OrderingOutcome(ordering=ordering, labels=labels)


def final_ordering(
    system: SystemGraph, labels: LabelingResult
) -> ChannelOrdering:
    """Final Ordering step (Algorithm 1, lines 24–34)."""
    gets: dict[str, tuple[str, ...]] = {}
    puts: dict[str, tuple[str, ...]] = {}
    for process in system.processes:
        in_arcs = sorted(
            system.input_channels(process.name),
            key=lambda name: (
                labels.of(name).head_weight,
                labels.of(name).head_timestamp,
            ),
        )
        out_arcs = sorted(
            system.output_channels(process.name),
            key=lambda name: (
                -labels.of(name).tail_weight,
                labels.of(name).tail_timestamp,
            ),
        )
        gets[process.name] = tuple(in_arcs)
        puts[process.name] = tuple(out_arcs)
    ordering = ChannelOrdering(gets=gets, puts=puts)
    ordering.validate(system)
    return ordering
