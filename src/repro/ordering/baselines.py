"""Baseline channel orderings to compare Algorithm 1 against.

* :func:`declaration_ordering` — the order the designer wrote (Listing 1).
* :func:`conservative_ordering` — the paper's "conservative ordering that
  guarantees absence of deadlock but may introduce unnecessary
  serialization": statements sorted by the position of the peer process in
  a fixed topological order, so every process interacts with its neighbours
  in one global sweep direction.
* :func:`random_ordering` — a uniformly random permutation per process
  (may deadlock; useful for sampling the order space).
* :func:`reversed_ordering` — declaration order reversed (an adversarial
  but deterministic baseline).
"""

from __future__ import annotations

import random
from collections import deque

from repro.core.system import ChannelOrdering, SystemGraph


def declaration_ordering(system: SystemGraph) -> ChannelOrdering:
    """The statement order of the source code."""
    return ChannelOrdering.declaration_order(system)


def reversed_ordering(system: SystemGraph) -> ChannelOrdering:
    """Declaration order with every process's gets and puts reversed."""
    return ChannelOrdering(
        gets={
            p.name: tuple(reversed(system.input_channels(p.name)))
            for p in system.processes
        },
        puts={
            p.name: tuple(reversed(system.output_channels(p.name)))
            for p in system.processes
        },
    )


def random_ordering(system: SystemGraph, seed: int = 0) -> ChannelOrdering:
    """A uniformly random ordering (not guaranteed deadlock-free)."""
    rng = random.Random(seed)
    gets = {}
    puts = {}
    for p in system.processes:
        ins = list(system.input_channels(p.name))
        outs = list(system.output_channels(p.name))
        rng.shuffle(ins)
        rng.shuffle(outs)
        gets[p.name] = tuple(ins)
        puts[p.name] = tuple(outs)
    return ChannelOrdering(gets=gets, puts=puts)


def conservative_ordering(system: SystemGraph) -> ChannelOrdering:
    """A deadlock-free but serializing ordering.

    Processes are ranked by a topological order of the zero-token channel
    graph (feedback channels with pre-loaded data do not constrain the
    rank).  Each process then reads its inputs in ascending producer rank
    and writes its outputs in ascending consumer rank, with channel
    declaration position as tie-break.  Every process thus follows one
    global sweep, which provably avoids circular waits but tends to chain
    transfers that could overlap — the behaviour the paper attributes to
    conservative hand-made orders.
    """
    rank = _topological_rank(system)
    gets = {}
    puts = {}
    for p in system.processes:
        ins = sorted(
            system.input_channels(p.name),
            key=lambda c: (rank[system.channel(c).producer], c),
        )
        outs = sorted(
            system.output_channels(p.name),
            key=lambda c: (rank[system.channel(c).consumer], c),
        )
        gets[p.name] = tuple(ins)
        puts[p.name] = tuple(outs)
    return ChannelOrdering(gets=gets, puts=puts)


def _topological_rank(system: SystemGraph) -> dict[str, int]:
    """Kahn topological rank over zero-token channels.

    Vertices left over (on token-free cycles) are appended in name order;
    such systems deadlock under every ordering anyway, but the baseline
    should still return *an* ordering for diagnostic flows.
    """
    indegree: dict[str, int] = {p.name: 0 for p in system.processes}
    for channel in system.channels:
        if channel.initial_tokens == 0:
            indegree[channel.consumer] += 1

    queue = deque(sorted(name for name, d in indegree.items() if d == 0))
    rank: dict[str, int] = {}
    position = 0
    while queue:
        x = queue.popleft()
        rank[x] = position
        position += 1
        for channel_name in system.output_channels(x):
            channel = system.channel(channel_name)
            if channel.initial_tokens != 0:
                continue
            indegree[channel.consumer] -= 1
            if indegree[channel.consumer] == 0:
                queue.append(channel.consumer)
    for name in sorted(indegree):
        if name not in rank:
            rank[name] = position
            position += 1
    return rank
