"""Simulated-annealing channel ordering: a stochastic-search baseline.

Algorithm 1 is an `O(E log E)` constructive heuristic.  To quantify how
much it leaves on the table, this module provides a classic local-search
alternative: start from a live ordering, propose random adjacent swaps in
one process's get or put order, evaluate the exact cycle time with the TMG
model, and accept by the Metropolis rule (deadlocking proposals are simply
rejected — their cycle time is infinite).

On the motivating example both reach the global optimum; on larger systems
annealing occasionally shaves a few percent more at orders of magnitude
more analysis calls — the trade the ablation benchmark quantifies.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Union

from repro.core.system import ChannelOrdering, SystemGraph
from repro.errors import DeadlockError
from repro.model.performance import analyze_system
from repro.ordering.algorithm import channel_ordering
from repro.perf.engine import PerformanceEngine

Number = Union[Fraction, float]


@dataclass(frozen=True)
class AnnealingResult:
    """Outcome of an annealing run."""

    ordering: ChannelOrdering
    cycle_time: Number
    evaluations: int
    accepted: int
    initial_cycle_time: Number


def _swap_adjacent(
    ordering: ChannelOrdering, rng: random.Random, system: SystemGraph
) -> ChannelOrdering | None:
    """Propose one adjacent swap in a random worker's get or put order."""
    candidates = []
    for process in system.workers():
        if len(ordering.gets_of(process.name)) >= 2:
            candidates.append((process.name, "gets"))
        if len(ordering.puts_of(process.name)) >= 2:
            candidates.append((process.name, "puts"))
    if not candidates:
        return None
    name, side = rng.choice(candidates)
    order = list(
        ordering.gets_of(name) if side == "gets" else ordering.puts_of(name)
    )
    position = rng.randrange(len(order) - 1)
    order[position], order[position + 1] = order[position + 1], order[position]
    gets = dict(ordering.gets)
    puts = dict(ordering.puts)
    if side == "gets":
        gets[name] = tuple(order)
    else:
        puts[name] = tuple(order)
    return ChannelOrdering(gets=gets, puts=puts)


def anneal_ordering(
    system: SystemGraph,
    initial: ChannelOrdering | None = None,
    iterations: int = 400,
    seed: int = 0,
    initial_temperature: float | None = None,
    cooling: float = 0.985,
    perf_engine: PerformanceEngine | None = None,
) -> AnnealingResult:
    """Optimize a channel ordering by simulated annealing.

    Args:
        system: The system (with current latencies).
        initial: Starting ordering; defaults to Algorithm 1's output (a
            live, already-good start).  A deadlocking start is repaired by
            falling back to Algorithm 1.
        iterations: Proposal count (each costs one TMG analysis).
        seed: RNG seed; runs are deterministic.
        initial_temperature: Metropolis temperature; defaults to 5% of the
            starting cycle time.
        cooling: Geometric cooling factor per proposal.
        perf_engine: The :class:`~repro.perf.PerformanceEngine` serving the
            per-proposal analyses.  Defaults to a fresh engine per run; the
            random walk revisits orderings often, so memoized results (and
            float-screened Howard) cut the dominant cost directly.
    """
    rng = random.Random(seed)
    engine = perf_engine or PerformanceEngine()

    def evaluate(ordering: ChannelOrdering) -> Number:
        return analyze_system(system, ordering, perf_engine=engine).cycle_time

    if initial is None:
        current = channel_ordering(system)
    else:
        try:
            evaluate(initial)
            current = initial
        except DeadlockError:
            current = channel_ordering(system, initial_ordering=initial)

    current_ct = evaluate(current)
    initial_ct = current_ct
    best = current
    best_ct = current_ct

    temperature = (
        initial_temperature
        if initial_temperature is not None
        else max(1.0, 0.05 * float(current_ct))
    )
    evaluations = 0
    accepted = 0

    for _ in range(iterations):
        proposal = _swap_adjacent(current, rng, system)
        if proposal is None:
            break
        try:
            proposal_ct = evaluate(proposal)
        except DeadlockError:
            temperature *= cooling
            continue
        finally:
            evaluations += 1
        delta = float(proposal_ct) - float(current_ct)
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            current = proposal
            current_ct = proposal_ct
            accepted += 1
            if current_ct < best_ct:
                best = current
                best_ct = current_ct
        temperature *= cooling

    return AnnealingResult(
        ordering=best,
        cycle_time=best_ct,
        evaluations=evaluations,
        accepted=accepted,
        initial_cycle_time=initial_ct,
    )
