"""Synchronous dataflow front end: multirate graphs compiled into the
blocking-channel system model via homogeneous expansion."""

from repro.sdf.convert import SdfCompilation, instance_name, sdf_to_system
from repro.sdf.graph import SdfActor, SdfEdge, SdfGraph

__all__ = [
    "SdfActor",
    "SdfCompilation",
    "SdfEdge",
    "SdfGraph",
    "instance_name",
    "sdf_to_system",
]
