"""Synchronous dataflow (SDF) graphs: the multirate front end.

The paper's related work contrasts its three-phase processes with
synchronous-dataflow design styles.  The two meet here: an SDF graph —
actors firing with fixed token rates per port — can be compiled into the
blocking-channel system model by homogeneous (single-rate) expansion, after
which the paper's entire machinery (ordering, cycle time, sizing) applies.
This module holds the SDF structure itself: rate-consistency via the
balance equations and the repetition vector.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable

from repro.errors import ValidationError


@dataclass(frozen=True)
class SdfActor:
    """One SDF actor.

    Attributes:
        name: Unique identifier.
        execution_time: Cycles per firing (the HLS latency of one firing).
    """

    name: str
    execution_time: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("actor name must be non-empty")
        if self.execution_time < 0:
            raise ValidationError(
                f"actor {self.name!r}: execution time must be >= 0"
            )


@dataclass(frozen=True)
class SdfEdge:
    """A FIFO edge with production/consumption rates and initial tokens.

    ``producer`` fires push ``production`` tokens; ``consumer`` fires pop
    ``consumption`` tokens; ``delay`` tokens are present initially.
    """

    name: str
    producer: str
    consumer: str
    production: int = 1
    consumption: int = 1
    delay: int = 0
    latency: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("edge name must be non-empty")
        if self.production < 1 or self.consumption < 1:
            raise ValidationError(
                f"edge {self.name!r}: rates must be >= 1"
            )
        if self.delay < 0:
            raise ValidationError(f"edge {self.name!r}: delay must be >= 0")
        if self.latency < 1:
            raise ValidationError(f"edge {self.name!r}: latency must be >= 1")


class SdfGraph:
    """A synchronous dataflow graph."""

    def __init__(self, name: str = "sdf"):
        self.name = name
        self._actors: dict[str, SdfActor] = {}
        self._edges: dict[str, SdfEdge] = {}

    # ------------------------------------------------------------------

    def add_actor(self, name: str, execution_time: int = 1) -> SdfActor:
        if name in self._actors:
            raise ValidationError(f"duplicate actor {name!r}")
        actor = SdfActor(name, execution_time)
        self._actors[name] = actor
        return actor

    def add_edge(
        self,
        name: str,
        producer: str,
        consumer: str,
        production: int = 1,
        consumption: int = 1,
        delay: int = 0,
        latency: int = 1,
    ) -> SdfEdge:
        if name in self._edges:
            raise ValidationError(f"duplicate edge {name!r}")
        for endpoint in (producer, consumer):
            if endpoint not in self._actors:
                raise ValidationError(
                    f"edge {name!r} references unknown actor {endpoint!r}"
                )
        edge = SdfEdge(name, producer, consumer, production, consumption,
                       delay, latency)
        self._edges[name] = edge
        return edge

    # ------------------------------------------------------------------

    def actor(self, name: str) -> SdfActor:
        try:
            return self._actors[name]
        except KeyError:
            raise ValidationError(f"unknown actor {name!r}") from None

    def edge(self, name: str) -> SdfEdge:
        try:
            return self._edges[name]
        except KeyError:
            raise ValidationError(f"unknown edge {name!r}") from None

    @property
    def actors(self) -> tuple[SdfActor, ...]:
        return tuple(self._actors.values())

    @property
    def edges(self) -> tuple[SdfEdge, ...]:
        return tuple(self._edges.values())

    # ------------------------------------------------------------------

    def repetition_vector(self) -> dict[str, int]:
        """The smallest positive integer firing counts balancing every edge.

        Solves ``production(e) · q[producer] = consumption(e) · q[consumer]``
        by propagating rational ratios over the connected components and
        scaling to the least common denominator.

        Raises:
            ValidationError: The rates are inconsistent (no balanced
                repetition vector exists — the graph cannot run in bounded
                memory).
        """
        if not self._actors:
            raise ValidationError(f"SDF graph {self.name!r} has no actors")
        ratio: dict[str, Fraction] = {}
        for root in self._actors:
            if root in ratio:
                continue
            ratio[root] = Fraction(1)
            stack = [root]
            while stack:
                current = stack.pop()
                for edge in self._edges.values():
                    if edge.producer == current:
                        implied = ratio[current] * edge.production / edge.consumption
                        other = edge.consumer
                    elif edge.consumer == current:
                        implied = ratio[current] * edge.consumption / edge.production
                        other = edge.producer
                    else:
                        continue
                    if other in ratio:
                        if ratio[other] != implied:
                            raise ValidationError(
                                f"SDF graph {self.name!r} is rate-inconsistent "
                                f"at edge {edge.name!r}"
                            )
                    else:
                        ratio[other] = implied
                        stack.append(other)
        denominator = math.lcm(*(r.denominator for r in ratio.values()))
        counts = {name: int(r * denominator) for name, r in ratio.items()}
        divisor = math.gcd(*counts.values())
        return {name: count // divisor for name, count in counts.items()}

    def is_consistent(self) -> bool:
        """True iff a balanced repetition vector exists."""
        try:
            self.repetition_vector()
        except ValidationError:
            return False
        return True

    def firings_per_iteration(self) -> int:
        """Total actor firings in one graph iteration (the HSDF size)."""
        return sum(self.repetition_vector().values())
