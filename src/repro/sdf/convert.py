"""SDF → system-model compilation via homogeneous expansion.

The classical single-rate (HSDF) expansion: each actor ``a`` with
repetition count ``q_a`` becomes ``q_a`` process instances; the ``k``-th
firing's token-level dependencies become point-to-point channels whose
``initial_tokens`` count the iteration boundaries the dependency crosses.
The result is a plain :class:`~repro.core.system.SystemGraph`, so the
paper's analysis, ordering, sizing, and simulation machinery applies to
multirate specifications unchanged.

Construction per edge (producer rate ``p``, consumer rate ``c``, ``d``
initial tokens): the producer's ``k``-th firing emits stream tokens
``d + p·k … d + p·k + p − 1``; stream token ``t`` is popped by consumer
firing ``t // c``.  With firings folded onto instances modulo the
repetition counts, the dependency from firing ``k`` to firing ``j``
becomes a channel ``a[k mod q_a] → b[j mod q_b]`` with
``j // q_b`` initial tokens (parallel dependencies keep the tightest,
i.e. fewest-token, channel).  Actors are serialized — one hardware
instance executes its ``q`` firings in order — via a cyclic chain of
synchronization channels, matching the paper's serial-process semantics.

The expansion is assembled through the composition layer
(:class:`repro.dsl.design.Design`): instances are nodes, dependencies
are connections, and channel latency/capacity/tokens are expressed as
:class:`~repro.dsl.wire.Wire` metadata (``wire_for_latency``), keeping
this path on the same elaboration contract — declaration order is
composition order — that the hash-pinned generators rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.system import ChannelOrdering, SystemGraph
from repro.errors import ValidationError
from repro.sdf.graph import SdfGraph

if TYPE_CHECKING:
    from repro.dsl.design import Design


def instance_name(actor: str, index: int, count: int) -> str:
    """Process name of one actor firing instance."""
    return actor if count == 1 else f"{actor}#{index}"


@dataclass(frozen=True)
class SdfCompilation:
    """The compiled system plus the provenance of its processes.

    ``ordering`` is a deadlock-free statement order computed by Algorithm 1
    over the expansion — the declaration order of a reconvergent expansion
    can deadlock (the paper's Section 2 problem resurfacing at the
    instance level), so analyses should use this ordering.
    """

    system: SystemGraph
    repetitions: dict[str, int]
    ordering: "ChannelOrdering"

    def instances_of(self, actor: str) -> tuple[str, ...]:
        count = self.repetitions[actor]
        return tuple(instance_name(actor, i, count) for i in range(count))


def expansion_design(
    graph: SdfGraph,
    serialize_actors: bool = True,
    sync_latency: int = 1,
) -> tuple["Design", dict[str, int]]:
    """The homogeneous expansion as an *open* composition-layer design.

    Returns the :class:`~repro.dsl.design.Design` holding every firing
    instance and dependency channel, plus the repetition vector.  The
    design is deliberately left open — it is all worker instances, so a
    testbench closure (e.g. :func:`repro.dsl.sdf.streaming_design`) can
    extend it before elaboration.

    Raises:
        ValidationError: The graph is rate-inconsistent, or an actor has a
            self-loop edge that cannot be expressed (self-loops with
            enough delay are implied by serialization and are dropped;
            under-delayed ones would deadlock every schedule).
    """
    # Deferred: repro.dsl re-exports its sdf helpers, which import this
    # module — resolving the composition layer at call time keeps both
    # package __init__ orders cycle-free.
    from repro.dsl.design import Design
    from repro.dsl.wire import wire_for_latency

    repetitions = graph.repetition_vector()
    design = Design(f"{graph.name}.hsdf")

    for actor in graph.actors:
        count = repetitions[actor.name]
        for index in range(count):
            design.worker(
                instance_name(actor.name, index, count),
                latency=actor.execution_time,
            )

    channel_index = 0
    for edge in graph.edges:
        q_prod = repetitions[edge.producer]
        q_cons = repetitions[edge.consumer]
        if edge.producer == edge.consumer:
            # A self-loop bounds auto-concurrency; serialization already
            # enforces one-firing-at-a-time, so a loop with >= production
            # tokens is redundant.  Anything tighter would deadlock.
            if edge.delay < edge.production:
                raise ValidationError(
                    f"edge {edge.name!r}: self-loop with fewer tokens than "
                    "one firing produces deadlocks every schedule"
                )
            if not serialize_actors:
                raise ValidationError(
                    f"edge {edge.name!r}: self-loops require "
                    "serialize_actors=True in this compilation"
                )
            continue
        # Tightest dependency per instance pair, declared in numeric
        # firing order (lexicographic name order would interleave instance
        # 10 before instance 2 and can deadlock the declaration order).
        best: dict[tuple[int, int], int] = {}
        for k in range(q_prod):
            for r in range(edge.production):
                token = edge.delay + edge.production * k + r
                j = token // edge.consumption
                key = (k % q_prod, j % q_cons)
                tokens = j // q_cons
                if key not in best or tokens < best[key]:
                    best[key] = tokens
        for (k_index, j_index), tokens in sorted(best.items()):
            source = instance_name(edge.producer, k_index, q_prod)
            target = instance_name(edge.consumer, j_index, q_cons)
            design.connect(
                f"{edge.name}.{channel_index}",
                source,
                target,
                wire=wire_for_latency(
                    edge.latency, depth=tokens, tokens=tokens
                ),
            )
            channel_index += 1

    if serialize_actors:
        for actor in graph.actors:
            count = repetitions[actor.name]
            if count < 2:
                continue  # the process chain is already serial
            for index in range(count):
                succ = (index + 1) % count
                loopback = 1 if succ == 0 else 0
                design.connect(
                    f"__serial_{actor.name}_{index}",
                    instance_name(actor.name, index, count),
                    instance_name(actor.name, succ, count),
                    wire=wire_for_latency(
                        sync_latency, depth=loopback, tokens=loopback
                    ),
                )

    return design, repetitions


def sdf_to_system(
    graph: SdfGraph,
    serialize_actors: bool = True,
    sync_latency: int = 1,
) -> SdfCompilation:
    """Compile an SDF graph into the blocking-channel system model.

    Args:
        graph: A rate-consistent SDF graph.
        serialize_actors: Chain each actor's instances so one serial
            hardware unit executes all its firings per iteration (the
            paper's process semantics).  Disable for fully parallel
            instance hardware.
        sync_latency: Latency of the serialization channels.

    Raises:
        ValidationError: The graph is rate-inconsistent, or an actor has a
            self-loop edge that cannot be expressed (self-loops with
            enough delay are implied by serialization and are dropped;
            under-delayed ones would deadlock every schedule).
    """
    design, repetitions = expansion_design(
        graph, serialize_actors=serialize_actors, sync_latency=sync_latency
    )

    # The raw expansion is all worker instances (its testbench closure is
    # the caller's concern — see repro.dsl.sdf.streaming_design), so full
    # structural validation is deferred to that closure.
    system = design.build(validate=False)

    # Algorithm 1 over the expansion: the zero-token subgraph of a
    # consistent expansion is acyclic (every backward edge carries
    # tokens), so a deadlock-free ordering always exists and the paper's
    # algorithm finds a throughput-optimized one.
    from repro.ordering.algorithm import channel_ordering

    try:
        ordering = channel_ordering(system)
    except ValidationError:
        # No traversal starting point (degenerate single-actor graphs):
        # the declaration order is trivially fine there.
        ordering = ChannelOrdering.declaration_order(system)

    return SdfCompilation(
        system=system, repetitions=repetitions, ordering=ordering
    )
