"""The discrete-event simulation engine.

This is the reproduction's substitute for RTL (or SystemC) simulation of
the synthesized system: every process runs its Fig. 2(b) FSM — blocking
gets in statement order, a computation phase of ``latency`` cycles,
blocking puts in order — and channels implement the vendor primitives'
rendezvous protocol cycle-accurately.  The engine advances each process
until it blocks on a channel, resumes peers when transfers complete, and
stops after a target number of iterations or on deadlock.

Because these are exactly the semantics the Section 3 TMG abstracts, the
simulator serves as an end-to-end oracle: the steady-state iteration
period it measures must equal the analytic cycle time ``π(G)`` (tested in
``tests/integration``).  Unlike the TMG, it also carries real payloads, so
the MPEG-2 functional case study can execute its actual computation
through the blocking channels.

Execution model
---------------

The engine executes the :class:`~repro.ir.LoweredIR` array program of the
``(system, ordering)`` pair: each process steps through its
``op_kinds``/``op_args`` integer arrays (opcode compare + dense channel
id), and all channel state — pending rendezvous arrivals, FIFO items,
credits — lives in per-channel-id deque tables inside the engine.  No
string comparison, name lookup, or per-event object allocation happens on
the hot path; payload staging and trace emission are gated behind one
boolean each.  The pre-refactor chain-walking interpreter is preserved
verbatim as :class:`repro.sim.reference.ReferenceSimulator`; differential
tests assert both produce bit-identical :class:`SimulationResult`\\ s, and
``benchmarks/test_bench_ir.py`` enforces this engine's speedup over it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.core.system import ChannelOrdering, SystemGraph
from repro.errors import SimulationDeadlock, SimulationError
from repro.ir import OP_COMPUTE, OP_PUT, LoweredIR, lower
from repro.sim.process import Behavior, token_behavior
from repro.sim.trace import TraceEvent, TraceRecorder, TraceSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    iterations: dict[str, int]
    times: dict[str, int]
    completion_times: dict[str, list[int]]
    compute_cycles: dict[str, int]
    stall_cycles: dict[str, int]
    channel_transfers: dict[str, int]
    sink_payloads: dict[str, list[Any]] = field(default_factory=dict)
    trace: tuple[TraceEvent, ...] = ()
    #: Per-process, per-channel stall cycles: which channel each process
    #: spent its waiting time on (``stall_cycles`` is the row sum).
    stall_breakdown: dict[str, dict[str, int]] = field(default_factory=dict)

    def measured_cycle_time(self, process: str) -> Fraction | None:
        """Average steady-state iteration period of ``process``.

        Uses the second half of the completion-time series so the start-up
        transient does not bias the estimate.  ``None`` if too short.
        """
        times = self.completion_times.get(process, [])
        if len(times) < 4:
            return None
        half = len(times) // 2
        span = times[-1] - times[half]
        steps = len(times) - 1 - half
        if steps <= 0 or span < 0:
            return None
        return Fraction(span, steps)


class _Proc:
    """Mutable per-process execution state over the IR array program."""

    __slots__ = (
        "pid", "name", "ops", "args", "n", "latency", "behavior",
        "time", "index", "iteration", "blocked_on", "compute_cycles",
        "completion_times", "stall_by_cid", "inputs", "outputs", "sink_list",
    )

    def __init__(self, pid: int, name: str, ops: tuple[int, ...],
                 args: tuple[int, ...], latency: int, n_channels: int):
        self.pid = pid
        self.name = name
        self.ops = ops
        self.args = args
        self.n = len(ops)
        self.latency = latency
        self.behavior: Behavior = token_behavior
        self.time = 0
        self.index = 0
        self.iteration = 0
        self.blocked_on = -1  # channel id while waiting, -1 when runnable
        self.compute_cycles = 0
        self.completion_times: list[int] = []
        self.stall_by_cid = [0] * n_channels
        self.inputs: dict[str, Any] = {}
        self.outputs: dict[str, Any] = {}
        self.sink_list: list[Any] | None = None


class Simulator:
    """Cycle-level simulator of a system under a channel ordering.

    Args:
        system: The system to simulate.
        ordering: Statement orders (default: declaration order).
        behaviors: Optional functional behaviours per process name; see
            :data:`repro.sim.process.Behavior`.  Processes without one just
            synchronize.
        process_latencies: Optional per-process latency overrides.
        initial_payloads: Optional pre-loaded payloads per channel name
            (for channels with ``initial_tokens``).
        record_trace: Keep a full event trace (memory-heavy; debugging).
        sinks: Streaming trace sinks (see :mod:`repro.obs.sinks`); each
            receives every :class:`~repro.sim.trace.TraceEvent` as it is
            emitted.  Attaching sinks never changes simulation results.
        metrics: Optional :class:`repro.obs.MetricsRegistry`; end-of-run
            aggregates are recorded under the ``sim.*`` metric names
            (see ``docs/OBSERVABILITY.md``).  No hot-path cost.
    """

    def __init__(
        self,
        system: SystemGraph,
        ordering: ChannelOrdering | None = None,
        behaviors: Mapping[str, Behavior] | None = None,
        process_latencies: Mapping[str, int] | None = None,
        initial_payloads: Mapping[str, tuple[Any, ...]] | None = None,
        record_trace: bool = False,
        sinks: Sequence[TraceSink] = (),
        metrics: "MetricsRegistry | None" = None,
    ):
        from repro.lint import preflight

        self.system = system
        self.ordering = ordering or ChannelOrdering.declaration_order(system)
        # Structural pre-flight (ERM1xx + ERM302): subsumes the plain
        # ordering.validate() and rejects specifications that would
        # deadlock under *every* ordering before any cycle is simulated.
        preflight(system, self.ordering)
        ir = self.ir = lower(system, self.ordering)
        behaviors = behaviors or {}
        overrides = dict(process_latencies or {})
        payloads = initial_payloads or {}

        # Payload staging (behaviour dispatch, inputs/outputs dicts, sink
        # capture) only matters when someone supplies payloads; a pure
        # synchronization run skips that bookkeeping entirely.
        self._functional = bool(behaviors) or bool(payloads)

        n_channels = ir.n_channels
        self._ch_latency = ir.channel_latencies
        self._ch_buffered = ir.buffered
        self._producer_pid = ir.producers
        self._consumer_pid = ir.consumers
        self._transfers = [0] * n_channels
        # Rendezvous bookkeeping, indexed by channel id.
        self._pending_put: list[deque[tuple[int, Any]]] = [
            deque() for _ in range(n_channels)
        ]
        self._pending_get: list[deque[int]] = [deque() for _ in range(n_channels)]
        # Buffered (FIFO) bookkeeping, indexed by channel id.
        self._items: list[deque[tuple[int, Any]]] = [
            deque() for _ in range(n_channels)
        ]
        self._credits: list[deque[int]] = [deque() for _ in range(n_channels)]
        self._blocked_put: list[deque[tuple[int, Any]]] = [
            deque() for _ in range(n_channels)
        ]
        self._blocked_get: list[deque[int]] = [deque() for _ in range(n_channels)]
        for cid, channel_name in enumerate(ir.channels):
            preload = list(payloads.get(channel_name, ()))
            if ir.buffered[cid]:
                tokens = ir.initial_tokens[cid]
                if len(preload) > tokens:
                    raise SimulationError(
                        f"channel {channel_name!r}: more initial payloads "
                        f"({len(preload)}) than initial tokens ({tokens})"
                    )
                preload += [None] * (tokens - len(preload))
                items = self._items[cid]
                for payload in preload:
                    items.append((0, payload))
                credits = self._credits[cid]
                for _ in range(ir.effective_capacities[cid] - tokens):
                    credits.append(0)
            elif preload:
                raise SimulationError(
                    f"channel {channel_name!r}: rendezvous channels cannot "
                    "carry initial payloads"
                )

        sink_names = {p.name for p in system.sinks()}
        self._sink_payloads: dict[str, list[Any]] = {
            name: [] for name in ir.processes if name in sink_names
        }
        self._procs: list[_Proc] = []
        for pid, name in enumerate(ir.processes):
            proc = _Proc(
                pid,
                name,
                ir.op_kinds[pid],
                ir.op_args[pid],
                overrides.get(name, system.process(name).latency),
                n_channels,
            )
            behavior = behaviors.get(name)
            if behavior is not None:
                proc.behavior = behavior
            if name in self._sink_payloads:
                proc.sink_list = self._sink_payloads[name]
            self._procs.append(proc)

        self._trace = TraceRecorder(enabled=record_trace, sinks=sinks)
        self._trace_on = record_trace or bool(sinks)
        self._metrics = metrics

    # ------------------------------------------------------------------

    def run(
        self,
        iterations: int = 64,
        watch: str | None = None,
        max_steps: int | None = None,
    ) -> SimulationResult:
        """Run until the watched process completes ``iterations`` loops.

        Args:
            iterations: Target number of completed iterations.
            watch: Process whose iterations are counted (default: the
                first sink, else the first process).
            max_steps: Safety valve on engine steps (default scales with
                system size and iteration count).

        Raises:
            SimulationDeadlock: Every process is blocked on a rendezvous;
                the exception's ``cycle`` carries the circular wait.
        """
        if iterations < 1:
            raise SimulationError("iterations must be >= 1")
        watch = watch or self._default_watch()
        watch_pid = self.ir.process_index.get(watch)
        if watch_pid is None:
            raise SimulationError(f"unknown watch process {watch!r}")
        procs = self._procs
        budget = max_steps or (
            40 * (iterations + 4) * (len(procs) + self.ir.n_channels) + 1000
        )

        watched = procs[watch_pid]
        runnable: deque[int] = deque(range(len(procs)))
        steps = 0
        while watched.iteration < iterations:
            if not runnable:
                self._raise_deadlock()
            steps += 1
            if steps > budget:
                raise SimulationError(
                    f"simulation exceeded its step budget ({budget}); "
                    "raise max_steps for very long transients"
                )
            pid = runnable.popleft()
            proc = procs[pid]
            self._advance(proc, runnable)
            if proc.blocked_on < 0:
                # The process stopped at an iteration boundary, not on a
                # channel: keep it runnable (round-robin fairness).
                runnable.append(pid)
        result = self._collect()
        if self._metrics is not None:
            self._record_metrics(result, steps)
        return result

    # ------------------------------------------------------------------

    def _default_watch(self) -> str:
        sinks = self.system.sinks()
        if sinks:
            return sinks[0].name
        return self.system.process_names[0]

    def _advance(self, proc: _Proc, runnable: deque[int]) -> None:
        """Run one process until it blocks (or completes a full loop).

        Advancing stops at iteration boundaries too, so the runnable queue
        round-robins between processes and no single free-running process
        (e.g. a testbench source with buffered outputs) monopolizes the
        engine.
        """
        if proc.blocked_on >= 0:
            return
        ops = proc.ops
        args = proc.args
        n = proc.n
        channels = self.ir.channels
        functional = self._functional
        trace_on = self._trace_on
        ch_latency = self._ch_latency
        ch_buffered = self._ch_buffered
        while True:
            i = proc.index
            op = ops[i]
            if op == OP_COMPUTE:
                if functional:
                    produced = proc.behavior(proc.iteration, dict(proc.inputs))
                    proc.outputs = dict(produced) if produced else {}
                latency = proc.latency
                proc.time += latency
                proc.compute_cycles += latency
                if trace_on:
                    self._trace.record(proc.time, "compute", proc.name, None,
                                       proc.iteration, duration=latency)
            elif op == OP_PUT:
                cid = args[i]
                t = proc.time
                payload = proc.outputs.get(channels[cid]) if functional else None
                if ch_buffered[cid]:
                    credits = self._credits[cid]
                    if not credits:
                        self._blocked_put[cid].append((t, payload))
                        proc.blocked_on = cid
                        if trace_on:
                            self._trace.record(t, "block-put", proc.name,
                                               channels[cid], proc.iteration)
                        return
                    credit_time = credits.popleft()
                    start = t if t > credit_time else credit_time
                    done = start + ch_latency[cid]
                    self._items[cid].append((done, payload))
                    self._transfers[cid] += 1
                    # Anything between arrival and transfer start was
                    # spent waiting.
                    waited = start - t
                    if waited > 0:
                        proc.stall_by_cid[cid] += waited
                    proc.time = done
                    if trace_on:
                        self._trace.record(done, "put", proc.name,
                                           channels[cid], proc.iteration,
                                           wait=waited)
                    # The item is now queued; a consumer blocked on this
                    # channel may proceed (after this statement advances,
                    # in the common tail below).
                else:
                    pending_get = self._pending_get[cid]
                    if not pending_get:
                        self._pending_put[cid].append((t, payload))
                        proc.blocked_on = cid
                        if trace_on:
                            self._trace.record(t, "block-put", proc.name,
                                               channels[cid], proc.iteration)
                        return
                    # Rendezvous completes against the pending get.
                    get_time = pending_get.popleft()
                    start = t if t > get_time else get_time
                    done = start + ch_latency[cid]
                    self._transfers[cid] += 1
                    waited = start - t
                    if waited > 0:
                        proc.stall_by_cid[cid] += waited
                    proc.time = done
                    if trace_on:
                        self._trace.record(done, "put", proc.name,
                                           channels[cid], proc.iteration,
                                           wait=waited)
                    self._step(proc, functional)
                    # Resume the consumer that was waiting on its get.
                    self._resume(self._procs[self._consumer_pid[cid]], cid,
                                 done, start - get_time, "get", payload,
                                 runnable, peer_is_consumer=True)
                    if i + 1 == n:
                        # Wrapped: iteration boundary reached.
                        return
                    continue
            else:  # OP_GET
                cid = args[i]
                t = proc.time
                if ch_buffered[cid]:
                    items = self._items[cid]
                    if not items:
                        self._blocked_get[cid].append(t)
                        proc.blocked_on = cid
                        if trace_on:
                            self._trace.record(t, "block-get", proc.name,
                                               channels[cid], proc.iteration)
                        return
                    item_time, payload = items.popleft()
                    done = t if t > item_time else item_time
                    # The freed slot becomes available when the get
                    # completes.
                    self._credits[cid].append(done)
                    waited = done - t
                    if waited > 0:
                        proc.stall_by_cid[cid] += waited
                    proc.time = done
                    if functional:
                        proc.inputs[channels[cid]] = payload
                        if proc.sink_list is not None and payload is not None:
                            proc.sink_list.append(payload)
                    if trace_on:
                        self._trace.record(done, "get", proc.name,
                                           channels[cid], proc.iteration,
                                           wait=waited)
                    # A credit was released; a producer blocked on it may
                    # proceed (after this statement advances, in the
                    # common tail below).
                else:
                    pending_put = self._pending_put[cid]
                    if not pending_put:
                        self._pending_get[cid].append(t)
                        proc.blocked_on = cid
                        if trace_on:
                            self._trace.record(t, "block-get", proc.name,
                                               channels[cid], proc.iteration)
                        return
                    put_time, payload = pending_put.popleft()
                    start = t if t > put_time else put_time
                    done = start + ch_latency[cid]
                    self._transfers[cid] += 1
                    waited = start - t
                    if waited > 0:
                        proc.stall_by_cid[cid] += waited
                    proc.time = done
                    if functional:
                        proc.inputs[channels[cid]] = payload
                        if proc.sink_list is not None and payload is not None:
                            proc.sink_list.append(payload)
                    if trace_on:
                        self._trace.record(done, "get", proc.name,
                                           channels[cid], proc.iteration,
                                           wait=waited)
                    self._step(proc, functional)
                    # Resume the producer that was waiting on its put.
                    self._resume(self._procs[self._producer_pid[cid]], cid,
                                 done, start - put_time, "put", None,
                                 runnable, peer_is_consumer=False)
                    if i + 1 == n:
                        # Wrapped: iteration boundary reached.
                        return
                    continue
            # Advance past the completed statement (compute / buffered
            # put / buffered get land here; rendezvous paths advance
            # before resuming their peer and `continue` above).
            i += 1
            if i == n:
                proc.index = 0
                proc.iteration += 1
                proc.completion_times.append(proc.time)
                if functional:
                    proc.inputs = {}
                if op != OP_COMPUTE:
                    self._wake(op, cid, runnable)
                return
            proc.index = i
            if op != OP_COMPUTE:
                self._wake(op, cid, runnable)

    def _step(self, proc: _Proc, functional: bool) -> None:
        """Move past the current statement; wrap bumps the iteration."""
        i = proc.index + 1
        if i == proc.n:
            proc.index = 0
            proc.iteration += 1
            proc.completion_times.append(proc.time)
            if functional:
                proc.inputs = {}
        else:
            proc.index = i

    def _wake(self, op: int, cid: int, runnable: deque[int]) -> None:
        """Post-completion wake-ups on a buffered channel."""
        if op == OP_PUT:
            self._wake_blocked_get(cid, runnable)
        else:
            self._wake_blocked_put(cid, runnable)

    def _resume(
        self,
        peer: _Proc,
        cid: int,
        done: int,
        peer_wait: int,
        kind: str,
        payload: Any,
        runnable: deque[int],
        peer_is_consumer: bool,
    ) -> None:
        """A blocked peer's rendezvous completed: unblock and reschedule."""
        if peer.blocked_on != cid:
            channel_name = self.ir.channels[cid]
            role = "consumer" if peer_is_consumer else "producer"
            was = (
                self.ir.channels[peer.blocked_on]
                if peer.blocked_on >= 0 else None
            )
            raise SimulationError(
                f"protocol violation on {channel_name!r}: {role} "
                f"{peer.name!r} was not waiting (blocked on {was!r})"
            )
        if peer_wait > 0:
            peer.stall_by_cid[cid] += peer_wait
        peer.time = done
        if peer_is_consumer and self._functional:
            peer.inputs[self.ir.channels[cid]] = payload
            if peer.sink_list is not None and payload is not None:
                peer.sink_list.append(payload)
        peer.blocked_on = -1
        if self._trace_on:
            self._trace.record(done, kind, peer.name, self.ir.channels[cid],
                               peer.iteration, wait=peer_wait)
        self._step(peer, self._functional)
        runnable.append(peer.pid)

    def _wake_blocked_put(self, cid: int, runnable: deque[int]) -> None:
        """Try to complete the oldest blocked put after a credit release."""
        blocked = self._blocked_put[cid]
        credits = self._credits[cid]
        if not blocked or not credits:
            return
        t, payload = blocked.popleft()
        credit_time = credits.popleft()
        start = t if t > credit_time else credit_time
        done = start + self._ch_latency[cid]
        self._items[cid].append((done, payload))
        self._transfers[cid] += 1
        peer = self._procs[self._producer_pid[cid]]
        if peer.blocked_on != cid:
            raise SimulationError(
                f"protocol violation on {self.ir.channels[cid]!r}: blocked "
                f"put without a blocked producer"
            )
        peer_wait = start - t
        if peer_wait > 0:
            peer.stall_by_cid[cid] += peer_wait
        peer.time = done
        peer.blocked_on = -1
        if self._trace_on:
            self._trace.record(done, "put", peer.name, self.ir.channels[cid],
                               peer.iteration, wait=peer_wait)
        self._step(peer, self._functional)
        runnable.append(peer.pid)
        # The item just queued may satisfy a blocked get in turn.
        self._wake_blocked_get(cid, runnable)

    def _wake_blocked_get(self, cid: int, runnable: deque[int]) -> None:
        """Try to complete the oldest blocked get after an item arrival."""
        blocked = self._blocked_get[cid]
        items = self._items[cid]
        if not blocked or not items:
            return
        t = blocked.popleft()
        item_time, payload = items.popleft()
        done = t if t > item_time else item_time
        self._credits[cid].append(done)
        peer = self._procs[self._consumer_pid[cid]]
        if peer.blocked_on != cid:
            raise SimulationError(
                f"protocol violation on {self.ir.channels[cid]!r}: blocked "
                f"get without a blocked consumer"
            )
        peer_wait = done - t
        if peer_wait > 0:
            peer.stall_by_cid[cid] += peer_wait
        peer.time = done
        if self._functional:
            peer.inputs[self.ir.channels[cid]] = payload
            if peer.sink_list is not None and payload is not None:
                peer.sink_list.append(payload)
        peer.blocked_on = -1
        if self._trace_on:
            self._trace.record(done, "get", peer.name, self.ir.channels[cid],
                               peer.iteration, wait=peer_wait)
        self._step(peer, self._functional)
        runnable.append(peer.pid)
        # A credit was released by that get: maybe another put can proceed.
        self._wake_blocked_put(cid, runnable)

    # ------------------------------------------------------------------

    def _raise_deadlock(self) -> None:
        """Diagnose and raise the runtime deadlock: everyone is blocked."""
        ir = self.ir
        waiting = {
            proc.name: ir.channels[proc.blocked_on]
            for proc in self._procs
            if proc.blocked_on >= 0
        }
        # Wait-for edges: blocked process -> the peer of the channel.
        wait_for: dict[str, str] = {}
        for proc in self._procs:
            cid = proc.blocked_on
            if cid < 0:
                continue
            peer_pid = (
                ir.consumers[cid]
                if ir.producers[cid] == proc.pid else ir.producers[cid]
            )
            wait_for[proc.name] = ir.processes[peer_pid]
        cycle = _find_wait_cycle(wait_for)
        detail = ", ".join(f"{p} on {c}" for p, c in sorted(waiting.items()))
        raise SimulationDeadlock(
            f"simulation deadlock: all runnable processes are blocked ({detail})",
            cycle=cycle,
            waiting=waiting,
        )

    def _collect(self) -> SimulationResult:
        ir = self.ir
        return SimulationResult(
            iterations={p.name: p.iteration for p in self._procs},
            times={p.name: p.time for p in self._procs},
            completion_times={
                p.name: list(p.completion_times) for p in self._procs
            },
            compute_cycles={p.name: p.compute_cycles for p in self._procs},
            stall_cycles={p.name: sum(p.stall_by_cid) for p in self._procs},
            channel_transfers={
                name: self._transfers[cid]
                for cid, name in enumerate(ir.channels)
            },
            sink_payloads={k: list(v) for k, v in self._sink_payloads.items()},
            trace=self._trace.events(),
            stall_breakdown={
                p.name: row
                for p in self._procs
                if (row := {
                    ir.channels[cid]: cycles
                    for cid, cycles in enumerate(p.stall_by_cid)
                    if cycles
                })
            },
        )

    def _record_metrics(self, result: SimulationResult, steps: int) -> None:
        """End-of-run aggregates under the stable ``sim.*`` metric names."""
        metrics = self._metrics
        assert metrics is not None
        metrics.counter("sim.runs").add(1)
        metrics.counter("sim.steps").add(steps)
        metrics.counter("sim.iterations").add(sum(result.iterations.values()))
        metrics.counter("sim.transfers").add(
            sum(result.channel_transfers.values())
        )
        metrics.counter("sim.compute_cycles").add(
            sum(result.compute_cycles.values())
        )
        metrics.counter("sim.stall_cycles").add(
            sum(result.stall_cycles.values())
        )


def _find_wait_cycle(wait_for: dict[str, str]) -> list[str] | None:
    """Find a cycle in the (functional) wait-for graph."""
    state: dict[str, int] = {}
    for root in wait_for:
        if state.get(root):
            continue
        path: list[str] = []
        node = root
        while node in wait_for and state.get(node) is None:
            state[node] = 1
            path.append(node)
            node = wait_for[node]
        if state.get(node) == 1 and node in wait_for:
            return path[path.index(node):]
        for visited in path:
            state[visited] = 2
    return None


def simulate(
    system: SystemGraph,
    ordering: ChannelOrdering | None = None,
    iterations: int = 64,
    **kwargs: Any,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulator`."""
    return Simulator(system, ordering, **kwargs).run(iterations=iterations)
