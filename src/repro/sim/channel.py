"""Channel state for the discrete-event simulator.

Implements the cycle-level semantics of the blocking interface primitives
(the vendor library of Listing 1) exactly as the synthesized RTL behaves:

* **Rendezvous** (``capacity == 0``): a put and its matching get
  synchronize; the transfer starts when both sides have arrived and
  completes ``latency`` cycles later, when both sides resume.  This is the
  self-looping I/O state of the Fig. 2(b) FSM.
* **Buffered** (``capacity >= 1``, used for pre-loaded channels): the
  producer needs a free slot (credit) to start a transfer; the item becomes
  visible to the consumer ``latency`` cycles after the transfer starts; a
  get returns the slot.  ``initial_tokens`` items are available at time 0.

Arrivals pair strictly FIFO on both sides, matching the marked-graph
semantics of :mod:`repro.model.build`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.core.system import Channel
from repro.errors import SimulationError


@dataclass
class Rendezvous:
    """Outcome of offering one side of a transfer."""

    complete: bool
    time: int = 0
    payload: Any = None
    peer_wait: int = 0  # cycles the *other* side spent waiting, if it did


@dataclass
class ChannelState:
    """Mutable simulation state of one channel."""

    channel: Channel
    initial_payloads: tuple[Any, ...] = ()

    # Rendezvous bookkeeping.
    _pending_put: deque = field(default_factory=deque)  # (time, payload)
    _pending_get: deque = field(default_factory=deque)  # times
    # Buffered bookkeeping.
    _items: deque = field(default_factory=deque)  # (available_time, payload)
    _credits: deque = field(default_factory=deque)  # available times
    _blocked_put: deque = field(default_factory=deque)  # (time, payload)
    _blocked_get: deque = field(default_factory=deque)  # times

    transfers: int = 0

    def __post_init__(self) -> None:
        if self.buffered:
            payloads = list(self.initial_payloads)
            if len(payloads) > self.channel.initial_tokens:
                raise SimulationError(
                    f"channel {self.channel.name!r}: more initial payloads "
                    f"({len(payloads)}) than initial tokens "
                    f"({self.channel.initial_tokens})"
                )
            payloads += [None] * (self.channel.initial_tokens - len(payloads))
            for payload in payloads:
                self._items.append((0, payload))
            free = self.effective_capacity - self.channel.initial_tokens
            for _ in range(free):
                self._credits.append(0)
        elif self.initial_payloads:
            raise SimulationError(
                f"channel {self.channel.name!r}: rendezvous channels cannot "
                "carry initial payloads"
            )

    @property
    def buffered(self) -> bool:
        """Delegates to :attr:`Channel.is_buffered` — the promotion of a
        pre-loaded ``capacity == 0`` channel to a FIFO is declared on the
        channel itself, not re-derived here."""
        return self.channel.is_buffered

    @property
    def effective_capacity(self) -> int:
        return self.channel.effective_capacity

    # ------------------------------------------------------------------
    # Rendezvous protocol
    # ------------------------------------------------------------------

    def offer_put(self, time: int, payload: Any) -> Rendezvous:
        """Producer arrives at its put statement at ``time``.

        Returns a completed rendezvous when the transfer can finish now
        (peer already arrived / credit available); otherwise registers the
        arrival and reports ``complete=False`` — the producer blocks and
        will be resumed by the engine.
        """
        if self.buffered:
            if self._credits:
                credit_time = self._credits.popleft()
                start = max(time, credit_time)
                done = start + self.channel.latency
                self._items.append((done, payload))
                self.transfers += 1
                return Rendezvous(True, done, peer_wait=max(0, time - credit_time))
            self._blocked_put.append((time, payload))
            return Rendezvous(False)
        if self._pending_get:
            get_time = self._pending_get.popleft()
            start = max(time, get_time)
            done = start + self.channel.latency
            self.transfers += 1
            return Rendezvous(
                True, done, payload=payload, peer_wait=max(0, start - get_time)
            )
        self._pending_put.append((time, payload))
        return Rendezvous(False)

    def offer_get(self, time: int) -> Rendezvous:
        """Consumer arrives at its get statement at ``time``."""
        if self.buffered:
            if self._items:
                item_time, payload = self._items.popleft()
                done = max(time, item_time)
                # The freed slot becomes available when the get completes.
                self._release_credit(done)
                return Rendezvous(True, done, payload=payload)
            self._blocked_get.append(time)
            return Rendezvous(False)
        if self._pending_put:
            put_time, payload = self._pending_put.popleft()
            start = max(time, put_time)
            done = start + self.channel.latency
            self.transfers += 1
            return Rendezvous(
                True, done, payload=payload, peer_wait=max(0, start - put_time)
            )
        self._pending_get.append(time)
        return Rendezvous(False)

    # ------------------------------------------------------------------
    # Wake-ups for buffered channels
    # ------------------------------------------------------------------

    def _release_credit(self, time: int) -> None:
        """Return a slot; if a producer is blocked on it, it can now be
        resumed by the engine via :meth:`resolve_blocked_put`."""
        self._credits.append(time)

    def resolve_blocked_put(self) -> Rendezvous | None:
        """Try to complete the oldest blocked put (engine calls this after
        a get released a credit)."""
        if not self._blocked_put or not self._credits:
            return None
        time, payload = self._blocked_put.popleft()
        credit_time = self._credits.popleft()
        start = max(time, credit_time)
        done = start + self.channel.latency
        self._items.append((done, payload))
        self.transfers += 1
        return Rendezvous(True, done, peer_wait=max(0, start - time))

    def resolve_blocked_get(self) -> Rendezvous | None:
        """Try to complete the oldest blocked get (engine calls this after
        a put appended an item)."""
        if not self._blocked_get or not self._items:
            return None
        time = self._blocked_get.popleft()
        item_time, payload = self._items.popleft()
        done = max(time, item_time)
        self._release_credit(done)
        return Rendezvous(True, done, payload=payload, peer_wait=max(0, done - time))

    # ------------------------------------------------------------------
    # Introspection (deadlock diagnosis)
    # ------------------------------------------------------------------

    def waiting_put(self) -> bool:
        return bool(self._pending_put or self._blocked_put)

    def waiting_get(self) -> bool:
        return bool(self._pending_get or self._blocked_get)
