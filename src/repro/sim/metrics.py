"""Metrics derived from simulation results.

Bridges the simulator to the analytic model: steady-state throughput,
per-process utilization, and agreement checks against the TMG cycle time.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.sim.engine import SimulationResult


@dataclass(frozen=True)
class ProcessUtilization:
    """Cycle budget breakdown of one process over the measured run.

    Time base: all simulator timestamps live on one shared virtual clock
    starting at cycle 0 (see :mod:`repro.sim.trace`), so ``final_time`` —
    the time of this process's *own* last completed statement — is the
    length of the process's active window on that clock.  Processes stop
    at different points (a source runs ahead of the watched sink), so
    ``final_time`` legitimately differs per process; dividing each
    process's cycle counts by its own ``final_time`` keeps the fractions
    comparable without assuming a common end-of-run instant.
    """

    process: str
    compute_cycles: int
    stall_cycles: int
    final_time: int

    @property
    def utilization(self) -> float:
        """Fraction of the process's active window spent computing."""
        if self.final_time == 0:
            return 0.0
        return self.compute_cycles / self.final_time

    @property
    def stall_fraction(self) -> float:
        if self.final_time == 0:
            return 0.0
        return self.stall_cycles / self.final_time


def throughput(result: SimulationResult, process: str) -> Fraction | None:
    """Steady-state items per cycle at ``process`` (reciprocal of the
    measured iteration period)."""
    period = result.measured_cycle_time(process)
    if period is None or period == 0:
        return None
    return 1 / period


def utilizations(result: SimulationResult) -> dict[str, ProcessUtilization]:
    """Per-process utilization summary."""
    return {
        name: ProcessUtilization(
            process=name,
            compute_cycles=result.compute_cycles[name],
            stall_cycles=result.stall_cycles[name],
            final_time=result.times[name],
        )
        for name in result.iterations
    }


def agreement_error(
    result: SimulationResult, process: str, predicted_cycle_time: Fraction | float
) -> float | None:
    """Relative error between measured and predicted cycle time.

    The headline validation of the reproduction: the TMG prediction and the
    cycle-accurate simulation must agree (0.0 in exact steady state).
    """
    measured = result.measured_cycle_time(process)
    if measured is None or predicted_cycle_time == 0:
        return None
    return abs(float(measured) - float(predicted_cycle_time)) / float(
        predicted_cycle_time
    )
