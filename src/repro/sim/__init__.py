"""Discrete-event simulator: the RTL/SystemC-simulation substitute.

Executes a system cycle-accurately under the blocking rendezvous protocol
(Fig. 2(b) FSM semantics) with optional functional payloads, measures
throughput and stalls, and detects runtime deadlocks with a wait-for-cycle
diagnosis.
"""

from repro.sim.batch import (
    BatchLane,
    BatchSimulator,
    batch_enabled_by_env,
    simulate_batch,
)
from repro.sim.channel import ChannelState, Rendezvous
from repro.sim.engine import SimulationResult, Simulator, simulate
from repro.sim.metrics import (
    ProcessUtilization,
    agreement_error,
    throughput,
    utilizations,
)
from repro.sim.process import Behavior, ProcessState, StallStats, token_behavior
from repro.sim.reference import ReferenceSimulator
from repro.sim.trace import TraceEvent, TraceRecorder, TraceSink, format_trace

__all__ = [
    "BatchLane",
    "BatchSimulator",
    "Behavior",
    "ChannelState",
    "ProcessState",
    "ProcessUtilization",
    "ReferenceSimulator",
    "Rendezvous",
    "SimulationResult",
    "Simulator",
    "StallStats",
    "TraceEvent",
    "TraceRecorder",
    "TraceSink",
    "agreement_error",
    "batch_enabled_by_env",
    "format_trace",
    "simulate",
    "simulate_batch",
    "throughput",
    "token_behavior",
    "utilizations",
]
