"""Event traces for simulation debugging and reporting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class TraceEvent:
    """One simulator event.

    ``kind`` is one of ``compute``, ``put``, ``get``, ``block-put``,
    ``block-get``; ``channel`` is ``None`` for compute events; ``time`` is
    the process-local completion time of the event.
    """

    time: int
    kind: str
    process: str
    channel: str | None
    iteration: int


class TraceRecorder:
    """Collects :class:`TraceEvent` records when enabled (no-op otherwise)."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._events: list[TraceEvent] = []

    def record(
        self,
        time: int,
        kind: str,
        process: str,
        channel: str | None,
        iteration: int,
    ) -> None:
        if self.enabled:
            self._events.append(TraceEvent(time, kind, process, channel, iteration))

    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(sorted(self._events, key=lambda e: (e.time, e.process)))


def format_trace(events: Iterable[TraceEvent], limit: int = 100) -> str:
    """Human-readable rendering of (the first ``limit``) trace events."""
    lines = []
    for i, event in enumerate(events):
        if i >= limit:
            lines.append(f"... ({i}+ events)")
            break
        where = f" {event.channel}" if event.channel else ""
        lines.append(
            f"[{event.time:>8}] {event.process:<12} {event.kind}{where} "
            f"(iter {event.iteration})"
        )
    return "\n".join(lines)
