"""Event traces for simulation debugging, reporting, and export.

The simulator emits one :class:`TraceEvent` per completed (or blocking)
statement.  :class:`TraceRecorder` is the funnel between the engine and
whoever wants the events: it can keep them in memory (the classic
``record_trace=True`` behaviour) and/or stream them to any number of
*sinks* — objects with an ``emit(event)`` method, see
:mod:`repro.obs.sinks` for the stock implementations (in-memory, JSONL
streaming, bounded ring buffer).  With neither enabled the recorder is a
single attribute check per event, so an uninstrumented simulation pays
essentially nothing (guarded by ``benchmarks/test_bench_obs_overhead.py``).

Time base
---------

All event times share **one global virtual clock**: cycle 0 is the start
of the simulation, and every ``time`` is a completion time on that shared
axis.  Although each process keeps its own ``ProcessState.time`` cursor,
those cursors only ever advance through rendezvous outcomes computed from
*both* endpoints' clocks, so timestamps are directly comparable across
processes (and exported traces align without per-process offsets).  What
*is* process-local is the final value of the cursor: a process's last
event time is the moment *it* finished its last statement, which can
differ between processes (a testbench source may run ahead of the sink).
Utilization metrics in :mod:`repro.sim.metrics` therefore divide by the
process's own final time, not by a global end-of-run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence


@dataclass(frozen=True)
class TraceEvent:
    """One simulator event.

    Attributes:
        time: Completion time of the event on the shared simulation clock
            (cycle 0 = simulation start; comparable across processes — see
            the module docstring on the time base).  For ``block-*`` kinds
            it is the *arrival* time at the statement that blocked.
        kind: One of ``compute``, ``put``, ``get``, ``block-put``,
            ``block-get``.
        process: The process executing the statement.
        channel: The channel touched (``None`` for compute events).
        iteration: The process-local iteration the statement belongs to.
        duration: Busy cycles the event occupied ending at ``time``
            (``latency`` for compute events, 0 otherwise).
        wait: Stall cycles attributed to this completion — how long the
            process waited on the channel before its transfer could start.
            Summed per process this equals ``SimulationResult.stall_cycles``
            (property-tested in ``tests/obs``).
    """

    time: int
    kind: str
    process: str
    channel: str | None
    iteration: int
    duration: int = 0
    wait: int = 0


class TraceSink(Protocol):
    """Anything that accepts a stream of :class:`TraceEvent`.

    The stock sinks live in :mod:`repro.obs.sinks`; any object with this
    shape can be passed to :class:`Simulator` via ``sinks=...``.
    """

    def emit(self, event: TraceEvent) -> None: ...  # pragma: no cover

    def close(self) -> None: ...  # pragma: no cover


class TraceRecorder:
    """Funnels :class:`TraceEvent` records to memory and/or sinks.

    Args:
        enabled: Keep every event in memory (``events()`` returns them).
        sinks: Streaming sinks receiving each event as it happens, in
            emission order (which is causal but not globally time-sorted;
            ``events()`` sorts, streaming consumers should too if they
            need strict time order).
    """

    def __init__(self, enabled: bool = False,
                 sinks: Sequence[TraceSink] = ()):
        self.enabled = enabled
        self._sinks = tuple(sinks)
        self._events: list[TraceEvent] = []
        #: Hot-path guard: one truthiness check when tracing is off.
        self._active = enabled or bool(self._sinks)

    def record(
        self,
        time: int,
        kind: str,
        process: str,
        channel: str | None,
        iteration: int,
        duration: int = 0,
        wait: int = 0,
    ) -> None:
        if not self._active:
            return
        event = TraceEvent(time, kind, process, channel, iteration,
                           duration, wait)
        if self.enabled:
            self._events.append(event)
        for sink in self._sinks:
            sink.emit(event)

    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(sorted(self._events, key=lambda e: (e.time, e.process)))

    def close(self) -> None:
        """Close every attached sink (flushes streaming sinks)."""
        for sink in self._sinks:
            sink.close()


def format_trace(events: Iterable[TraceEvent], limit: int = 100) -> str:
    """Human-readable rendering of (the first ``limit``) trace events."""
    lines = []
    for i, event in enumerate(events):
        if i >= limit:
            lines.append(f"... ({i}+ events)")
            break
        where = f" {event.channel}" if event.channel else ""
        stalled = f" (+{event.wait} stalled)" if event.wait else ""
        lines.append(
            f"[{event.time:>8}] {event.process:<12} {event.kind}{where} "
            f"(iter {event.iteration}){stalled}"
        )
    return "\n".join(lines)
