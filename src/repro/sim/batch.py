"""Batched, vectorized simulation over a shared :class:`~repro.ir.LoweredIR`.

The DSE loop evaluates hundreds of near-identical candidates per
iteration: single-swap neighbors that share the compiled ``(system,
ordering)`` structure and differ only in what an implementation selection
changes — per-process compute latencies — or in what buffer sizing
changes — per-channel FIFO capacities.  The scalar engine re-runs the
whole interpreter once per candidate; this module runs **B candidates in
lock-step over one compiled program**.

Why lock-step is exact
----------------------

The scalar engine's *control path* — which process the scheduler picks,
where it blocks, which peer a completed transfer wakes — depends only on
statement opcodes and queue occupancies (counts), never on timestamps:
``proc.time`` feeds arithmetic (``done = max(t, peer) + latency``) but no
branch.  Process latencies therefore cannot change the schedule, only the
numbers flowing through it.  So a batch of lanes sharing the structure
*and* the channel capacities (capacities do gate blocking) replays the
identical control path, and the per-lane state collapses to dense
``(B,)`` integer vectors: every scalar ``max``/``+`` becomes one
``numpy`` vector operation covering all lanes at once.

Lanes that also override channel capacities are grouped by capacity
signature; each group is one lock-step run over its own (memoized)
lowering.  In the common DSE case — latency-only neighbors — that is one
compile and one control-path execution for the whole batch.

Correctness is enforced, not assumed: every lane is differential-tested
bit-identical to :class:`repro.sim.ReferenceSimulator` (results, deadlock
diagnoses, traces) in ``tests/sim/test_batch.py``, and
``benchmarks/test_bench_simd.py`` gates the >= 5x aggregate throughput
this engine exists for.

The batch engine is synchronization-only: functional payloads
(``behaviors`` / ``initial_payloads``) stay on the scalar engine, whose
per-lane payload staging the vector form cannot share.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Mapping, Sequence, Union

import numpy as np
from numpy.typing import NDArray

from repro.core.system import ChannelOrdering, SystemGraph
from repro.errors import SimulationDeadlock, SimulationError
from repro.ir import OP_COMPUTE, OP_PUT, LoweredIR, lower
from repro.sim.engine import SimulationResult, _find_wait_cycle
from repro.sim.trace import TraceRecorder, TraceSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

IntVec = NDArray[np.int64]

#: One lane's outcome: a result, or the deadlock that ended it (only
#: returned when running with ``on_deadlock="capture"``).
LaneOutcome = Union[SimulationResult, SimulationDeadlock]


def batch_enabled_by_env(default: bool = False) -> bool:
    """Resolve the ``ERMES_SIM_BATCH`` environment knob.

    ``1``/``true``/``yes``/``on`` (case-insensitive) enable batching;
    ``0``/``false``/``no``/``off`` disable it; unset/empty returns
    ``default``.
    """
    raw = os.environ.get("ERMES_SIM_BATCH", "").strip().lower()
    if not raw:
        return default
    return raw in {"1", "true", "yes", "on"}


@dataclass(frozen=True)
class BatchLane:
    """Per-lane overrides: exactly what DSE varies between neighbors.

    Attributes:
        process_latencies: Compute-latency overrides by process name
            (implementation selections).  Unlisted processes keep the
            system's declared latency.  Latencies never change the
            schedule, so any mix batches into one lock-step run.
        channel_capacities: FIFO-capacity overrides by channel name
            (buffer sizing).  Capacities gate blocking, so lanes are
            grouped by capacity signature; each distinct signature costs
            one extra control-path execution.
        record_trace: Keep this lane's full event trace in memory
            (returned on its :class:`~repro.sim.SimulationResult`).
        sinks: Streaming trace sinks for this lane; each receives the
            lane's :class:`~repro.sim.TraceEvent` stream exactly as the
            scalar engine would emit it.
    """

    process_latencies: Mapping[str, int] | None = None
    channel_capacities: Mapping[str, int] | None = None
    record_trace: bool = False
    sinks: Sequence[TraceSink] = ()


class _BProc:
    """Per-process execution state with ``(B,)``-vector clocks."""

    __slots__ = (
        "pid", "name", "ops", "args", "n", "lat",
        "time", "index", "iteration", "blocked_on", "computes",
        "completion_times", "stall",
    )

    def __init__(
        self,
        pid: int,
        name: str,
        ops: tuple[int, ...],
        args: tuple[int, ...],
        lat: IntVec,
        n_channels: int,
        n_lanes: int,
    ):
        self.pid = pid
        self.name = name
        self.ops = ops
        self.args = args
        self.n = len(ops)
        self.lat = lat  # (B,) per-lane compute latency
        self.time: IntVec = np.zeros(n_lanes, dtype=np.int64)
        self.index = 0
        self.iteration = 0
        self.blocked_on = -1  # channel id while waiting, -1 when runnable
        self.computes = 0  # compute statements executed (shared count)
        self.completion_times: list[IntVec] = []
        # (n_channels, B): per-channel stall cycles, one row per cid so
        # the hot-path accumulation is a contiguous vector add.
        self.stall: IntVec = np.zeros((n_channels, n_lanes), dtype=np.int64)


class _GroupRun:
    """One lock-step execution: lanes sharing structure *and* capacities.

    A faithful port of :class:`repro.sim.Simulator`'s control path with
    every per-lane scalar time replaced by a ``(B,)`` vector.  The
    branch structure is kept line-for-line so the two engines cannot
    drift apart silently; differential tests enforce bit-identity.
    """

    def __init__(
        self,
        system: SystemGraph,
        ir: LoweredIR,
        lanes: Sequence[BatchLane],
    ):
        self.system = system
        self.ir = ir
        self.n_lanes = len(lanes)
        n_channels = ir.n_channels
        n_lanes = self.n_lanes

        self._ch_latency = ir.channel_latencies
        self._ch_buffered = ir.buffered
        self._producer_pid = ir.producers
        self._consumer_pid = ir.consumers
        self._transfers = [0] * n_channels
        # Rendezvous bookkeeping, indexed by channel id; every entry is a
        # (B,) vector of per-lane arrival times.
        self._pending_put: list[deque[IntVec]] = [
            deque() for _ in range(n_channels)
        ]
        self._pending_get: list[deque[IntVec]] = [
            deque() for _ in range(n_channels)
        ]
        # Buffered (FIFO) bookkeeping, indexed by channel id.
        self._items: list[deque[IntVec]] = [deque() for _ in range(n_channels)]
        self._credits: list[deque[IntVec]] = [
            deque() for _ in range(n_channels)
        ]
        self._blocked_put: list[deque[IntVec]] = [
            deque() for _ in range(n_channels)
        ]
        self._blocked_get: list[deque[IntVec]] = [
            deque() for _ in range(n_channels)
        ]
        # Entries preloaded at t=0 are only ever read (np.maximum), never
        # mutated, so one shared zero vector serves every slot.
        zeros: IntVec = np.zeros(n_lanes, dtype=np.int64)
        for cid in range(n_channels):
            if ir.buffered[cid]:
                tokens = ir.initial_tokens[cid]
                items = self._items[cid]
                for _ in range(tokens):
                    items.append(zeros)
                credits = self._credits[cid]
                for _ in range(ir.effective_capacities[cid] - tokens):
                    credits.append(zeros)

        base_latencies = system.process_latencies()
        self._procs: list[_BProc] = []
        for pid, name in enumerate(ir.processes):
            default = base_latencies[name]
            lat = np.fromiter(
                (
                    (lane.process_latencies or {}).get(name, default)
                    for lane in lanes
                ),
                dtype=np.int64,
                count=n_lanes,
            )
            self._procs.append(
                _BProc(
                    pid, name, ir.op_kinds[pid], ir.op_args[pid],
                    lat, n_channels, n_lanes,
                )
            )

        # Per-lane trace plumbing; the hot path pays one boolean when no
        # lane traces (mirrors the scalar engine's single-flag gate).
        self._recorders: list[TraceRecorder | None] = [
            TraceRecorder(enabled=lane.record_trace, sinks=lane.sinks)
            if lane.record_trace or lane.sinks else None
            for lane in lanes
        ]
        self._traced: list[tuple[int, TraceRecorder]] = [
            (li, recorder)
            for li, recorder in enumerate(self._recorders)
            if recorder is not None
        ]
        self._trace_on = bool(self._traced)
        self.steps = 0

    # ------------------------------------------------------------------

    def run(
        self,
        iterations: int,
        watch_pid: int,
        max_steps: int | None,
    ) -> None:
        """Advance every lane until the watched process completes
        ``iterations`` loops (raises :class:`SimulationDeadlock` when the
        shared control path deadlocks — all lanes together, since the
        schedule is latency-independent)."""
        procs = self._procs
        budget = max_steps or (
            40 * (iterations + 4) * (len(procs) + self.ir.n_channels) + 1000
        )
        watched = procs[watch_pid]
        runnable: deque[int] = deque(range(len(procs)))
        steps = 0
        while watched.iteration < iterations:
            if not runnable:
                self.steps = steps
                self._raise_deadlock()
            steps += 1
            if steps > budget:
                raise SimulationError(
                    f"simulation exceeded its step budget ({budget}); "
                    "raise max_steps for very long transients"
                )
            pid = runnable.popleft()
            proc = procs[pid]
            self._advance(proc, runnable)
            if proc.blocked_on < 0:
                runnable.append(pid)
        self.steps = steps

    # ------------------------------------------------------------------

    def _record(
        self,
        time: IntVec,
        kind: str,
        process: str,
        channel: str | None,
        iteration: int,
        duration: IntVec | None = None,
        wait: IntVec | None = None,
    ) -> None:
        """Fan a vector event out to the lanes that trace."""
        for li, recorder in self._traced:
            recorder.record(
                int(time[li]), kind, process, channel, iteration,
                duration=int(duration[li]) if duration is not None else 0,
                wait=int(wait[li]) if wait is not None else 0,
            )

    def _advance(self, proc: _BProc, runnable: deque[int]) -> None:
        """Run one process until it blocks (or completes a full loop).

        Structurally identical to ``Simulator._advance`` — same branches,
        same queue discipline — with vectorized time arithmetic.
        """
        if proc.blocked_on >= 0:
            return
        ops = proc.ops
        args = proc.args
        n = proc.n
        channels = self.ir.channels
        trace_on = self._trace_on
        ch_latency = self._ch_latency
        ch_buffered = self._ch_buffered
        maximum = np.maximum
        while True:
            i = proc.index
            op = ops[i]
            if op == OP_COMPUTE:
                lat = proc.lat
                proc.time = proc.time + lat
                proc.computes += 1
                if trace_on:
                    self._record(proc.time, "compute", proc.name, None,
                                 proc.iteration, duration=lat)
            elif op == OP_PUT:
                cid = args[i]
                t = proc.time
                if ch_buffered[cid]:
                    credits = self._credits[cid]
                    if not credits:
                        self._blocked_put[cid].append(t)
                        proc.blocked_on = cid
                        if trace_on:
                            self._record(t, "block-put", proc.name,
                                         channels[cid], proc.iteration)
                        return
                    credit_time = credits.popleft()
                    start = maximum(t, credit_time)
                    done = start + ch_latency[cid]
                    self._items[cid].append(done)
                    self._transfers[cid] += 1
                    waited = start - t
                    proc.stall[cid] += waited
                    proc.time = done
                    if trace_on:
                        self._record(done, "put", proc.name, channels[cid],
                                     proc.iteration, wait=waited)
                else:
                    pending_get = self._pending_get[cid]
                    if not pending_get:
                        self._pending_put[cid].append(t)
                        proc.blocked_on = cid
                        if trace_on:
                            self._record(t, "block-put", proc.name,
                                         channels[cid], proc.iteration)
                        return
                    get_time = pending_get.popleft()
                    start = maximum(t, get_time)
                    done = start + ch_latency[cid]
                    self._transfers[cid] += 1
                    proc.stall[cid] += start - t
                    proc.time = done
                    if trace_on:
                        self._record(done, "put", proc.name, channels[cid],
                                     proc.iteration, wait=start - t)
                    self._step(proc)
                    self._resume(self._procs[self._consumer_pid[cid]], cid,
                                 done, start - get_time, "get", runnable,
                                 peer_is_consumer=True)
                    if i + 1 == n:
                        return
                    continue
            else:  # OP_GET
                cid = args[i]
                t = proc.time
                if ch_buffered[cid]:
                    items = self._items[cid]
                    if not items:
                        self._blocked_get[cid].append(t)
                        proc.blocked_on = cid
                        if trace_on:
                            self._record(t, "block-get", proc.name,
                                         channels[cid], proc.iteration)
                        return
                    item_time = items.popleft()
                    done = maximum(t, item_time)
                    self._credits[cid].append(done)
                    proc.stall[cid] += done - t
                    proc.time = done
                    if trace_on:
                        self._record(done, "get", proc.name, channels[cid],
                                     proc.iteration, wait=done - t)
                else:
                    pending_put = self._pending_put[cid]
                    if not pending_put:
                        self._pending_get[cid].append(t)
                        proc.blocked_on = cid
                        if trace_on:
                            self._record(t, "block-get", proc.name,
                                         channels[cid], proc.iteration)
                        return
                    put_time = pending_put.popleft()
                    start = maximum(t, put_time)
                    done = start + ch_latency[cid]
                    self._transfers[cid] += 1
                    proc.stall[cid] += start - t
                    proc.time = done
                    if trace_on:
                        self._record(done, "get", proc.name, channels[cid],
                                     proc.iteration, wait=start - t)
                    self._step(proc)
                    self._resume(self._procs[self._producer_pid[cid]], cid,
                                 done, start - put_time, "put", runnable,
                                 peer_is_consumer=False)
                    if i + 1 == n:
                        return
                    continue
            i += 1
            if i == n:
                proc.index = 0
                proc.iteration += 1
                proc.completion_times.append(proc.time)
                if op != OP_COMPUTE:
                    self._wake(op, cid, runnable)
                return
            proc.index = i
            if op != OP_COMPUTE:
                self._wake(op, cid, runnable)

    def _step(self, proc: _BProc) -> None:
        """Move past the current statement; wrap bumps the iteration."""
        i = proc.index + 1
        if i == proc.n:
            proc.index = 0
            proc.iteration += 1
            proc.completion_times.append(proc.time)
        else:
            proc.index = i

    def _wake(self, op: int, cid: int, runnable: deque[int]) -> None:
        """Post-completion wake-ups on a buffered channel."""
        if op == OP_PUT:
            self._wake_blocked_get(cid, runnable)
        else:
            self._wake_blocked_put(cid, runnable)

    def _resume(
        self,
        peer: _BProc,
        cid: int,
        done: IntVec,
        peer_wait: IntVec,
        kind: str,
        runnable: deque[int],
        peer_is_consumer: bool,
    ) -> None:
        """A blocked peer's rendezvous completed: unblock and reschedule."""
        if peer.blocked_on != cid:
            channel_name = self.ir.channels[cid]
            role = "consumer" if peer_is_consumer else "producer"
            was = (
                self.ir.channels[peer.blocked_on]
                if peer.blocked_on >= 0 else None
            )
            raise SimulationError(
                f"protocol violation on {channel_name!r}: {role} "
                f"{peer.name!r} was not waiting (blocked on {was!r})"
            )
        peer.stall[cid] += peer_wait
        peer.time = done
        peer.blocked_on = -1
        if self._trace_on:
            self._record(done, kind, peer.name, self.ir.channels[cid],
                         peer.iteration, wait=peer_wait)
        self._step(peer)
        runnable.append(peer.pid)

    def _wake_blocked_put(self, cid: int, runnable: deque[int]) -> None:
        """Try to complete the oldest blocked put after a credit release."""
        blocked = self._blocked_put[cid]
        credits = self._credits[cid]
        if not blocked or not credits:
            return
        t = blocked.popleft()
        credit_time = credits.popleft()
        start = np.maximum(t, credit_time)
        done = start + self._ch_latency[cid]
        self._items[cid].append(done)
        self._transfers[cid] += 1
        peer = self._procs[self._producer_pid[cid]]
        if peer.blocked_on != cid:
            raise SimulationError(
                f"protocol violation on {self.ir.channels[cid]!r}: blocked "
                f"put without a blocked producer"
            )
        peer_wait = start - t
        peer.stall[cid] += peer_wait
        peer.time = done
        peer.blocked_on = -1
        if self._trace_on:
            self._record(done, "put", peer.name, self.ir.channels[cid],
                         peer.iteration, wait=peer_wait)
        self._step(peer)
        runnable.append(peer.pid)
        self._wake_blocked_get(cid, runnable)

    def _wake_blocked_get(self, cid: int, runnable: deque[int]) -> None:
        """Try to complete the oldest blocked get after an item arrival."""
        blocked = self._blocked_get[cid]
        items = self._items[cid]
        if not blocked or not items:
            return
        t = blocked.popleft()
        item_time = items.popleft()
        done = np.maximum(t, item_time)
        self._credits[cid].append(done)
        peer = self._procs[self._consumer_pid[cid]]
        if peer.blocked_on != cid:
            raise SimulationError(
                f"protocol violation on {self.ir.channels[cid]!r}: blocked "
                f"get without a blocked consumer"
            )
        peer_wait = done - t
        peer.stall[cid] += peer_wait
        peer.time = done
        peer.blocked_on = -1
        if self._trace_on:
            self._record(done, "get", peer.name, self.ir.channels[cid],
                         peer.iteration, wait=peer_wait)
        self._step(peer)
        runnable.append(peer.pid)
        self._wake_blocked_put(cid, runnable)

    # ------------------------------------------------------------------

    def _raise_deadlock(self) -> None:
        """Diagnose and raise the runtime deadlock: everyone is blocked.

        The schedule is shared, so a deadlock hits every lane of the
        group at once with the identical diagnosis the scalar engine
        produces per lane.
        """
        ir = self.ir
        waiting = {
            proc.name: ir.channels[proc.blocked_on]
            for proc in self._procs
            if proc.blocked_on >= 0
        }
        wait_for: dict[str, str] = {}
        for proc in self._procs:
            cid = proc.blocked_on
            if cid < 0:
                continue
            peer_pid = (
                ir.consumers[cid]
                if ir.producers[cid] == proc.pid else ir.producers[cid]
            )
            wait_for[proc.name] = ir.processes[peer_pid]
        cycle = _find_wait_cycle(wait_for)
        detail = ", ".join(f"{p} on {c}" for p, c in sorted(waiting.items()))
        raise SimulationDeadlock(
            f"simulation deadlock: all runnable processes are blocked ({detail})",
            cycle=cycle,
            waiting=waiting,
        )

    def collect(self) -> list[SimulationResult]:
        """Per-lane results, bit-identical to the scalar engine's."""
        ir = self.ir
        procs = self._procs
        sink_names = {p.name for p in self.system.sinks()}
        sink_procs = [name for name in ir.processes if name in sink_names]
        transfers = {
            name: self._transfers[cid] for cid, name in enumerate(ir.channels)
        }
        # Pre-decode the vector state once: python-int conversion per lane
        # is the only per-lane cost.
        times = {p.name: p.time.tolist() for p in procs}
        completions = {
            p.name: (
                np.stack(p.completion_times, axis=0)
                if p.completion_times
                else np.zeros((0, self.n_lanes), dtype=np.int64)
            )
            for p in procs
        }
        compute = {p.name: (p.lat * p.computes).tolist() for p in procs}
        stall_total = {p.name: p.stall.sum(axis=0).tolist() for p in procs}
        stall_rows = {p.name: p.stall.tolist() for p in procs}
        iteration_counts = {p.name: p.iteration for p in procs}

        results: list[SimulationResult] = []
        for li in range(self.n_lanes):
            recorder = self._recorders[li]
            results.append(
                SimulationResult(
                    iterations=dict(iteration_counts),
                    times={name: col[li] for name, col in times.items()},
                    completion_times={
                        p.name: completions[p.name][:, li].tolist()
                        for p in procs
                    },
                    compute_cycles={
                        name: col[li] for name, col in compute.items()
                    },
                    stall_cycles={
                        name: col[li] for name, col in stall_total.items()
                    },
                    channel_transfers=dict(transfers),
                    sink_payloads={name: [] for name in sink_procs},
                    trace=recorder.events() if recorder is not None else (),
                    stall_breakdown={
                        name: row
                        for name, rows in stall_rows.items()
                        if (row := {
                            ir.channels[cid]: cycles[li]
                            for cid, cycles in enumerate(rows)
                            if cycles[li]
                        })
                    },
                )
            )
        return results


class BatchSimulator:
    """Advance B simulations of one ``(system, ordering)`` pair in lock-step.

    Lanes are grouped by their channel-capacity signature; each group is
    one compile (memoized :func:`repro.ir.lower`) and one vectorized
    control-path execution.  Latency-only batches — the DSE neighbor case
    — form a single group.

    Args:
        system: The shared system to simulate.
        ordering: Statement orders (default: declaration order), shared by
            every lane.
        lanes: Per-lane overrides; an empty :class:`BatchLane` replays the
            declared system exactly.
        metrics: Optional :class:`repro.obs.MetricsRegistry`; end-of-run
            aggregates are recorded under the ``sim.batch.*`` metric names
            (see ``docs/OBSERVABILITY.md``).
    """

    def __init__(
        self,
        system: SystemGraph,
        ordering: ChannelOrdering | None = None,
        lanes: Sequence[BatchLane] = (),
        metrics: "MetricsRegistry | None" = None,
    ):
        from repro.lint import preflight

        self.system = system
        self.ordering = ordering or ChannelOrdering.declaration_order(system)
        self.lanes = tuple(lanes)
        self._metrics = metrics

        declared = {c.name: c.capacity for c in system.channels}
        known = set(declared)
        # Group lane indices by capacity signature (declaration order).
        self._groups: dict[
            tuple[int, ...], tuple[SystemGraph, list[int]]
        ] = {}
        for li, lane in enumerate(self.lanes):
            overrides = dict(lane.channel_capacities or {})
            unknown = sorted(set(overrides) - known)
            if unknown:
                raise SimulationError(
                    f"lane {li}: capacity override for unknown channel(s) "
                    f"{', '.join(repr(u) for u in unknown)}"
                )
            signature = tuple(
                overrides.get(name, cap) for name, cap in declared.items()
            )
            entry = self._groups.get(signature)
            if entry is None:
                if overrides and any(
                    overrides[name] != declared[name] for name in overrides
                ):
                    group_system = system.with_channel_capacities(overrides)
                else:
                    group_system = system
                # The same structural pre-flight the scalar engine runs:
                # each capacity signature is its own specification.
                preflight(group_system, self.ordering)
                self._groups[signature] = (group_system, [li])
            else:
                entry[1].append(li)

    @property
    def n_groups(self) -> int:
        """Distinct capacity signatures (compiles) in this batch."""
        return len(self._groups)

    # ------------------------------------------------------------------

    def run(
        self,
        iterations: int = 64,
        watch: str | None = None,
        max_steps: int | None = None,
        on_deadlock: str = "raise",
    ) -> List[LaneOutcome]:
        """Run every lane to ``iterations`` completed loops of ``watch``.

        Args:
            iterations: Target completed iterations of the watched process
                (same contract as :meth:`repro.sim.Simulator.run`).
            watch: Watched process (default: first sink, else first
                process).
            max_steps: Safety valve on scheduler steps per group.
            on_deadlock: ``"raise"`` re-raises the first group's
                :class:`SimulationDeadlock` exactly as the scalar engine
                would; ``"capture"`` stores the exception in each affected
                lane's slot instead and keeps running the other groups.

        Returns:
            One outcome per lane, in lane order.
        """
        if iterations < 1:
            raise SimulationError("iterations must be >= 1")
        if on_deadlock not in ("raise", "capture"):
            raise SimulationError(
                f"on_deadlock must be 'raise' or 'capture', got {on_deadlock!r}"
            )
        watch = watch or self._default_watch()
        if watch not in self.system.process_names:
            raise SimulationError(f"unknown watch process {watch!r}")
        outcomes: list[LaneOutcome | None] = [None] * len(self.lanes)
        total_steps = 0
        for group_system, lane_indices in self._groups.values():
            ir = lower(group_system, self.ordering)
            watch_pid = ir.process_index[watch]
            run = _GroupRun(
                group_system, ir, [self.lanes[li] for li in lane_indices]
            )
            try:
                run.run(iterations, watch_pid, max_steps)
            except SimulationDeadlock as deadlock:
                if on_deadlock == "raise":
                    raise
                total_steps += run.steps
                for li in lane_indices:
                    outcomes[li] = deadlock
                continue
            total_steps += run.steps
            for li, result in zip(lane_indices, run.collect()):
                outcomes[li] = result
        final = [outcome for outcome in outcomes if outcome is not None]
        assert len(final) == len(self.lanes)
        if self._metrics is not None:
            self._record_metrics(final, total_steps)
        return final

    # ------------------------------------------------------------------

    def _default_watch(self) -> str:
        sinks = self.system.sinks()
        if sinks:
            return sinks[0].name
        return self.system.process_names[0]

    def _record_metrics(
        self, outcomes: Sequence[LaneOutcome], steps: int
    ) -> None:
        """End-of-run aggregates under the stable ``sim.batch.*`` names."""
        metrics = self._metrics
        assert metrics is not None
        metrics.counter("sim.batch.runs").add(1)
        metrics.counter("sim.batch.lanes").add(len(self.lanes))
        metrics.counter("sim.batch.groups").add(self.n_groups)
        metrics.counter("sim.batch.steps").add(steps)
        results = [o for o in outcomes if isinstance(o, SimulationResult)]
        metrics.counter("sim.batch.deadlocked_lanes").add(
            len(outcomes) - len(results)
        )
        metrics.counter("sim.batch.iterations").add(
            sum(sum(r.iterations.values()) for r in results)
        )
        metrics.counter("sim.batch.transfers").add(
            sum(sum(r.channel_transfers.values()) for r in results)
        )
        metrics.counter("sim.batch.compute_cycles").add(
            sum(sum(r.compute_cycles.values()) for r in results)
        )
        metrics.counter("sim.batch.stall_cycles").add(
            sum(sum(r.stall_cycles.values()) for r in results)
        )


def simulate_batch(
    system: SystemGraph,
    lanes: Sequence[BatchLane],
    ordering: ChannelOrdering | None = None,
    iterations: int = 64,
    watch: str | None = None,
    max_steps: int | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> list[SimulationResult]:
    """One-call convenience wrapper around :class:`BatchSimulator`.

    Raises :class:`SimulationDeadlock` if any lane deadlocks (use
    :meth:`BatchSimulator.run` with ``on_deadlock="capture"`` for
    per-lane outcomes).
    """
    outcomes = BatchSimulator(
        system, ordering, lanes=lanes, metrics=metrics
    ).run(iterations=iterations, watch=watch, max_steps=max_steps)
    return [outcome for outcome in outcomes if isinstance(outcome, SimulationResult)]
