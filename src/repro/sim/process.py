"""Process execution state for the discrete-event simulator.

Each process executes the Fig. 2(b) FSM: its statement chain (gets in
order, computation, puts in order) repeated forever, with blocking I/O
statements that stall until the rendezvous completes.  The simulator keeps
one :class:`ProcessState` per process: a local clock, the current statement
index, iteration counters, stall statistics, and the payload buffers the
optional functional behaviour operates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

#: A functional behaviour: ``(iteration, inputs by channel) -> outputs by
#: channel``.  Sources receive an empty mapping; sinks may return one.
Behavior = Callable[[int, Mapping[str, Any]], Mapping[str, Any]]


def token_behavior(iteration: int, inputs: Mapping[str, Any]) -> dict[str, Any]:
    """Default behaviour: pure synchronization, no payloads."""
    return {}


@dataclass
class StallStats:
    """Waiting time accumulated on one channel endpoint."""

    cycles: int = 0
    events: int = 0

    def record(self, waited: int) -> None:
        if waited > 0:
            self.cycles += waited
            self.events += 1


@dataclass
class ProcessState:
    """Mutable simulation state of one process."""

    name: str
    chain: tuple[tuple[str, str], ...]  # (kind, channel-or-process)
    latency: int
    behavior: Behavior = token_behavior

    time: int = 0
    index: int = 0
    iteration: int = 0
    blocked_on: str | None = None  # channel name while waiting
    compute_cycles: int = 0
    completion_times: list[int] = field(default_factory=list)
    stalls: dict[str, StallStats] = field(default_factory=dict)

    # Payload staging for the functional mode.
    inputs: dict[str, Any] = field(default_factory=dict)
    outputs: dict[str, Any] = field(default_factory=dict)

    @property
    def current(self) -> tuple[str, str]:
        return self.chain[self.index]

    @property
    def blocked(self) -> bool:
        return self.blocked_on is not None

    def stall(self, channel: str, waited: int) -> None:
        self.stalls.setdefault(channel, StallStats()).record(waited)

    def advance_statement(self) -> None:
        """Move to the next statement; bumps the iteration counter when the
        chain wraps around."""
        self.index += 1
        if self.index == len(self.chain):
            self.index = 0
            self.iteration += 1
            self.completion_times.append(self.time)
            self.inputs = {}

    def run_behavior(self) -> None:
        """Invoke the functional behaviour at the computation statement."""
        produced = self.behavior(self.iteration, dict(self.inputs))
        self.outputs = dict(produced) if produced else {}

    def total_stall_cycles(self) -> int:
        return sum(s.cycles for s in self.stalls.values())
