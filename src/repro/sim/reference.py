"""The frozen pre-IR reference simulator (differential-testing oracle).

This module preserves the original interpretive discrete-event engine
exactly as it was before :class:`repro.sim.engine.Simulator` was
refactored to execute the lowered IR's integer arrays: it walks
``ordering.statements_of(...)`` chains with string comparisons and
name-keyed dict lookups, one :class:`~repro.sim.process.ProcessState` per
process and one :class:`~repro.sim.channel.ChannelState` per channel.

It exists for two reasons:

* **differential testing** — ``tests/ir`` and the Hypothesis properties
  run both engines on the same systems and assert bit-identical
  :class:`~repro.sim.engine.SimulationResult`\\ s (the refactor's
  acceptance criterion);
* **benchmark baseline** — ``benchmarks/test_bench_ir.py`` measures the
  IR engine's speedup against this engine on identical workloads.

Do not optimize this module; its value is that it does not change.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.core.system import ChannelOrdering, SystemGraph
from repro.errors import SimulationDeadlock, SimulationError
from repro.sim.channel import ChannelState
from repro.sim.engine import SimulationResult, _find_wait_cycle
from repro.sim.process import Behavior, ProcessState
from repro.sim.trace import TraceRecorder, TraceSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


class ReferenceSimulator:
    """The pre-IR chain-walking simulator; see the module docstring.

    Same constructor, :meth:`run` contract, results, and raised errors as
    :class:`repro.sim.engine.Simulator`.
    """

    def __init__(
        self,
        system: SystemGraph,
        ordering: ChannelOrdering | None = None,
        behaviors: Mapping[str, Behavior] | None = None,
        process_latencies: Mapping[str, int] | None = None,
        initial_payloads: Mapping[str, tuple[Any, ...]] | None = None,
        record_trace: bool = False,
        sinks: Sequence[TraceSink] = (),
        metrics: "MetricsRegistry | None" = None,
    ):
        from repro.lint import preflight

        self.system = system
        self.ordering = ordering or ChannelOrdering.declaration_order(system)
        preflight(system, self.ordering)
        behaviors = behaviors or {}
        overrides = dict(process_latencies or {})
        payloads = initial_payloads or {}

        self._channels: dict[str, ChannelState] = {
            c.name: ChannelState(c, initial_payloads=tuple(payloads.get(c.name, ())))
            for c in system.channels
        }
        self._processes: dict[str, ProcessState] = {}
        for p in system.processes:
            state = ProcessState(
                name=p.name,
                chain=self.ordering.statements_of(p.name),
                latency=overrides.get(p.name, p.latency),
            )
            behavior = behaviors.get(p.name)
            if behavior is not None:
                state.behavior = behavior
            self._processes[p.name] = state
        self._trace = TraceRecorder(enabled=record_trace, sinks=sinks)
        self._metrics = metrics
        self._sink_payloads: dict[str, list[Any]] = {
            p.name: [] for p in system.sinks()
        }

    # ------------------------------------------------------------------

    def run(
        self,
        iterations: int = 64,
        watch: str | None = None,
        max_steps: int | None = None,
    ) -> SimulationResult:
        """Run until the watched process completes ``iterations`` loops."""
        if iterations < 1:
            raise SimulationError("iterations must be >= 1")
        watch = watch or self._default_watch()
        if watch not in self._processes:
            raise SimulationError(f"unknown watch process {watch!r}")
        budget = max_steps or (
            40 * (iterations + 4) * (len(self._processes) + len(self._channels)) + 1000
        )

        runnable: deque[str] = deque(self._processes)
        steps = 0
        while self._processes[watch].iteration < iterations:
            if not runnable:
                self._raise_deadlock()
            steps += 1
            if steps > budget:
                raise SimulationError(
                    f"simulation exceeded its step budget ({budget}); "
                    "raise max_steps for very long transients"
                )
            name = runnable.popleft()
            self._advance(name, runnable)
            if not self._processes[name].blocked:
                # The process stopped at an iteration boundary, not on a
                # channel: keep it runnable (round-robin fairness).
                runnable.append(name)
        result = self._collect()
        if self._metrics is not None:
            self._record_metrics(result, steps)
        return result

    # ------------------------------------------------------------------

    def _default_watch(self) -> str:
        sinks = self.system.sinks()
        if sinks:
            return sinks[0].name
        return self.system.process_names[0]

    def _advance(self, name: str, runnable: deque[str]) -> None:
        """Run one process until it blocks (or completes a full loop)."""
        state = self._processes[name]
        if state.blocked:
            return
        start_iteration = state.iteration
        while state.iteration == start_iteration and not state.blocked:
            kind, target = state.current
            if kind == "compute":
                state.run_behavior()
                state.time += state.latency
                state.compute_cycles += state.latency
                self._trace.record(state.time, "compute", name, None,
                                   state.iteration, duration=state.latency)
                state.advance_statement()
                continue
            channel = self._channels[target]
            if kind == "put":
                payload = state.outputs.get(target)
                outcome = channel.offer_put(state.time, payload)
                if not outcome.complete:
                    state.blocked_on = target
                    self._trace.record(state.time, "block-put", name, target,
                                       state.iteration)
                    break
                self._complete_put(state, target, outcome, runnable)
            else:  # get
                outcome = channel.offer_get(state.time)
                if not outcome.complete:
                    state.blocked_on = target
                    self._trace.record(state.time, "block-get", name, target,
                                       state.iteration)
                    break
                self._complete_get(state, target, outcome, runnable)

    def _complete_put(self, state, channel_name, outcome, runnable) -> None:
        """Finish a put whose transfer can complete now."""
        channel = self._channels[channel_name]
        consumer = self.system.channel(channel_name).consumer
        # Transfer started at outcome.time - latency; anything between the
        # producer's arrival and that start was spent waiting.
        waited = max(0, outcome.time - state.time - channel.channel.latency)
        state.stall(channel_name, waited)
        state.time = outcome.time
        self._trace.record(state.time, "put", state.name, channel_name,
                           state.iteration, wait=waited)
        state.advance_statement()
        if channel.buffered:
            # The item is now queued; a consumer blocked on this channel
            # may proceed.
            self._wake_blocked_get(channel_name, runnable)
        else:
            # Rendezvous completed against a pending get: resume the peer.
            self._resume_peer_get(consumer, channel_name, outcome, runnable)

    def _complete_get(self, state, channel_name, outcome, runnable) -> None:
        channel = self._channels[channel_name]
        producer = self.system.channel(channel_name).producer
        waited = max(0, outcome.time - state.time
                     - (0 if channel.buffered else channel.channel.latency))
        state.stall(channel_name, waited)
        state.time = outcome.time
        state.inputs[channel_name] = outcome.payload
        self._record_sink_payload(state, channel_name, outcome.payload)
        self._trace.record(state.time, "get", state.name, channel_name,
                           state.iteration, wait=waited)
        state.advance_statement()
        if channel.buffered:
            # A credit was released; a producer blocked on it may proceed.
            self._wake_blocked_put(channel_name, runnable)
        else:
            self._resume_peer_put(producer, channel_name, outcome, runnable)

    def _resume_peer_get(self, consumer, channel_name, outcome, runnable) -> None:
        """A pending get was matched by this put: unblock the consumer."""
        peer = self._processes[consumer]
        if peer.blocked_on != channel_name:
            raise SimulationError(
                f"protocol violation on {channel_name!r}: consumer "
                f"{consumer!r} was not waiting (blocked on {peer.blocked_on!r})"
            )
        peer.stall(channel_name, outcome.peer_wait)
        peer.time = outcome.time
        peer.inputs[channel_name] = outcome.payload
        self._record_sink_payload(peer, channel_name, outcome.payload)
        peer.blocked_on = None
        self._trace.record(peer.time, "get", consumer, channel_name,
                           peer.iteration, wait=outcome.peer_wait)
        peer.advance_statement()
        runnable.append(consumer)

    def _resume_peer_put(self, producer, channel_name, outcome, runnable) -> None:
        peer = self._processes[producer]
        if peer.blocked_on != channel_name:
            raise SimulationError(
                f"protocol violation on {channel_name!r}: producer "
                f"{producer!r} was not waiting (blocked on {peer.blocked_on!r})"
            )
        peer.stall(channel_name, outcome.peer_wait)
        peer.time = outcome.time
        peer.blocked_on = None
        self._trace.record(peer.time, "put", producer, channel_name,
                           peer.iteration, wait=outcome.peer_wait)
        peer.advance_statement()
        runnable.append(producer)

    def _wake_blocked_put(self, channel_name, runnable) -> None:
        channel = self._channels[channel_name]
        outcome = channel.resolve_blocked_put()
        if outcome is None:
            return
        producer = self.system.channel(channel_name).producer
        peer = self._processes[producer]
        if peer.blocked_on != channel_name:
            raise SimulationError(
                f"protocol violation on {channel_name!r}: blocked put without "
                f"a blocked producer"
            )
        peer.stall(channel_name, outcome.peer_wait)
        peer.time = outcome.time
        peer.blocked_on = None
        self._trace.record(peer.time, "put", producer, channel_name,
                           peer.iteration, wait=outcome.peer_wait)
        peer.advance_statement()
        runnable.append(producer)
        # The item just queued may satisfy a blocked get in turn.
        self._wake_blocked_get(channel_name, runnable)

    def _wake_blocked_get(self, channel_name, runnable) -> None:
        channel = self._channels[channel_name]
        outcome = channel.resolve_blocked_get()
        if outcome is None:
            return
        consumer = self.system.channel(channel_name).consumer
        peer = self._processes[consumer]
        if peer.blocked_on != channel_name:
            raise SimulationError(
                f"protocol violation on {channel_name!r}: blocked get without "
                f"a blocked consumer"
            )
        peer.stall(channel_name, outcome.peer_wait)
        peer.time = outcome.time
        peer.inputs[channel_name] = outcome.payload
        self._record_sink_payload(peer, channel_name, outcome.payload)
        peer.blocked_on = None
        self._trace.record(peer.time, "get", consumer, channel_name,
                           peer.iteration, wait=outcome.peer_wait)
        peer.advance_statement()
        runnable.append(consumer)
        # A credit was released by that get: maybe another put can proceed.
        self._wake_blocked_put(channel_name, runnable)

    def _record_sink_payload(self, state: ProcessState, channel: str, payload) -> None:
        if state.name in self._sink_payloads and payload is not None:
            self._sink_payloads[state.name].append(payload)

    # ------------------------------------------------------------------

    def _raise_deadlock(self) -> None:
        """Diagnose and raise the runtime deadlock: everyone is blocked."""
        waiting = {
            name: state.blocked_on
            for name, state in self._processes.items()
            if state.blocked
        }
        # Wait-for edges: blocked process -> the peer of the channel.
        wait_for: dict[str, str] = {}
        for name, channel_name in waiting.items():
            channel = self.system.channel(channel_name)
            peer = channel.consumer if channel.producer == name else channel.producer
            wait_for[name] = peer
        cycle = _find_wait_cycle(wait_for)
        detail = ", ".join(f"{p} on {c}" for p, c in sorted(waiting.items()))
        raise SimulationDeadlock(
            f"simulation deadlock: all runnable processes are blocked ({detail})",
            cycle=cycle,
            waiting=waiting,
        )

    def _collect(self) -> SimulationResult:
        return SimulationResult(
            iterations={n: s.iteration for n, s in self._processes.items()},
            times={n: s.time for n, s in self._processes.items()},
            completion_times={
                n: list(s.completion_times) for n, s in self._processes.items()
            },
            compute_cycles={n: s.compute_cycles for n, s in self._processes.items()},
            stall_cycles={
                n: s.total_stall_cycles() for n, s in self._processes.items()
            },
            channel_transfers={
                n: c.transfers for n, c in self._channels.items()
            },
            sink_payloads={k: list(v) for k, v in self._sink_payloads.items()},
            trace=self._trace.events(),
            stall_breakdown={
                n: row
                for n, s in self._processes.items()
                if (row := {
                    ch: st.cycles
                    for ch, st in s.stalls.items()
                    if st.cycles
                })
            },
        )

    def _record_metrics(self, result: SimulationResult, steps: int) -> None:
        """End-of-run aggregates under the stable ``sim.*`` metric names."""
        metrics = self._metrics
        assert metrics is not None
        metrics.counter("sim.runs").add(1)
        metrics.counter("sim.steps").add(steps)
        metrics.counter("sim.iterations").add(sum(result.iterations.values()))
        metrics.counter("sim.transfers").add(
            sum(result.channel_transfers.values())
        )
        metrics.counter("sim.compute_cycles").add(
            sum(result.compute_cycles.values())
        )
        metrics.counter("sim.stall_cycles").add(
            sum(result.stall_cycles.values())
        )
