"""``ermes`` — the command-line front end of the reproduction.

Mirrors the workflow of the paper's prototype CAD tool: load a system,
analyze its performance, check for deadlock, compute the optimized channel
ordering, simulate, and run the canned experiments (the Fig. 2–4
motivating example, the MPEG-2 case study, the scalability sweep).

Examples::

    ermes demo                         # the paper's motivating example
    ermes analyze design.json          # cycle time + critical cycle
    ermes order design.json -o ord.json
    ermes check design.json --ordering ord.json
    ermes verify design.json --budget-states 200000
    ermes simulate design.json --iterations 200
    ermes simulate design.json --batch 16   # vectorized what-if lanes
    ermes trace design.json --format perfetto -o trace.json
    ermes profile design.json --json   # instrumented DSE run
    ermes mpeg2 --experiment m1        # Section 6 experiments
    ermes scalability --sizes 100,1000,10000
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core import (
    ChannelOrdering,
    load_ordering,
    load_system,
    motivating_deadlock_ordering,
    motivating_example,
    motivating_suboptimal_ordering,
    save_ordering,
    synthetic_soc,
)
from repro.errors import DeadlockError, ReproError, ValidationError
from repro.model import analyze_system, deadlock_cycle
from repro.ordering import channel_ordering, declaration_ordering
from repro.sim import simulate
from repro.tmg import Engine


def _load_ordering_arg(system, path: str | None) -> ChannelOrdering:
    if path is None:
        return declaration_ordering(system)
    ordering = load_ordering(path)
    ordering.validate(system)
    return ordering


def _write_text(text: str, path: str, what: str) -> None:
    """Write an output file, mapping I/O failures to a coded exit.

    Every ``-o`` path funnels through here so an unwritable destination
    reports ``error: ...`` and exits 2 (the :class:`ValidationError`
    contract of :mod:`repro.core.serialization`) instead of dumping an
    ``OSError`` traceback.
    """
    try:
        with open(path, "w") as handle:
            handle.write(text)
    except OSError as error:
        raise ValidationError(
            f"cannot write {what} file {path}: {error}"
        ) from error


def _parse_rule_list(raw: str | None) -> list[str] | None:
    """Parse a comma-separated rule selector list (``--select``/``--ignore``).

    Tokens are stripped and empty entries dropped, so
    ``--select "ERM101, ERM201"`` and a trailing comma both work; an
    all-empty value (``""``, ``","``) means "no filter", same as the
    flag being absent.
    """
    if raw is None:
        return None
    tokens = [token.strip() for token in raw.split(",")]
    cleaned = [token for token in tokens if token]
    return cleaned or None


def _symmetry_doc(ir) -> dict:
    """JSON-friendly orbit report of a lowered program's symmetry."""
    from repro.sym import analyze_symmetry

    analysis = analyze_symmetry(ir)
    return {
        "canonical_hash": analysis.canonical_hash,
        "complete": analysis.complete,
        "generators": len(analysis.generators),
        "process_orbits": [
            [ir.processes[pid] for pid in orbit]
            for orbit in analysis.process_orbits
        ],
        "channel_orbits": [
            [ir.channels[cid] for cid in orbit]
            for orbit in analysis.channel_orbits
        ],
        "replicated_process_orbits": [
            [ir.processes[pid] for pid in orbit]
            for orbit in analysis.replicated_process_orbits
        ],
        "replicated_channel_orbits": [
            [ir.channels[cid] for cid in orbit]
            for orbit in analysis.replicated_channel_orbits
        ],
    }


def _format_symmetry(ir) -> str:
    """Text orbit report of a lowered program's symmetry."""
    from repro.sym import analyze_symmetry

    analysis = analyze_symmetry(ir)
    lines = ["symmetry:"]
    lines.append(f"  canonical hash: {analysis.canonical_hash}")
    if not analysis.complete:
        lines.append(
            "  labeling budget exhausted: hash falls back to the "
            "structural hash; orbits below may be under-merged"
        )
    lines.append(f"  automorphism generators: {len(analysis.generators)}")
    replicated_p = analysis.replicated_process_orbits
    replicated_c = analysis.replicated_channel_orbits
    if not replicated_p and not replicated_c:
        lines.append("  no replicated families (trivial symmetry)")
        return "\n".join(lines) + "\n"
    if replicated_p:
        lines.append("  replicated process families:")
        for orbit in replicated_p:
            members = ", ".join(ir.processes[pid] for pid in orbit)
            lines.append(f"    [{len(orbit)}x] {members}")
    if replicated_c:
        lines.append("  replicated channel families:")
        for orbit in replicated_c:
            members = ", ".join(ir.channels[cid] for cid in orbit)
            lines.append(f"    [{len(orbit)}x] {members}")
    return "\n".join(lines) + "\n"


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.absint import analyze as absint_analyze
    from repro.absint import format_result, result_to_dict

    system = load_system(args.system)
    ordering = _load_ordering_arg(system, args.ordering)
    static = absint_analyze(system, ordering)

    symmetry_ir = None
    if args.symmetry:
        from repro.ir import lower

        symmetry_ir = lower(system, ordering)

    if static.token_free_cycle is not None:
        # No cycle time exists for a deadlocked configuration; the
        # static report (with the witness cycle) is the whole answer.
        if args.format == "json":
            payload = {
                "system": system.name,
                "performance": None,
                "static": result_to_dict(static),
            }
            if symmetry_ir is not None:
                payload["symmetry"] = _symmetry_doc(symmetry_ir)
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(format_result(static), end="")
            if symmetry_ir is not None:
                print(_format_symmetry(symmetry_ir), end="")
        print(
            f"deadlock: {system.name!r} has a token-free cycle; "
            "run `ermes lint` for the diagnosis",
            file=sys.stderr,
        )
        return 1

    performance = analyze_system(
        system, ordering, engine=Engine(args.engine), exact=not args.float
    )
    if args.format == "json":
        payload = {
            "system": system.name,
            "performance": {
                "cycle_time": float(performance.cycle_time),
                "throughput": float(performance.throughput),
                "critical_processes": list(performance.critical_processes),
                "critical_channels": list(performance.critical_channels),
            },
            "static": result_to_dict(static),
        }
        if symmetry_ir is not None:
            payload["symmetry"] = _symmetry_doc(symmetry_ir)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"system:            {system.name}")
    print(f"cycle time:        {performance.cycle_time}")
    print(f"throughput:        {float(performance.throughput):.6g} items/cycle")
    print(f"critical processes: {', '.join(performance.critical_processes)}")
    print(f"critical channels:  {', '.join(performance.critical_channels)}")
    print()
    print(format_result(static), end="")
    if symmetry_ir is not None:
        print()
        print(_format_symmetry(symmetry_ir), end="")
    return 0


def _cmd_ir(args: argparse.Namespace) -> int:
    import json

    from repro.ir import KIND_ORDER, OP_NAMES, lower

    system = load_system(args.system)
    ordering = _load_ordering_arg(system, args.ordering)
    ir = lower(system, ordering)

    if args.format == "json":
        doc = {
            "system": ir.system_name,
            "structural_hash": ir.structural_hash,
            "processes": [
                {
                    "pid": pid,
                    "name": name,
                    "kind": KIND_ORDER[ir.process_kinds[pid]].value,
                    "program": [
                        {"op": OP_NAMES[op], "arg": arg}
                        for op, arg in zip(ir.op_kinds[pid], ir.op_args[pid])
                    ],
                    "first_marked": ir.first_marked[pid],
                }
                for pid, name in enumerate(ir.processes)
            ],
            "channels": [
                {
                    "cid": cid,
                    "name": name,
                    "producer": ir.processes[ir.producers[cid]],
                    "consumer": ir.processes[ir.consumers[cid]],
                    "latency": ir.channel_latencies[cid],
                    "capacity": ir.capacities[cid],
                    "initial_tokens": ir.initial_tokens[cid],
                    "buffered": ir.buffered[cid],
                    "effective_capacity": ir.effective_capacities[cid],
                }
                for cid, name in enumerate(ir.channels)
            ],
            "symmetry": _symmetry_doc(ir),
        }
        text = json.dumps(doc, indent=2) + "\n"
    else:
        lines = [
            f"system:          {ir.system_name}",
            f"structural hash: {ir.structural_hash}",
            f"processes: {ir.n_processes}, channels: {ir.n_channels}, "
            f"statements: {ir.total_statements()}",
            "",
            "processes (* marks the statement holding the initial token):",
        ]
        for pid, name in enumerate(ir.processes):
            kind = KIND_ORDER[ir.process_kinds[pid]].value
            program = " ".join(
                (
                    stmt_kind
                    if stmt_kind == "compute"
                    else f"{stmt_kind}({target})"
                )
                + ("*" if i == ir.first_marked[pid] else "")
                for i, (stmt_kind, target) in enumerate(ir.statements_of(pid))
            )
            lines.append(f"  [{pid}] {name} ({kind}): {program}")
        lines.append("")
        lines.append("channels:")
        for cid, name in enumerate(ir.channels):
            route = (
                f"{ir.processes[ir.producers[cid]]} -> "
                f"{ir.processes[ir.consumers[cid]]}"
            )
            if ir.buffered[cid]:
                shape = (
                    f"fifo capacity {ir.effective_capacities[cid]}, "
                    f"initial tokens {ir.initial_tokens[cid]}"
                )
            else:
                shape = "rendezvous"
            lines.append(
                f"  [{cid}] {name}: {route}, "
                f"latency {ir.channel_latencies[cid]}, {shape}"
            )
        lines.append("")
        lines.append(_format_symmetry(ir).rstrip("\n"))
        text = "\n".join(lines) + "\n"

    if args.output:
        _write_text(text, args.output, "ir")
        print(f"ir written to {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_order(args: argparse.Namespace) -> int:
    system = load_system(args.system)
    initial = _load_ordering_arg(system, args.ordering)
    before = None
    try:
        before = analyze_system(system, initial).cycle_time
    except DeadlockError:
        print("initial ordering deadlocks; computing a live one")
    ordering = channel_ordering(system, initial_ordering=initial)
    after = analyze_system(system, ordering).cycle_time
    for process in system.process_names:
        gets = ordering.gets_of(process)
        puts = ordering.puts_of(process)
        if gets or puts:
            print(f"{process}: gets={list(gets)} puts={list(puts)}")
    if before is not None:
        gain = 1 - float(after) / float(before)
        print(f"cycle time: {before} -> {after}  ({gain:+.2%})")
    else:
        print(f"cycle time: deadlock -> {after}")
    if args.output:
        save_ordering(ordering, args.output)
        print(f"ordering written to {args.output}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.lint import format_witness

    system = load_system(args.system)
    ordering = _load_ordering_arg(system, args.ordering)
    cycle = deadlock_cycle(system, ordering)
    if cycle is None:
        print("deadlock-free")
        return 0
    print("DEADLOCK: circular wait through " + " -> ".join(cycle))
    print("  " + format_witness(system, ordering, cycle))
    print("run `ermes lint` for the full diagnosis, or `ermes order` "
          "for a live ordering")
    return 1


def _cmd_verify(args: argparse.Namespace) -> int:
    import json

    from repro.obs import MetricsRegistry
    from repro.verify import Verdict, check_deadlock

    system = load_system(args.system)
    ordering = _load_ordering_arg(system, args.ordering)
    metrics = MetricsRegistry()
    result = check_deadlock(
        system,
        ordering,
        por=not args.no_por,
        sym=args.sym,
        budget_states=args.budget_states,
        budget_seconds=args.budget_seconds,
        metrics=metrics,
    )

    if args.format == "json":
        payload: dict[str, object] = {
            "system": system.name,
            "verdict": result.verdict.value,
            "reason": result.reason,
            "states_explored": result.states_explored,
            "transitions_fired": result.transitions_fired,
            "por": result.por,
            "por_pruned": result.por_pruned,
            "sym": result.sym,
            "sym_merged": result.sym_merged,
            "state_space_bound": result.state_space_bound,
            "elapsed_s": result.elapsed_s,
            "budget_states": result.budget_states,
            "budget_seconds": result.budget_seconds,
        }
        if result.witness is not None:
            witness: dict[str, object] = {
                "blocked": [list(pair) for pair in result.witness.blocked],
                "cycle": list(result.witness.cycle),
            }
            if args.trace:
                witness["schedule"] = [
                    action.format() for action in result.witness.schedule
                ]
            payload["witness"] = witness
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"system: {system.name}")
        print(result.format())
        if args.trace and result.witness is not None:
            print("full schedule:")
            for step, action in enumerate(result.witness.schedule):
                print(f"  {step + 1:>4}. {action.format()}")

    if result.verdict is Verdict.DEADLOCKED:
        return 1
    if result.verdict is Verdict.INCONCLUSIVE:
        return 3
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        Severity,
        apply_fixes,
        lint_system,
        render_json,
        render_sarif,
        render_text,
    )

    system = load_system(args.system)
    ordering = None
    if args.ordering:
        ordering = load_ordering(args.ordering)
    select = _parse_rule_list(args.select)
    ignore = _parse_rule_list(args.ignore)
    result = lint_system(
        system, ordering, library=None, select=select, ignore=ignore
    )

    if args.fix:
        output = args.output or args.ordering
        if output is None:
            print("error: --fix needs --ordering or -o/--output to know "
                  "where to write the corrected ordering", file=sys.stderr)
            return 2
        outcome = apply_fixes(system, result.ordering, result.diagnostics)
        if outcome.changed:
            save_ordering(outcome.ordering, output)
            print(f"applied {len(outcome.applied)} fix(es) "
                  f"[{', '.join(d.rule for d in outcome.applied)}]; "
                  f"corrected ordering written to {output}")
            result = lint_system(
                system, outcome.ordering, select=select, ignore=ignore
            )
        else:
            print("nothing to fix")

    renderers = {
        "text": lambda r: render_text(r, verbose=args.verbose),
        "json": render_json,
        "sarif": render_sarif,
    }
    print(renderers[args.format](result), end="")
    threshold = Severity.ERROR if args.fail_on == "error" else Severity.WARNING
    return 1 if result.has_at_least(threshold) else 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    system = load_system(args.system)
    ordering = _load_ordering_arg(system, args.ordering)
    watch = system.sinks()[0].name if system.sinks() else system.process_names[0]
    if args.batch is not None:
        return _simulate_batch_cli(system, ordering, watch, args)
    result = simulate(system, ordering, iterations=args.iterations)
    measured = result.measured_cycle_time(watch)
    print(f"iterations:   {result.iterations[watch]} (watched: {watch})")
    print(f"measured cycle time: {measured}")
    predicted = analyze_system(system, ordering).cycle_time
    print(f"predicted cycle time: {predicted}")
    stalled = sorted(
        result.stall_cycles.items(), key=lambda item: -item[1]
    )[:5]
    print("top stalls: " + ", ".join(f"{p}={c}" for p, c in stalled if c))
    return 0


def _simulate_batch_cli(system, ordering, watch: str, args) -> int:
    """``ermes simulate --batch N``: lane 0 is the declared system, lanes
    1..N-1 sweep uniformly scaled-down process latencies (a what-if over
    faster implementations), all advanced in one lock-step run and
    cross-checked against the scalar engine."""
    from repro.errors import ValidationError
    from repro.sim import BatchLane, Simulator, simulate_batch

    n_lanes = args.batch
    if n_lanes < 1:
        raise ValidationError("--batch needs at least one lane")
    base = system.process_latencies()
    lanes = [BatchLane()]
    for k in range(1, n_lanes):
        scale_num = n_lanes - k
        lanes.append(
            BatchLane(
                process_latencies={
                    name: max(0, latency * scale_num // n_lanes)
                    for name, latency in base.items()
                }
            )
        )
    results = simulate_batch(
        system, lanes, ordering, iterations=args.iterations, watch=watch
    )
    print(f"batch: {len(lanes)} lanes, watched: {watch}")
    for k, result in enumerate(results):
        label = "declared" if k == 0 else f"latencies x{n_lanes - k}/{n_lanes}"
        print(
            f"  lane {k:>2} ({label}): iterations "
            f"{result.iterations[watch]}, measured cycle time "
            f"{result.measured_cycle_time(watch)}"
        )
    check = Simulator(system, ordering).run(
        iterations=args.iterations, watch=watch
    )
    if results[0] != check:
        print("cross-check: FAILED (batch lane 0 != scalar engine)")
        return 2
    print("cross-check: lane 0 bit-identical to the scalar engine")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        MemorySink,
        event_to_dict,
        render_chrome_trace,
        to_vcd,
    )
    from repro.sim import Simulator
    from repro.sim.trace import format_trace

    system = load_system(args.system)
    ordering = _load_ordering_arg(system, args.ordering)
    sink = MemorySink()
    simulator = Simulator(system, ordering, sinks=[sink])
    result = simulator.run(iterations=args.iterations)
    events = sink.events()

    if args.format == "perfetto":
        text = render_chrome_trace(events, system, name=system.name) + "\n"
        hint = "open it at https://ui.perfetto.dev"
    elif args.format == "vcd":
        text = to_vcd(events, system, name=system.name)
        hint = "open it in GTKWave or any VCD viewer"
    elif args.format == "jsonl":
        text = "".join(
            json.dumps(event_to_dict(e), separators=(",", ":")) + "\n"
            for e in events
        )
        hint = "one JSON object per line (schema: docs/OBSERVABILITY.md)"
    else:
        text = format_trace(events, limit=args.limit)
        hint = ""

    if args.output:
        _write_text(text, args.output, "trace")
        total_stalls = sum(result.stall_cycles.values())
        print(f"{len(events)} events ({total_stalls} stall cycles) "
              f"written to {args.output}")
        if hint:
            print(hint)
    else:
        print(text, end="")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.dse import Explorer, SystemConfiguration
    from repro.hls import ImplementationLibrary, synthesize_pareto_set
    from repro.lint import preflight
    from repro.obs import (
        DseProfiler,
        MetricsRegistry,
        format_convergence,
        format_metrics,
    )
    from repro.perf import PerformanceEngine
    from repro.sim import simulate

    system = load_system(args.system)
    ordering = _load_ordering_arg(system, args.ordering)
    registry = MetricsRegistry()
    profiler = DseProfiler(metrics=registry)
    perf_engine = PerformanceEngine()

    with registry.timer("profile.preflight"):
        preflight(system, ordering)
    with registry.timer("profile.order"):
        optimized = channel_ordering(
            system, initial_ordering=ordering, metrics=registry
        )
    with registry.timer("profile.analyze"):
        performance = analyze_system(
            system, optimized, perf_engine=perf_engine
        )

    # A synthetic-but-deterministic Pareto library (the pre-characterized
    # HLS input of Fig. 5) lets `ermes profile` exercise the full DSE loop
    # on any plain design JSON.
    library = ImplementationLibrary(
        synthesize_pareto_set(
            p.name,
            base_latency=max(p.latency, 1),
            base_area=3.0 * max(p.latency, 1),
            seed=args.seed,
            max_points=args.max_points,
        )
        for p in system.workers()
    )
    config = SystemConfiguration.initial(
        system, library, ordering=optimized, pick="smallest"
    )
    initial_ct = analyze_system(
        system,
        optimized,
        process_latencies=config.process_latencies(),
        perf_engine=perf_engine,
    ).cycle_time
    target = args.target if args.target else 0.75 * float(initial_ct)

    with registry.timer("profile.dse"):
        result = Explorer(
            target_cycle_time=target,
            max_iterations=args.max_iterations,
            perf_engine=perf_engine,
            profiler=profiler,
        ).run(config)

    if not args.no_simulate:
        with registry.timer("profile.simulate"):
            simulate(
                system,
                optimized,
                iterations=args.iterations,
                metrics=registry,
            )

    final = result.final_record
    if args.json:
        payload = {
            "system": system.name,
            "cycle_time": float(performance.cycle_time),
            "target_cycle_time": float(target),
            "achieved_cycle_time": float(final.cycle_time),
            "area": final.area,
            "feasible": final.meets_target,
            "iterations": profiler.as_dicts(),
            "metrics": registry.snapshot(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(f"system:   {system.name}  "
          f"({len(system.workers())} processes, "
          f"{len(system.channels)} channels)")
    print(f"analyzed cycle time: {performance.cycle_time}")
    print(f"DSE target {float(target):.1f}: achieved "
          f"{float(final.cycle_time):.1f}, area {final.area:.1f}, "
          f"{'feasible' if final.meets_target else 'infeasible'}")
    print()
    print("convergence (one row per DSE iteration):")
    print(format_convergence(profiler.snapshots))
    print(format_metrics(registry), end="")
    return 0


def _cmd_gen(args: argparse.Namespace) -> int:
    import json

    from repro.core import system_to_dict
    from repro.workloads import FAMILIES, generate

    if args.list_families:
        print(f"{'family':<16} {'default size':>12}  size meaning")
        for spec in FAMILIES.values():
            print(f"{spec.family:<16} {spec.default_size:>12}  {spec.size_help}")
        return 0
    if args.family is None:
        print("error: a family name is required (or use --list)",
              file=sys.stderr)
        return 2
    workload = generate(args.family, seed=args.seed, size=args.size)
    text = json.dumps(system_to_dict(workload.system), indent=2,
                      sort_keys=True) + "\n"
    if args.output:
        _write_text(text, args.output, "system")
        system = workload.system
        families = ", ".join(
            f.name for f in system.declared_families) or "(none)"
        print(f"{workload.name}: {len(system.process_names)} processes, "
              f"{len(system.channel_names)} channels, "
              f"declared families: {families}")
        print(f"written to {args.output}")
        print(f"  {workload.description}")
    else:
        print(text, end="")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    system = motivating_example()
    print(f"motivating example: {len(system.workers())} processes, "
          f"{len(system.channels)} channels, "
          f"{system.order_space_size()} possible orderings")
    dead = motivating_deadlock_ordering(system)
    print("\nListing-1 order (P2 puts b,d,f; P6 gets g,d,e):")
    print("  " + " -> ".join(deadlock_cycle(system, dead) or ()) + "  [DEADLOCK]")
    sub = motivating_suboptimal_ordering(system)
    perf = analyze_system(system, sub)
    print(f"\nhand-fixed order (P2 puts f,b,d; P6 gets e,g,d): "
          f"cycle time {perf.cycle_time}, throughput {float(perf.throughput)}")
    ordering = channel_ordering(system, initial_ordering=sub)
    perf2 = analyze_system(system, ordering)
    print(f"Algorithm 1 order (P2 puts {list(ordering.puts_of('P2'))}; "
          f"P6 gets {list(ordering.gets_of('P6'))}): cycle time "
          f"{perf2.cycle_time} "
          f"({1 - float(perf2.cycle_time)/float(perf.cycle_time):.0%} better)")
    return 0


def _cmd_mpeg2(args: argparse.Namespace) -> int:
    from repro.dse import SystemConfiguration, explore, iteration_table, summarize
    from repro.mpeg2 import (
        build_mpeg2_library,
        build_mpeg2_system,
        channel_latencies,
        m1_selection,
        m2_selection,
    )

    system = build_mpeg2_system()
    library = build_mpeg2_library()

    if args.experiment == "table1":
        latencies = channel_latencies()
        print(f"Processes          {len(system.workers())}")
        print(f"Channels           "
              f"{len(system.channels) - len(system.sources()) - len(system.sinks())}")
        print(f"Pareto points      {library.total_points()}")
        print(f"Image size         352x240")
        print(f"Channel latencies  {min(latencies.values())}..{max(latencies.values())} cycles")
        return 0

    if args.experiment == "m1":
        from repro.perf import PerformanceEngine

        perf_engine = PerformanceEngine()
        config = SystemConfiguration(
            system, library, m1_selection(library), declaration_ordering(system)
        )
        latencies = config.process_latencies()
        before = analyze_system(system, config.ordering,
                                process_latencies=latencies,
                                perf_engine=perf_engine)
        ordering = channel_ordering(
            system.with_process_latencies(latencies),
            initial_ordering=config.ordering,
        )
        after = analyze_system(system, ordering, process_latencies=latencies,
                               perf_engine=perf_engine)
        gain = 1 - float(after.cycle_time) / float(before.cycle_time)
        print(f"M1 cycle time: {float(before.cycle_time)/1000:.0f} KCycles, "
              f"area {config.total_area()/1e6:.3f} mm2")
        print(f"after ERMES reordering: {float(after.cycle_time)/1000:.0f} KCycles "
              f"({gain:.1%} improvement, no area change)")
        if args.cache_stats:
            print("\nanalysis cache:")
            print(perf_engine.format_stats())
        return 0

    target = 2_000_000 if args.experiment == "fig6-left" else 4_000_000
    config = SystemConfiguration(
        system, library, m2_selection(library), declaration_ordering(system)
    )
    result = explore(config, target_cycle_time=target)
    print(iteration_table(result, cycle_time_unit=1000, area_unit=1e6))
    print(summarize(result))
    if args.cache_stats and result.cache_stats:
        print("\nanalysis cache:")
        for name, stats in result.cache_stats.items():
            print(f"{name:>10}: hits={stats['hits']} misses={stats['misses']} "
                  f"evictions={stats['evictions']} "
                  f"hit_rate={stats['hit_rate']:.1%}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report import design_report

    system = load_system(args.system)
    ordering = _load_ordering_arg(system, args.ordering)
    text = design_report(
        system,
        ordering,
        include_sensitivity=not args.no_sensitivity,
        include_stalls=not args.no_stalls,
    )
    if args.output:
        _write_text(text, args.output, "report")
        print(f"report written to {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.bench import format_registry

    print(format_registry(), end="")
    print("\nrun them all with:  pytest benchmarks/ --benchmark-only -s")
    return 0


def _cmd_bottlenecks(args: argparse.Namespace) -> int:
    from repro.model import format_sensitivity, sensitivity_report

    system = load_system(args.system)
    ordering = _load_ordering_arg(system, args.ordering)
    report = sensitivity_report(system, ordering)
    print(format_sensitivity(report, limit=args.top))
    hot = report.bottlenecks()
    if hot:
        best = hot[0]
        print(f"speeding up {best.process!r} helps most "
              f"(up to -{best.potential} cycles)")
    else:
        print("no single process limits the cycle time "
              "(communication-bound)")
    return 0


def _cmd_size(args: argparse.Namespace) -> int:
    from repro.sizing import minimize_buffers

    system = load_system(args.system)
    ordering = _load_ordering_arg(system, args.ordering)
    result = minimize_buffers(
        system,
        target_cycle_time=args.target,
        ordering=ordering,
        max_capacity=args.max_capacity,
    )
    status = "feasible" if result.feasible else "INFEASIBLE (floor reached)"
    print(f"target {args.target}: {status}, achieved cycle time "
          f"{result.cycle_time}, total slots {result.total_slots}")
    for name in sorted(result.capacities):
        print(f"  {name}: capacity {result.capacities[name]}")
    return 0 if result.feasible else 1


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.core import system_to_dot
    from repro.model import build_tmg
    from repro.tmg import analyze, tmg_to_dot

    system = load_system(args.system)
    ordering = _load_ordering_arg(system, args.ordering)
    if args.tmg:
        model = build_tmg(system, ordering)
        highlight_t: tuple[str, ...] = ()
        highlight_p: tuple[str, ...] = ()
        if args.critical:
            report = analyze(model.tmg)
            highlight_t = report.critical_cycle
            highlight_p = report.critical_places
        dot = tmg_to_dot(model.tmg, highlight_transitions=highlight_t,
                         highlight_places=highlight_p)
    else:
        highlight_channels: tuple[str, ...] = ()
        highlight_processes: tuple[str, ...] = ()
        if args.critical:
            performance = analyze_system(system, ordering)
            highlight_channels = performance.critical_channels
            highlight_processes = performance.critical_processes
        dot = system_to_dot(system, ordering=ordering,
                            highlight_channels=highlight_channels,
                            highlight_processes=highlight_processes)
    if args.output:
        _write_text(dot, args.output, "dot")
        print(f"written to {args.output}")
    else:
        print(dot, end="")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ErmesService
    from repro.store import ArtifactStore

    store = ArtifactStore(args.store) if args.store else None
    service = ErmesService(
        host=args.host,
        port=args.port,
        workers=args.workers,
        store=store,
        threads=args.threads,
    )
    service.start()
    try:
        print(f"ermes serve listening on {service.url}")
        print(f"  workers: {args.workers}  threads: {args.threads}  "
              f"store: {args.store or '(none)'}")
        if args.for_seconds is not None:
            # Bounded run: CI smoke tests and scripted demos start the
            # service, exercise it, and rely on it exiting cleanly.
            time.sleep(args.for_seconds)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        service.stop()
    return 0


def _cmd_scalability(args: argparse.Namespace) -> int:
    sizes = [int(s) for s in args.sizes.split(",")]
    perf_engine = None
    if args.cache_stats:
        from repro.perf import PerformanceEngine

        perf_engine = PerformanceEngine()
    header = (f"{'processes':>10} {'channels':>10} {'order (s)':>10} "
              f"{'analyze (s)':>12}")
    if perf_engine is not None:
        header += f" {'cached (s)':>12}"
    print(header)
    for size in sizes:
        system = synthetic_soc(size, seed=args.seed)
        start = time.perf_counter()
        ordering = channel_ordering(system)
        t_order = time.perf_counter() - start
        start = time.perf_counter()
        analyze_system(system, ordering, exact=False, perf_engine=perf_engine)
        t_analyze = time.perf_counter() - start
        row = (f"{len(system.workers()):>10} {len(system.channels):>10} "
               f"{t_order:>10.3f} {t_analyze:>12.3f}")
        if perf_engine is not None:
            start = time.perf_counter()
            analyze_system(system, ordering, exact=False,
                           perf_engine=perf_engine)
            row += f" {time.perf_counter() - start:>12.3f}"
        print(row)
    if perf_engine is not None:
        print("\nanalysis cache:")
        print(perf_engine.format_stats())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ermes",
        description="ERMES reproduction: performance analysis, channel "
        "ordering, and design-space exploration for communication-centric "
        "SoCs (DAC 2014).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "analyze",
        help="cycle time, critical cycle, and static dataflow analysis "
             "(occupancy bounds, token invariants, deadlock-freedom "
             "certificate)",
    )
    p.add_argument("system", help="system JSON file")
    p.add_argument("--ordering", help="ordering JSON file")
    p.add_argument("--engine", default="howard",
                   choices=[e.value for e in Engine])
    p.add_argument("--symmetry", action="store_true",
                   help="include the orbit report of the lowered program "
                        "(replicated families + canonical hash)")
    p.add_argument("--float", action="store_true",
                   help="float arithmetic (faster on huge systems)")
    p.add_argument("--format", default="text", choices=["text", "json"],
                   help="json emits the performance summary plus the full "
                        "static-analysis document (bounds, invariants, "
                        "certificate)")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "ir",
        help="show the lowered core IR of a (system, ordering) pair "
             "(the compiled program sim/TMG/verify share; "
             "docs/ARCHITECTURE.md)",
    )
    p.add_argument("system", help="system JSON file")
    p.add_argument("--ordering", help="ordering JSON file")
    p.add_argument("--format", default="text", choices=["text", "json"])
    p.add_argument("-o", "--output", help="write the dump to this file")
    p.set_defaults(func=_cmd_ir)

    p = sub.add_parser("order", help="run Algorithm 1 channel ordering")
    p.add_argument("system")
    p.add_argument("--ordering", help="initial ordering JSON file")
    p.add_argument("-o", "--output", help="write the ordering to this file")
    p.set_defaults(func=_cmd_order)

    p = sub.add_parser("check", help="deadlock check")
    p.add_argument("system")
    p.add_argument("--ordering")
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser(
        "verify",
        help="exhaustive deadlock verification (explicit-state model "
             "checking with partial-order reduction; see "
             "docs/VERIFICATION.md)",
    )
    p.add_argument("system")
    p.add_argument("--ordering", help="ordering JSON file to verify")
    p.add_argument("--budget-states", type=int,
                   default=1_000_000, dest="budget_states",
                   help="max states to explore before the verdict becomes "
                        "INCONCLUSIVE (exit code 3, never a silent pass)")
    p.add_argument("--budget-seconds", type=float, default=None,
                   dest="budget_seconds",
                   help="wall-clock cap with the same contract")
    p.add_argument("--trace", action="store_true",
                   help="print the full witness schedule, one step per line")
    p.add_argument("--sym", action="store_true",
                   help="canonicalize states to orbit representatives "
                        "(symmetry reduction; composes with POR)")
    p.add_argument("--no-por", action="store_true", dest="no_por",
                   help="disable the stubborn-set reduction (explore the "
                        "full interleaving)")
    p.add_argument("--format", default="text", choices=["text", "json"])
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "lint",
        help="static design analysis (rule catalog: docs/LINT_RULES.md)",
    )
    p.add_argument("system")
    p.add_argument("--ordering", help="ordering JSON file to lint")
    p.add_argument("--format", default="text",
                   choices=["text", "json", "sarif"],
                   help="output format (sarif follows SARIF 2.1.0)")
    p.add_argument("--select",
                   help="comma-separated rule codes or prefixes to run "
                        "(e.g. ERM2,ERM301)")
    p.add_argument("--ignore",
                   help="comma-separated rule codes or prefixes to skip")
    p.add_argument("--fail-on", dest="fail_on", default="error",
                   choices=["error", "warning"],
                   help="lowest severity that makes the exit code 1")
    p.add_argument("--fix", action="store_true",
                   help="apply machine-applicable fix-its and write the "
                        "corrected ordering JSON")
    p.add_argument("-o", "--output",
                   help="where --fix writes the corrected ordering "
                        "(default: the --ordering file)")
    p.add_argument("--verbose", action="store_true",
                   help="also print each fix-it's description")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("simulate", help="discrete-event simulation")
    p.add_argument("system")
    p.add_argument("--ordering")
    p.add_argument("--iterations", type=int, default=100)
    p.add_argument("--batch", type=int, nargs="?", const=8, default=None,
                   metavar="N",
                   help="vectorized batch run: N lanes (default 8) over one "
                        "compiled structure — lane 0 is the declared system, "
                        "the rest sweep scaled-down process latencies; lane 0 "
                        "is cross-checked against the scalar engine")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "trace",
        help="simulate and export an execution trace "
             "(Perfetto / VCD / JSONL; see docs/OBSERVABILITY.md)",
    )
    p.add_argument("system")
    p.add_argument("--ordering")
    p.add_argument("--iterations", type=int, default=100)
    p.add_argument("--format", default="perfetto",
                   choices=["perfetto", "vcd", "jsonl", "text"],
                   help="perfetto = Chrome trace-event JSON for "
                        "ui.perfetto.dev; vcd = waveform for GTKWave; "
                        "jsonl = one event per line; text = human-readable")
    p.add_argument("--limit", type=int, default=100,
                   help="max events shown by --format text")
    p.add_argument("-o", "--output", help="write the trace to this file")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "profile",
        help="run the instrumented flow (ordering, analysis, DSE, "
             "simulation) and print a profile",
    )
    p.add_argument("system")
    p.add_argument("--ordering")
    p.add_argument("--target", type=float, default=None,
                   help="DSE target cycle time (default: 75%% of the "
                        "initial configuration's cycle time)")
    p.add_argument("--max-iterations", type=int, default=16,
                   help="DSE iteration cap")
    p.add_argument("--iterations", type=int, default=100,
                   help="simulation length for the profile.simulate phase")
    p.add_argument("--seed", type=int, default=0,
                   help="seed of the synthetic Pareto library")
    p.add_argument("--max-points", type=int, default=5,
                   help="Pareto points per process in the synthetic library")
    p.add_argument("--no-simulate", action="store_true",
                   help="skip the simulation phase")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output: metrics snapshot plus "
                        "one record per DSE iteration")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "gen",
        help="generate a seeded workload design as system JSON "
             "(families: ofdm-rx, rate-converter, noc-torus, butterfly, "
             "bursty-soc; see docs/DSL.md)",
    )
    p.add_argument("family", nargs="?",
                   help="workload family name (see --list)")
    p.add_argument("--seed", type=int, default=0,
                   help="generator seed; (family, seed, size) regenerates "
                        "the same design bit-for-bit")
    p.add_argument("--size", type=int, default=None,
                   help="family-specific scale knob (default per family; "
                        "see --list)")
    p.add_argument("--list", action="store_true", dest="list_families",
                   help="list the registered families and their size "
                        "semantics")
    p.add_argument("-o", "--output",
                   help="write the system JSON here instead of stdout")
    p.set_defaults(func=_cmd_gen)

    p = sub.add_parser("demo", help="the paper's motivating example")
    p.set_defaults(func=_cmd_demo)

    p = sub.add_parser("mpeg2", help="MPEG-2 case-study experiments")
    p.add_argument(
        "--experiment",
        default="m1",
        choices=["table1", "m1", "fig6-left", "fig6-right"],
    )
    p.add_argument("--cache-stats", action="store_true",
                   help="print analysis-cache hit/miss counters")
    p.set_defaults(func=_cmd_mpeg2)

    p = sub.add_parser("report", help="full markdown design report")
    p.add_argument("system")
    p.add_argument("--ordering")
    p.add_argument("--no-sensitivity", action="store_true",
                   help="skip the bottleneck table (faster on huge systems)")
    p.add_argument("--no-stalls", action="store_true",
                   help="skip the simulated stall-attribution table")
    p.add_argument("-o", "--output")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("experiments",
                       help="list the paper artifacts this repo regenerates")
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser("bottlenecks",
                       help="per-process slack and speed-up potential")
    p.add_argument("system")
    p.add_argument("--ordering")
    p.add_argument("--top", type=int, default=0,
                   help="show only the N most impactful processes")
    p.set_defaults(func=_cmd_bottlenecks)

    p = sub.add_parser("size", help="size FIFO capacities for a target")
    p.add_argument("system")
    p.add_argument("--target", type=int, required=True,
                   help="target cycle time")
    p.add_argument("--ordering")
    p.add_argument("--max-capacity", type=int, default=64)
    p.set_defaults(func=_cmd_size)

    p = sub.add_parser("dot", help="export Graphviz DOT")
    p.add_argument("system")
    p.add_argument("--ordering")
    p.add_argument("--tmg", action="store_true",
                   help="export the TMG instead of the system graph")
    p.add_argument("--critical", action="store_true",
                   help="highlight the critical cycle")
    p.add_argument("-o", "--output")
    p.set_defaults(func=_cmd_dot)

    p = sub.add_parser(
        "serve",
        help="long-running batch endpoint: submit design JSON jobs over "
             "HTTP, poll status, fetch results (docs/SERVICE.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8181,
                   help="TCP port (0 picks a free one)")
    p.add_argument("--workers", type=int, default=1,
                   help="sharded-sweep worker processes")
    p.add_argument("--threads", type=int, default=2,
                   help="concurrent job-executor threads")
    p.add_argument("--store",
                   help="artifact-store directory (persistent cross-run "
                        "cache); omit to run store-less")
    p.add_argument("--for-seconds", type=float, default=None,
                   help="serve for this long then exit 0 (smoke tests)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("scalability", help="synthetic SoC scalability sweep")
    p.add_argument("--sizes", default="100,1000,10000")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cache-stats", action="store_true",
                   help="serve analyses through the cache, time a repeat, "
                        "and print hit/miss counters")
    p.set_defaults(func=_cmd_scalability)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except DeadlockError as error:
        print(f"deadlock: {error}", file=sys.stderr)
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
